//! A minimal, defensive HTTP/1.1 codec for the `adsafe serve` daemon.
//!
//! Std-only, like the rest of the workspace: the daemon cannot pull in
//! hyper, so this module implements exactly the slice of RFC 9112 the
//! assessment endpoints need — request-line, header fields (including
//! deprecated `obs-fold` continuations, which some load-balancer health
//! probes still emit), `Content-Length` and `chunked` bodies — and
//! rejects everything outside its limits instead of buffering it:
//! oversized headers or bodies are `413`, malformed syntax is `400`,
//! and no input sequence may panic the parser (property-tested in
//! `tests/serve_integration.rs`).
//!
//! Responses always carry `Content-Length`, and an explicit
//! `Connection` header states the connection's fate: the daemon speaks
//! HTTP/1.1 keep-alive (requests pipeline across one connection, each
//! framed by `Content-Length`), and [`write_response_conn`] lets the
//! server close deliberately — after an error, at the per-connection
//! request cap, or when a client asked for `Connection: close`. The
//! keep-alive *decision* ([`Request::wants_keep_alive`]) follows RFC
//! 9112: 1.1 connections persist unless the client opts out, 1.0
//! connections close unless the client opts in.

use std::io::{BufRead, Write};

/// The protocol version a request arrived under; decides the
/// keep-alive default (persistent for 1.1, close for 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0`.
    Http10,
    /// `HTTP/1.1`.
    Http11,
}

/// Hard cap on the request line plus all header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body, however it is framed.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request. Header names are lower-cased at parse time;
/// `obs-fold` continuation lines are joined with a single space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request target, verbatim (`/assess`, `/metrics?x=1`, …).
    pub path: String,
    /// Protocol version (drives the keep-alive default).
    pub version: Version,
    /// `(lower-cased name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded body (chunked bodies arrive de-chunked).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lower-cased) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client expects this connection to persist after the
    /// response (RFC 9112 §9.3): HTTP/1.1 defaults to keep-alive unless
    /// a `Connection` header lists `close`; HTTP/1.0 defaults to close
    /// unless one lists `keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let connection = self.header("connection").unwrap_or("");
        let lists = |token: &str| {
            connection
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case(token))
        };
        match self.version {
            Version::Http11 => !lists("close"),
            Version::Http10 => lists("keep-alive"),
        }
    }
}

/// Why a request could not be parsed; maps onto a status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Syntactically invalid request → `400`.
    BadRequest(String),
    /// Head or body over the hard caps → `413`.
    TooLarge(String),
}

impl ParseError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::TooLarge(_) => 413,
        }
    }

    /// Human-readable detail for the response body.
    pub fn detail(&self) -> &str {
        match self {
            ParseError::BadRequest(d) | ParseError::TooLarge(d) => d,
        }
    }
}

/// Why reading a request off a connection failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line.
    Closed,
    /// The socket failed mid-read.
    Io(std::io::Error),
    /// The bytes did not form an acceptable request.
    Parse(ParseError),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one line, tolerating bare-`LF` line endings, enforcing `cap`
/// on the line length. Returns the line without its terminator.
fn read_line(r: &mut impl BufRead, cap: usize, budget: &mut usize) -> Result<String, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Parse(ParseError::BadRequest(
                    "connection closed mid-line".into(),
                )));
            }
            Ok(_) => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
        *budget = budget.saturating_sub(1);
        if *budget == 0 {
            return Err(ReadError::Parse(ParseError::TooLarge(
                "request head exceeds limit".into(),
            )));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| {
                ReadError::Parse(ParseError::BadRequest("non-UTF-8 in request head".into()))
            });
        }
        if line.len() >= cap {
            return Err(ReadError::Parse(ParseError::TooLarge("line exceeds limit".into())));
        }
        line.push(byte[0]);
    }
}

/// Reads and parses one request from `r`. `Err(Parse(_))` means the
/// caller should answer with the error's status and close; `Closed`
/// means the peer went away cleanly before talking.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_line(r, MAX_HEAD_BYTES, &mut head_budget)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Parse(ParseError::BadRequest(format!(
                "malformed request line `{request_line}`"
            ))))
        }
    };
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        other => {
            return Err(ReadError::Parse(ParseError::BadRequest(format!(
                "unsupported protocol `{other}`"
            ))))
        }
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(r, MAX_HEAD_BYTES, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            // obs-fold: continuation of the previous field value.
            match headers.last_mut() {
                Some((_, v)) => {
                    v.push(' ');
                    v.push_str(line.trim());
                }
                None => {
                    return Err(ReadError::Parse(ParseError::BadRequest(
                        "header continuation before any header".into(),
                    )))
                }
            }
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Parse(ParseError::BadRequest(format!(
                "malformed header `{line}`"
            ))));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Parse(ParseError::BadRequest(format!(
                "malformed header name `{name}`"
            ))));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let body = read_body(r, &headers)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        version,
        headers,
        body,
    })
}

fn read_body(r: &mut impl BufRead, headers: &[(String, String)]) -> Result<Vec<u8>, ReadError> {
    let find = |name: &str| headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str());
    let chunked = find("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().split(',').any(|t| t.trim() == "chunked"));
    if chunked {
        // Transfer-Encoding wins over Content-Length (RFC 9112 §6.3).
        return read_chunked_body(r);
    }
    match find("content-length") {
        None => Ok(Vec::new()),
        Some(v) => {
            let n: usize = v.trim().parse().map_err(|_| {
                ReadError::Parse(ParseError::BadRequest(format!("bad Content-Length `{v}`")))
            })?;
            if n > MAX_BODY_BYTES {
                return Err(ReadError::Parse(ParseError::TooLarge(format!(
                    "body of {n} bytes exceeds limit of {MAX_BODY_BYTES}"
                ))));
            }
            let mut body = vec![0u8; n];
            r.read_exact(&mut body).map_err(|_| {
                ReadError::Parse(ParseError::BadRequest("body shorter than Content-Length".into()))
            })?;
            Ok(body)
        }
    }
}

fn read_chunked_body(r: &mut impl BufRead) -> Result<Vec<u8>, ReadError> {
    let mut body = Vec::new();
    loop {
        let mut line_budget = 256;
        let size_line = read_line(r, 256, &mut line_budget)?;
        // Chunk extensions (`;name=value`) are tolerated and ignored.
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16).map_err(|_| {
            ReadError::Parse(ParseError::BadRequest(format!("bad chunk size `{size_line}`")))
        })?;
        if size == 0 {
            // Trailer section: discard fields until the blank line.
            loop {
                let mut trailer_budget = MAX_HEAD_BYTES;
                if read_line(r, MAX_HEAD_BYTES, &mut trailer_budget)?.is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len() + size > MAX_BODY_BYTES {
            return Err(ReadError::Parse(ParseError::TooLarge(format!(
                "chunked body exceeds limit of {MAX_BODY_BYTES}"
            ))));
        }
        let start = body.len();
        body.resize(start + size, 0);
        r.read_exact(&mut body[start..]).map_err(|_| {
            ReadError::Parse(ParseError::BadRequest("chunk shorter than its size".into()))
        })?;
        let mut crlf_budget = 8;
        let sep = read_line(r, 8, &mut crlf_budget)?;
        if !sep.is_empty() {
            return Err(ReadError::Parse(ParseError::BadRequest(
                "missing CRLF after chunk data".into(),
            )));
        }
    }
}

/// An outgoing response (and, for the test client, a parsed incoming
/// one — the daemon and its tests share one codec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers; `Content-Length` and `Connection` are implied.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a text body and `text/plain` content type.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header, builder-style.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// First value of the (case-insensitively matched) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — response bodies are our own text).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialises `resp` onto `w` with `Content-Length` and
/// `Connection: close` added — the one-shot form for paths that always
/// end the connection (parse failures, shutdown notices).
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    write_response_conn(w, resp, false)
}

/// Serialises `resp` onto `w` with `Content-Length` added and the
/// `Connection` header reflecting `keep_alive` — the server's actual
/// persistence decision (client preference ∧ request cap ∧ no fatal
/// error), not just the client's request.
pub fn write_response_conn(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    head.push_str(if keep_alive { "Connection: keep-alive\r\n\r\n" } else { "Connection: close\r\n\r\n" });
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// Encodes a request for the wire — the daemon's tests and bench are
/// its own HTTP clients.
pub fn encode_request(
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
    for (name, value) in headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    if !body.is_empty() || method == "POST" {
        out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Parses a response off `r` (client side of the shared codec).
pub fn read_response(r: &mut impl BufRead) -> Result<Response, ReadError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let status_line = read_line(r, MAX_HEAD_BYTES, &mut head_budget)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            ReadError::Parse(ParseError::BadRequest(format!(
                "malformed status line `{status_line}`"
            )))
        })?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, MAX_HEAD_BYTES, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    r.read_exact(&mut body)?;
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_simple_post() {
        let req = parse(b"POST /assess HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/assess");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn folds_obs_fold_continuations() {
        let req = parse(b"GET /metrics HTTP/1.1\r\nX-Long: first\r\n  second\r\n\tthird\r\n\r\n")
            .unwrap();
        assert_eq!(req.header("x-long"), Some("first second third"));
    }

    #[test]
    fn decodes_chunked_bodies_with_extensions_and_trailers() {
        let req = parse(
            b"POST /assess HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              4;ext=1\r\nWiki\r\n5\r\npedia\r\n0\r\nX-Trailer: v\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"Wikipedia");
    }

    #[test]
    fn rejects_oversized_declared_bodies() {
        let head =
            format!("POST /assess HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        match parse(head.as_bytes()) {
            Err(ReadError::Parse(e)) => assert_eq!(e.status(), 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/9.9\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b" /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            match parse(raw) {
                Err(ReadError::Parse(e)) => assert_eq!(e.status(), 400, "{raw:?}"),
                other => panic!("expected 400 for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn clean_close_before_any_bytes_is_not_an_error_status() {
        assert!(matches!(parse(b""), Err(ReadError::Closed)));
    }

    #[test]
    fn response_round_trips_through_the_client_parser() {
        let resp = Response::text(200, "hello").with_header("X-Adsafe-Exit-Code", "0");
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let parsed = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.header("x-adsafe-exit-code"), Some("0"));
        assert_eq!(parsed.body_text(), "hello");
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_overrides() {
        let cases: &[(&[u8], bool)] = &[
            (b"GET / HTTP/1.1\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: keep-alive, Upgrade\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", true),
        ];
        for (raw, expect) in cases {
            let req = parse(raw).unwrap();
            assert_eq!(req.wants_keep_alive(), *expect, "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn write_response_conn_states_the_connection_fate() {
        let resp = Response::text(200, "ok");
        let mut keep = Vec::new();
        write_response_conn(&mut keep, &resp, true).unwrap();
        let keep = String::from_utf8(keep).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        let mut close = Vec::new();
        write_response_conn(&mut close, &resp, false).unwrap();
        assert!(String::from_utf8(close).unwrap().contains("Connection: close\r\n"));
    }

    #[test]
    fn pipelined_requests_parse_back_to_back_from_one_reader() {
        let wire = b"POST /assess HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                     GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let first = read_request(&mut r).unwrap();
        assert_eq!(first.body, b"hi");
        assert!(first.wants_keep_alive());
        let second = read_request(&mut r).unwrap();
        assert_eq!(second.path, "/metrics");
        assert!(!second.wants_keep_alive());
        assert!(matches!(read_request(&mut r), Err(ReadError::Closed)));
    }

    #[test]
    fn encode_request_round_trips() {
        let wire = encode_request("POST", "/assess", &[("X-K", "v")], b"{\"dir\":\".\"}");
        let req = parse(&wire).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/assess");
        assert_eq!(req.header("x-k"), Some("v"));
        assert_eq!(req.body, b"{\"dir\":\".\"}");
    }
}
