//! # adsafe-serve — the resident assessment daemon
//!
//! `adsafe serve` keeps the expensive parts of an assessment — the
//! facts cache, the string interner, the thread pool — alive across
//! runs, turning the CLI's cold-start cost into a one-time price. A
//! repeated `POST /assess` over an unchanged corpus does **zero**
//! parse-phase work: every file resolves against the resident
//! [`MemoryFactsStore`](adsafe::MemoryFactsStore), and the response
//! body is byte-identical to what `adsafe assess` prints, because both
//! render [`deterministic_report_markdown`](adsafe::render::deterministic_report_markdown)
//! over the same pipeline.
//!
//! The daemon is std-only like everything else in the workspace: the
//! HTTP/1.1 codec lives in [`http`] (defensive, property-tested, never
//! panics on wire input), and requests flow accept-loop → bounded
//! queue → [`adsafe_pool::Executor`] workers. Connections are
//! **keep-alive** by default: one connection serves many requests, up
//! to a per-connection cap, under the idle/deadline/byte-rate budgets
//! enforced by [`conn::DeadlineReader`] (a slow-loris client cannot
//! pin a worker). A full queue answers `503` with a queue-depth-derived
//! `Retry-After` instead of buffering unboundedly; a handler panic
//! answers `500` with a fault summary, closes that connection, and the
//! daemon keeps serving; the resident facts store degrades under a
//! byte budget by evicting least-recently-used entries (dirty ones
//! demote to the disk cache first) rather than growing without bound.
//! Graceful shutdown (SIGTERM / ctrl-c in the CLI) drains in-flight
//! requests — reclaiming even idle keep-alive connections within a
//! poll slice — flushes the facts store's dirty entries to the disk
//! cache, and exits under the CLI's 0–5 exit-code contract. See
//! DESIGN.md §9 and §11.
//!
//! Endpoints: `POST /assess`, `GET /metrics` (`?format=prometheus`
//! for the exposition format), `GET /healthz`, `POST /invalidate`,
//! `GET /runs`, `GET /runs/<id>`, `GET /requests` (the flight
//! recorder's JSONL access log, filterable by `?status=`/`?endpoint=`),
//! `GET /trace/recent` (the same ring as Chrome trace-event JSON) —
//! curl examples in README.md §Serving and §Watching a live daemon.
//! Every assessment — served or CLI — appends one record to the
//! corpus's run ledger (`.adsafe-cache/ledger/`, see DESIGN.md §10)
//! and carries its run ID in the `X-Adsafe-Run-Id` header; the same
//! run IDs appear in `/requests` rows, correlating the access log with
//! `adsafe history`. Telemetry plane: DESIGN.md §12.

#![warn(missing_docs)]

pub mod conn;
pub mod fsutil;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod top;

pub use server::{Server, ServeConfig, ServeStats};

/// The Info-severity, non-degrading fault recorded when a ledger line
/// could not be parsed (torn by a crash mid-append, or hand-edited).
/// Shared by the CLI and the daemon so both render identically.
pub fn ledger_torn_fault(
    ledger_file: &std::path::Path,
    torn: &adsafe_ledger::TornLine,
) -> adsafe::Fault {
    adsafe::Fault {
        phase: adsafe::FaultPhase::Ingest,
        path: ledger_file.display().to_string(),
        severity: adsafe::FaultSeverity::Info,
        cause: adsafe::FaultCause::LedgerTorn {
            detail: format!("line {}: {}", torn.line, torn.detail),
        },
        recovery: adsafe::Recovery::Noted,
        run_id: String::new(),
    }
}

/// Exit codes shared by the CLI and the daemon's `X-Adsafe-Exit-Code`
/// header (documented in README.md; scripts rely on them).
pub mod exit {
    /// Assessment ran clean, no blocking topics.
    pub const OK: i32 = 0;
    /// Assessment ran clean, blocking topics found.
    pub const BLOCKING: i32 = 1;
    /// Usage error (bad arguments / bad request).
    pub const USAGE: i32 = 2;
    /// I/O error (unreadable inputs, unwritable report).
    pub const IO: i32 = 3;
    /// Degraded assessment, no blocking topics.
    pub const DEGRADED: i32 = 4;
    /// Degraded assessment with blocking topics.
    pub const DEGRADED_BLOCKING: i32 = 5;
}

/// Folds a report's outcome into the 0–5 exit-code contract.
pub fn exit_code_for(report: &adsafe::AssessmentReport) -> i32 {
    let blocking = report.compliance.blocking_count() > 0;
    match (report.degraded, blocking) {
        (false, false) => exit::OK,
        (false, true) => exit::BLOCKING,
        (true, false) => exit::DEGRADED,
        (true, true) => exit::DEGRADED_BLOCKING,
    }
}
