//! Source discovery shared by the CLI and the daemon: both walk a
//! corpus directory the same way, so a served assessment sees exactly
//! the file set (and module grouping) a CLI run would.

use std::path::{Path, PathBuf};

/// File extensions the assessment ingests.
pub const SOURCE_EXTENSIONS: [&str; 8] = ["c", "cc", "cpp", "cxx", "cu", "h", "hpp", "cuh"];

/// Collects every C/C++/CUDA source under `root`, depth-first in
/// sorted directory order — the stable enumeration both determinism
/// gates (CLI vs HTTP byte-identity) rely on.
pub fn collect_sources(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_sources(&path, out);
        } else if path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| SOURCE_EXTENSIONS.contains(&e))
        {
            out.push(path);
        }
    }
}

/// Maps a file to its module: the top-level directory under `root`,
/// mirroring how the paper treats Apollo's module tree.
pub fn module_of(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .ok()
        .and_then(|rel| rel.components().next())
        .and_then(|c| c.as_os_str().to_str())
        .filter(|c| !c.contains('.'))
        .unwrap_or("root")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_is_the_top_level_directory() {
        let root = Path::new("/corpus");
        assert_eq!(module_of(root, Path::new("/corpus/perception/a.cc")), "perception");
        assert_eq!(module_of(root, Path::new("/corpus/top.cc")), "root");
        assert_eq!(module_of(Path::new("/x"), Path::new("/y/a.cc")), "root");
    }
}
