//! `adsafe loadgen`: a keep-alive load driver for the daemon.
//!
//! N concurrent clients each hold one persistent connection and pump
//! `POST /assess` requests at a target daemon (an external `--addr`,
//! or an in-process [`Server`] the driver spins up over the given
//! corpus). Per-request service latencies land in one shared
//! [`adsafe_trace::Histogram`] and are reported as interpolated
//! p50/p99/p999 estimates ([`HistogramSnapshot::quantile_estimate`]
//! — the same estimator `/metrics` and `adsafe top` use), alongside
//! the 503 saturation knee: growing one-shot bursts against a
//! deliberately small daemon (1 handler, queue of 4) until the shed
//! path first rejects. The whole run serialises as `BENCH_load.json`
//! (schema `adsafe-bench-load/1`).
//!
//! A client honours backpressure the way a production caller would: a
//! `503` is counted, the `Retry-After` hint is respected (clamped for
//! test speed), and the request is retried on a fresh connection.

use crate::http;
use crate::{ServeConfig, Server};
use adsafe_trace::{Histogram, HistogramSnapshot};
use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tuning for one [`run_loadgen`] campaign.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Corpus directory the assessments run over.
    pub corpus: PathBuf,
    /// Target daemon; `None` starts an in-process server over the
    /// corpus (4 handlers, queue sized to the client count).
    pub addr: Option<String>,
    /// Concurrent keep-alive clients.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Pipeline workers for the in-process server (`0` = auto).
    pub jobs: usize,
    /// Skip the saturation-knee probe (the knee needs its own small
    /// in-process daemon, so it only runs when `addr` is `None`).
    pub skip_knee: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            corpus: PathBuf::new(),
            addr: None,
            clients: 8,
            requests: 8,
            jobs: 0,
            skip_knee: false,
        }
    }
}

/// What one campaign measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Successful (200) requests measured.
    pub completed: u64,
    /// 503 rejections absorbed (and retried) during the campaign.
    pub rejected_503: u64,
    /// Latency histogram of the successful requests (µs).
    pub latency: HistogramSnapshot,
    /// Burst size at which the shed path first rejected (0 = the probe
    /// never saw a 503, or the knee was skipped).
    pub knee_clients: usize,
    /// Rejections inside that first shedding burst.
    pub knee_rejected: u64,
}

impl LoadReport {
    /// Serialises the report as the `adsafe-bench-load/1` document.
    pub fn to_json(&self) -> String {
        let q = |p: f64| self.latency.quantile_estimate(p) as f64 / 1000.0;
        format!(
            "{{\n  \"schema\": \"adsafe-bench-load/1\",\n  \
             \"clients\": {},\n  \
             \"requests_per_client\": {},\n  \
             \"completed\": {},\n  \
             \"rejected_503\": {},\n  \
             \"p50_ms\": {:.2},\n  \"p99_ms\": {:.2},\n  \"p999_ms\": {:.2},\n  \
             \"saturation\": {{\"clients\": {}, \"rejected_503\": {}}}\n}}\n",
            self.clients,
            self.requests_per_client,
            self.completed,
            self.rejected_503,
            q(0.50),
            q(0.99),
            q(0.999),
            self.knee_clients,
            self.knee_rejected,
        )
    }
}

/// One keep-alive client: pumps `n` requests, reconnecting after a
/// 503, a server-side close, or an I/O hiccup. Returns `Err` only
/// after exhausting its failure budget (a daemon that vanished).
fn client_session(
    addr: &str,
    body: &str,
    n: usize,
    hist: &Histogram,
    rejected: &AtomicU64,
) -> Result<(), String> {
    let mut remaining = n;
    let mut failures = 0u32;
    while remaining > 0 {
        if failures > 50 {
            return Err(format!("client gave up after {failures} connection failures"));
        }
        let Ok(mut stream) = TcpStream::connect(addr) else {
            failures += 1;
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        let Ok(read_half) = stream.try_clone() else {
            failures += 1;
            continue;
        };
        let mut reader = BufReader::new(read_half);
        let wire = http::encode_request("POST", "/assess", &[], body.as_bytes());
        // Pump requests down this connection until it ends.
        loop {
            let t0 = std::time::Instant::now();
            if stream.write_all(&wire).is_err() {
                failures += 1;
                break;
            }
            let resp = match http::read_response(&mut reader) {
                Ok(r) => r,
                Err(_) => {
                    failures += 1;
                    break;
                }
            };
            if resp.status == 503 {
                rejected.fetch_add(1, Ordering::Relaxed);
                // Honour Retry-After like a production client, clamped
                // so a test-scale campaign stays fast.
                let hint = resp
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(1);
                std::thread::sleep(Duration::from_millis((hint * 50).min(500)));
                break;
            }
            if resp.status != 200 {
                return Err(format!("unexpected status {}: {}", resp.status, resp.body_text()));
            }
            failures = 0;
            hist.record(t0.elapsed().as_micros() as u64);
            remaining -= 1;
            if remaining == 0 {
                return Ok(());
            }
            if resp.header("connection") != Some("keep-alive") {
                break; // server is closing (cap reached / draining)
            }
        }
    }
    Ok(())
}

/// One non-retrying probe: returns the status (the knee must *count*
/// rejections, not wait them out).
fn probe(addr: &str, body: &str) -> Result<u16, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("probe connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    stream
        .write_all(&http::encode_request(
            "POST",
            "/assess",
            &[("Connection", "close")],
            body.as_bytes(),
        ))
        .map_err(|e| format!("probe send: {e}"))?;
    http::read_response(&mut BufReader::new(stream))
        .map(|r| r.status)
        .map_err(|e| format!("probe read: {e:?}"))
}

/// Runs one campaign: warm the target, fan out the keep-alive clients,
/// then (in-process mode) find the 503 knee against a small saturation
/// daemon.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadReport, String> {
    if !cfg.corpus.is_dir() {
        return Err(format!("`{}` is not a directory", cfg.corpus.display()));
    }
    if cfg.clients == 0 || cfg.requests == 0 {
        return Err("need at least 1 client and 1 request per client".into());
    }
    let body = format!("{{\"dir\":\"{}\"}}", cfg.corpus.display());

    // Target: external daemon, or an in-process server sized so the
    // campaign measures latency rather than its own queue cap.
    let own_server = match &cfg.addr {
        Some(_) => None,
        None => Some(
            Server::start(ServeConfig {
                addr: "127.0.0.1:0".into(),
                jobs: cfg.jobs,
                handlers: 4,
                queue_capacity: (2 * cfg.clients).max(32),
                keep_alive_max: 0,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("cannot start in-process server: {e}"))?,
        ),
    };
    let addr = match &cfg.addr {
        Some(a) => a.clone(),
        None => own_server.as_ref().expect("started above").addr().to_string(),
    };

    // Warm: the first assessment parses the corpus; every measured
    // request after it should be store-warm.
    match probe(&addr, &body)? {
        200 | 503 => {}
        s => return Err(format!("warm-up request answered {s}")),
    }

    let hist = Histogram::default();
    let rejected = AtomicU64::new(0);
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|_| {
                let (addr, body) = (addr.as_str(), body.as_str());
                let (hist, rejected) = (&hist, &rejected);
                scope.spawn(move || client_session(addr, body, cfg.requests, hist, rejected))
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())).err())
            .collect()
    });
    if let Some(e) = errors.first() {
        return Err(format!("{} client(s) failed; first: {e}", errors.len()));
    }
    if let Some(s) = own_server {
        s.stop();
    }

    // The knee: growing one-shot bursts against a deliberately tiny
    // daemon until backpressure first rejects. External daemons are
    // left alone — deliberately saturating production is an opt-in
    // a load *measurement* tool should not make.
    let mut knee_clients = 0usize;
    let mut knee_rejected = 0u64;
    if cfg.addr.is_none() && !cfg.skip_knee {
        let sat = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            jobs: 1,
            handlers: 1,
            queue_capacity: 4,
            ..ServeConfig::default()
        })
        .map_err(|e| format!("cannot start saturation server: {e}"))?;
        let sat_addr = sat.addr().to_string();
        let _ = probe(&sat_addr, &body)?; // warm its store
        for burst in [2usize, 4, 8, 16, 32] {
            let rejections: u64 = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..burst)
                    .map(|_| {
                        let (a, b) = (sat_addr.as_str(), body.as_str());
                        scope.spawn(move || u64::from(probe(a, b) == Ok(503)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
            });
            if rejections > 0 {
                knee_clients = burst;
                knee_rejected = rejections;
                break;
            }
        }
        sat.stop();
    }

    let latency = hist.snapshot();
    Ok(LoadReport {
        clients: cfg.clients,
        requests_per_client: cfg.requests,
        completed: latency.count,
        rejected_503: rejected.load(Ordering::Relaxed),
        latency,
        knee_clients,
        knee_rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serialises_quantile_estimates() {
        let hist = Histogram::default();
        for i in 0..100 {
            hist.record(4096 + i * 40); // bucket 13: [4096, 8191]
        }
        let report = LoadReport {
            clients: 4,
            requests_per_client: 25,
            completed: 100,
            rejected_503: 3,
            latency: hist.snapshot(),
            knee_clients: 8,
            knee_rejected: 2,
        };
        let json = report.to_json();
        let doc = adsafe_trace::json::Json::parse(&json).expect("report is valid JSON");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("adsafe-bench-load/1"));
        assert_eq!(doc.get("completed").and_then(|v| v.as_f64()), Some(100.0));
        let p50 = doc.get("p50_ms").and_then(|v| v.as_f64()).unwrap();
        let p999 = doc.get("p999_ms").and_then(|v| v.as_f64()).unwrap();
        // Interpolated estimates: inside the bucket and ordered — the
        // bound answer would pin both to 8.191ms.
        assert!(p50 > 4.0 && p50 < 8.2, "p50 = {p50}");
        assert!(p999 > p50 && p999 < 8.2, "p999 = {p999}");
        let sat = doc.get("saturation").unwrap();
        assert_eq!(sat.get("clients").and_then(|v| v.as_f64()), Some(8.0));
    }

    #[test]
    fn rejects_bad_config() {
        let cfg = LoadgenConfig { corpus: PathBuf::from("/no/such/dir"), ..Default::default() };
        assert!(run_loadgen(&cfg).is_err());
        let cfg = LoadgenConfig { corpus: std::env::temp_dir(), clients: 0, ..Default::default() };
        assert!(run_loadgen(&cfg).is_err());
    }
}
