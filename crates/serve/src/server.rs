//! The daemon proper: accept loop, bounded request queue, endpoint
//! handlers, and graceful shutdown.
//!
//! One [`Server`] owns a non-blocking accept thread and an
//! [`Executor`] of handler workers. Accepted connections are submitted
//! to the executor's bounded queue; when the queue is full the accept
//! thread itself answers `503` + a queue-depth-derived `Retry-After`
//! (a few hundred bytes of work — backpressure must stay cheap when
//! the system is loaded). Admitted connections are **keep-alive**: one
//! worker serves requests off the connection in a loop until the
//! client opts out, the per-connection request cap is reached, a fatal
//! error occurs, or a [`DeadlineReader`] budget trips (idle expiry →
//! clean close; request deadline or slow-loris floor → `408` + close).
//!
//! Request handlers run under `catch_unwind`, mirroring the
//! pipeline's fault isolation one level up: a panicking handler
//! produces a `500` with a fault summary, and the worker — and every
//! other in-flight request — keeps going. Assessments themselves
//! already contain checker panics as degraded-report faults, so a
//! `500` here means the *serving* layer broke, which the integration
//! tests exercise through the `serve.request` failpoint.
//!
//! [`Server::stop`] (the CLI's SIGTERM path) stops admission, drains
//! queued and in-flight requests through [`Executor::shutdown`], then
//! flushes the facts store's dirty entries to its disk backing.

use crate::conn::{DeadlineReader, ReadBudget, Trip};
use crate::fsutil::{collect_sources, module_of};
use crate::http::{self, ReadError, Request, Response};
use adsafe::fault::failpoints;
use adsafe::iso26262::Asil;
use adsafe::{render, Assessment, AssessmentOptions, MemoryFactsStore};
use adsafe_ledger::{corpus_digest, Ledger, RunRecord};
use adsafe_pool::Executor;
use adsafe_trace::json::{write_escaped, Json};
use adsafe_trace::{labeled, FlightRecorder, PhaseTiming, RequestRecord};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:7026` by default; port `0` lets the
    /// OS pick — tests read the real port from [`Server::addr`]).
    pub addr: String,
    /// Pipeline workers per assessment (`0` = one per core).
    pub jobs: usize,
    /// Concurrent request handlers.
    pub handlers: usize,
    /// Bounded request queue capacity; beyond it, `503`.
    pub queue_capacity: usize,
    /// Disk backing for the resident facts store (`None` = memory-only).
    pub cache_dir: Option<PathBuf>,
    /// Max requests served per connection before the daemon closes it
    /// (`0` = unlimited). Bounds how long one client can hold a worker.
    pub keep_alive_max: usize,
    /// Max quiet time between requests on a kept-alive connection
    /// before it is closed cleanly (zero disables).
    pub idle_timeout: Duration,
    /// Max wall time for one request to arrive in full, and the write
    /// timeout for its response (zero disables the read deadline).
    pub request_timeout: Duration,
    /// Minimum sustained bytes/second a started request must deliver
    /// (after a grace period) before it is dropped as a slow-loris
    /// client (`0` disables).
    pub min_byte_rate: u64,
    /// Resident facts store byte budget; above it, least-recently-used
    /// entries are evicted (dirty ones demote to the disk cache).
    /// `0` = unbounded.
    pub store_budget: u64,
    /// Flight-recorder capacity: how many completed requests the
    /// in-memory ring (`GET /requests`, `GET /trace/recent`) retains
    /// before evicting oldest-first. Clamped to at least 1.
    pub recorder_cap: usize,
    /// Query-rule pack (a `.aq` file or a directory of them) loaded at
    /// startup and evaluated alongside the native rules on every
    /// `/assess`. `None` = native rules only.
    pub rules: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7026".into(),
            jobs: 0,
            handlers: 2,
            queue_capacity: 32,
            cache_dir: None,
            keep_alive_max: 64,
            idle_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(10),
            min_byte_rate: 128,
            store_budget: 0,
            recorder_cap: 256,
            rules: None,
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Server::stop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests fully parsed and routed.
    pub requests: u64,
    /// Dirty facts entries flushed to disk during shutdown.
    pub flushed_entries: usize,
}

/// State shared between the accept thread, handler workers, and the
/// owning [`Server`] handle.
struct Shared {
    store: Arc<MemoryFactsStore>,
    jobs: usize,
    queue_capacity: usize,
    keep_alive_max: usize,
    budget: ReadBudget,
    /// Shared with every connection's [`DeadlineReader`], so draining
    /// reclaims idle keep-alive connections within one poll slice.
    stop: Arc<AtomicBool>,
    requests: AtomicU64,
    /// Human-readable summary of the most recent contained fault (a
    /// handler panic or a degraded assessment), surfaced by `/healthz`.
    last_fault: Mutex<Option<String>>,
    last_degraded: AtomicBool,
    /// One open [`Ledger`] per assessed corpus root, so sequence
    /// numbers are allocated race-free within this process (cross-
    /// process writers still interleave safely at the append level,
    /// but may race sequence allocation — a documented limitation).
    ledgers: Mutex<HashMap<PathBuf, Arc<Ledger>>>,
    /// In-memory mirror of every run appended by this process, in
    /// append order across all corpora — what `GET /runs` serves.
    runs: Mutex<Vec<RunRecord>>,
    /// Ring of completed-request records — the `/requests` access log
    /// and `/trace/recent` trace source.
    recorder: FlightRecorder,
    /// Connection ID allocator (1-based; doubles as the Chrome trace
    /// `tid` track in `/trace/recent`).
    next_conn: AtomicU64,
    /// Query-rule pack loaded once at startup (empty when the daemon
    /// was started without `--rules`); shared by every `/assess` and
    /// listed by `GET /rules`.
    rules: Arc<adsafe::rulequery::RulePack>,
}

thread_local! {
    /// Phase timings noted by the handler running on this worker, read
    /// back by the connection loop when it builds the request's
    /// [`RequestRecord`]. Thread-local works because a handler runs
    /// inline on the connection's worker thread.
    static REQUEST_PHASES: RefCell<Vec<PhaseTiming>> = const { RefCell::new(Vec::new()) };
}

/// Notes one phase of the request currently being handled.
fn note_phase(name: &str, start_us: u64, dur_us: u64) {
    REQUEST_PHASES.with(|p| {
        p.borrow_mut().push(PhaseTiming { name: name.to_string(), start_us, dur_us });
    });
}

/// Takes (and clears) the phases noted so far on this worker.
fn take_phases() -> Vec<PhaseTiming> {
    REQUEST_PHASES.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// The short endpoint key used as the `endpoint` label on
/// `serve.latency` series and accepted by `/requests?endpoint=`.
fn endpoint_key(path: &str) -> &'static str {
    match path {
        "/assess" => "assess",
        "/invalidate" => "invalidate",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/requests" => "requests",
        "/rules" => "rules",
        "/trace/recent" => "trace",
        p if p == "/runs" || p.starts_with("/runs/") => "runs",
        _ => "other",
    }
}

impl Shared {
    /// The open ledger for a corpus root, opening (and caching) it on
    /// first use. `None` if the ledger directory cannot be created.
    fn ledger_for(&self, root: &PathBuf) -> Option<Arc<Ledger>> {
        let mut map = self.ledgers.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(l) = map.get(root) {
            return Some(Arc::clone(l));
        }
        let dir = Ledger::dir_for_cache(&root.join(".adsafe-cache"));
        let ledger = Arc::new(Ledger::open(&dir).ok()?);
        map.insert(root.clone(), Arc::clone(&ledger));
        Some(ledger)
    }
}

/// A running daemon. Dropping it (or calling [`stop`](Server::stop))
/// shuts down gracefully: admission stops, in-flight and queued
/// requests drain, dirty facts flush to disk.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<usize>>,
}

impl Server {
    /// Binds `config.addr` and starts serving. Fails only on bind
    /// errors (address in use, bad address).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        // A resident daemon always profiles memory: the gauges on
        // /metrics and /healthz and the per-request allocation deltas
        // in the flight recorder are part of its observability surface.
        // (No-op counting unless the binary installs a `CountingAlloc`,
        // as the `adsafe` CLI does.)
        adsafe_trace::alloc::set_profiling(true);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            store: Arc::new(MemoryFactsStore::open_budgeted(
                config.cache_dir.as_deref(),
                config.store_budget,
            )),
            jobs: config.jobs,
            queue_capacity: config.queue_capacity,
            keep_alive_max: config.keep_alive_max,
            budget: ReadBudget {
                idle_timeout: config.idle_timeout,
                request_timeout: config.request_timeout,
                min_byte_rate: config.min_byte_rate,
            },
            stop: Arc::new(AtomicBool::new(false)),
            requests: AtomicU64::new(0),
            last_fault: Mutex::new(None),
            last_degraded: AtomicBool::new(false),
            ledgers: Mutex::new(HashMap::new()),
            runs: Mutex::new(Vec::new()),
            recorder: FlightRecorder::new(config.recorder_cap),
            next_conn: AtomicU64::new(0),
            rules: Arc::new(match config.rules.as_deref() {
                Some(p) => adsafe::query::load_rule_pack(&adsafe::query::resolve_rules_arg(p)),
                None => adsafe::rulequery::RulePack::empty(),
            }),
        });
        let exec = Executor::new(config.handlers, config.queue_capacity);
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("adsafe-accept".into())
                .spawn(move || accept_loop(listener, exec, &shared))
                .expect("spawning the accept thread")
        };
        Ok(Server { addr, shared, accept: Some(accept) })
    }

    /// The bound address (with the OS-assigned port when the config
    /// asked for port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to stop admitting work; returns immediately.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stops admission, drains queued and in-flight
    /// requests, flushes the facts store, and returns lifetime stats.
    pub fn stop(mut self) -> ServeStats {
        self.request_stop();
        let flushed = self.accept.take().map_or(0, |h| h.join().unwrap_or(0));
        ServeStats {
            requests: self.shared.requests.load(Ordering::SeqCst),
            flushed_entries: flushed,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_stop();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Accepts until asked to stop, then drains and flushes. Returns the
/// number of facts entries flushed to disk.
fn accept_loop(listener: TcpListener, exec: Executor, shared: &Arc<Shared>) -> usize {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                // Responses are small and latency-bound: flush segments
                // as written instead of Nagle-batching them.
                let _ = stream.set_nodelay(true);
                // Read pacing belongs to the connection's
                // DeadlineReader; the socket-level timeout guards only
                // the write side against a peer that stops draining.
                if !shared.budget.request_timeout.is_zero() {
                    let _ = stream.set_write_timeout(Some(shared.budget.request_timeout));
                }
                // A clone shares the fd, so the 503 path can still
                // answer after the rejected job (owning the original)
                // is dropped.
                let reject_stream = stream.try_clone().ok();
                let shared_job = Arc::clone(shared);
                let job = move || handle_connection(stream, &shared_job);
                if exec.try_submit(job).is_err() {
                    adsafe_trace::counter("serve.rejected").incr();
                    if let Some(mut s) = reject_stream {
                        let depth = exec.queue_depth();
                        let retry = exec.retry_hint_secs();
                        let resp = Response::json(
                            503,
                            format!(
                                "{{\"error\":\"assessment queue full\",\
                                 \"queue_depth\":{depth},\"retry_after_s\":{retry}}}\n"
                            ),
                        )
                        .with_header("Retry-After", retry.to_string());
                        let _ = http::write_response(&mut s, &resp);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Drain: every admitted request completes before the flush, so the
    // disk cache sees the final state of the store.
    exec.shutdown();
    shared.store.flush()
}

/// One connection: serve requests in a keep-alive loop — parse, route
/// under panic containment, respond — until the client opts out, the
/// request cap is hit, a budget trips, or a fatal error ends it.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed) + 1;
    let conn_start_us = adsafe_trace::now_us();
    // The submit→start delta of this connection's executor job, billed
    // to the first request as its `queue_wait` phase.
    let mut queue_wait_us = adsafe_pool::take_queue_wait_us();
    let deadline = DeadlineReader::new(read_half, Arc::clone(&shared.stop), shared.budget);
    let mut reader = BufReader::new(deadline);
    let mut writer = stream;
    let mut served: usize = 0;
    loop {
        reader.get_mut().begin_request();
        let t0 = Instant::now();
        let trace_mark = adsafe_trace::mark();
        let req = match http::read_request(&mut reader) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(_)) => {
                // A budget trip surfaces as TimedOut; anything else is
                // a genuine socket failure.
                match reader.get_ref().trip() {
                    Some(Trip::Idle) => {
                        // The normal end of a keep-alive connection:
                        // the client just had nothing more to say.
                        adsafe_trace::counter("serve.idle_closes").incr();
                    }
                    Some(Trip::Deadline) => {
                        adsafe_trace::counter("serve.request_timeouts").incr();
                        let resp = Response::text(
                            408,
                            "request did not complete within the deadline\n",
                        );
                        let _ = http::write_response(&mut writer, &resp);
                    }
                    Some(Trip::SlowLoris) => {
                        adsafe_trace::counter("serve.slowloris_drops").incr();
                        let resp = Response::text(
                            408,
                            "request bytes arrived below the minimum rate\n",
                        );
                        let _ = http::write_response(&mut writer, &resp);
                    }
                    None => {
                        adsafe_trace::counter("serve.io_errors").incr();
                    }
                }
                return;
            }
            Err(ReadError::Parse(e)) => {
                // After a framing error the rest of the byte stream is
                // unparseable noise; answer and close.
                adsafe_trace::counter("serve.http_errors").incr();
                let resp = Response::text(e.status(), format!("{}\n", e.detail()));
                let _ = http::write_response(&mut writer, &resp);
                return;
            }
        };
        served += 1;
        if served > 1 {
            adsafe_trace::counter("serve.keepalive.reuses").incr();
        }
        shared.requests.fetch_add(1, Ordering::SeqCst);
        adsafe_trace::counter("serve.requests").incr();
        // Service time starts once the request has fully arrived —
        // client think-time between keep-alive requests is not billed
        // to the request record or the latency series.
        let req_start_us = adsafe_trace::now_us();
        // Process-wide allocation watermark: the delta at record time
        // is the request's allocated-bytes bill (best-effort under
        // concurrent handlers; 0 when no CountingAlloc is installed).
        let alloc_before = adsafe_trace::alloc::total_allocated();
        // Drop any phases a previous (panicked) handler left behind on
        // this worker, then bill the executor queue wait to the
        // connection's first request.
        let _ = take_phases();
        if let Some(wait) = queue_wait_us.take() {
            note_phase("queue_wait", conn_start_us.saturating_sub(wait), wait);
        }
        let mut panicked = false;
        let resp = {
            let _span = adsafe_trace::span_with(
                "serve.request",
                "serve",
                vec![("method", req.method.clone()), ("path", req.path.clone())],
            );
            match catch_unwind(AssertUnwindSafe(|| route(&req, shared))) {
                Ok(resp) => resp,
                Err(payload) => {
                    // The serving layer broke — not the pipeline, which
                    // contains its own faults. Leave no armed failpoint
                    // behind on this worker thread.
                    failpoints::clear_all();
                    let msg = adsafe::fault::panic_message(&*payload);
                    adsafe_trace::counter("serve.panics").incr();
                    panicked = true;
                    let summary = format!("handler panic on {} {}: {msg}", req.method, req.path);
                    *shared.last_fault.lock().unwrap_or_else(|e| e.into_inner()) =
                        Some(summary.clone());
                    Response::text(
                        500,
                        format!(
                            "DEGRADED: 1 fault(s) contained (serve 1); worst severity: critical\n  \
                             [critical] serve `{}`: panic: {msg}; request aborted\n",
                            req.path
                        ),
                    )
                }
            }
        };
        // Persist only when everyone agrees: client preference, the
        // request cap, no handler panic (its connection state is
        // suspect), and the daemon not draining.
        let keep = req.wants_keep_alive()
            && !panicked
            && (shared.keep_alive_max == 0 || served < shared.keep_alive_max)
            && !shared.stop.load(Ordering::SeqCst);
        let status = resp.status.to_string();
        adsafe_trace::counter(&labeled("serve.status", &[("code", &status)])).incr();
        let write_start_us = adsafe_trace::now_us();
        let wrote = http::write_response_conn(&mut writer, &resp, keep);
        let end_us = adsafe_trace::now_us();
        note_phase("write", write_start_us, end_us.saturating_sub(write_start_us));
        adsafe_trace::histogram("serve.request_us").record(t0.elapsed().as_micros() as u64);
        // Per-endpoint×status SLO series (service time, µs).
        let endpoint = req.path.split('?').next().unwrap_or("").to_string();
        adsafe_trace::histogram(&labeled(
            "serve.latency",
            &[("endpoint", endpoint_key(&endpoint)), ("status", &status)],
        ))
        .record(end_us.saturating_sub(req_start_us));
        // Flight-record the completed request: the record is built
        // whole after the response write, so a connection that dies
        // mid-request leaves nothing behind. Phases cover queue-wait
        // (first request), the pipeline breakdown noted by the
        // handler, render, and the response write.
        let mut phases = take_phases();
        phases.sort_by_key(|p| p.start_us);
        let start_us = phases.first().map_or(req_start_us, |p| p.start_us.min(req_start_us));
        shared.recorder.record(RequestRecord {
            seq: 0,
            run_id: resp.header("X-Adsafe-Run-Id").unwrap_or_default().to_string(),
            method: req.method.clone(),
            endpoint,
            status: resp.status,
            conn_id,
            reuse: (served - 1) as u64,
            start_us,
            total_us: end_us.saturating_sub(start_us),
            alloc_bytes: adsafe_trace::alloc::total_allocated().saturating_sub(alloc_before),
            phases,
        });
        // Handler threads are long-lived: drop this request's span
        // events rather than letting the buffer grow per request.
        let _ = adsafe_trace::drain_from(trace_mark);
        if wrote.is_err() {
            adsafe_trace::counter("serve.write_errors").incr();
            return;
        }
        if !keep {
            return;
        }
    }
}

fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("POST", "/assess") => assess(req, shared),
        ("POST", "/invalidate") => invalidate(req, shared),
        ("GET", "/metrics") => metrics(req),
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/requests") => requests_log(req, shared),
        ("GET", "/trace/recent") => trace_recent(shared),
        ("GET", "/runs") => runs_index(shared),
        ("GET", "/rules") => rules_listing(shared),
        ("GET", p) if p.starts_with("/runs/") => {
            runs_one(p.trim_start_matches("/runs/"), shared)
        }
        (_, "/assess") | (_, "/invalidate") => {
            Response::text(405, "method not allowed\n").with_header("Allow", "POST")
        }
        (_, "/metrics") | (_, "/healthz") | (_, "/runs") | (_, "/requests")
        | (_, "/rules") | (_, "/trace/recent") => {
            Response::text(405, "method not allowed\n").with_header("Allow", "GET")
        }
        (_, p) if p.starts_with("/runs/") => {
            Response::text(405, "method not allowed\n").with_header("Allow", "GET")
        }
        _ => Response::text(404, "not found\n"),
    }
}

/// `GET /metrics[?format=prometheus]`: the stable adsafe text dump by
/// default; the Prometheus exposition format on request.
fn metrics(req: &Request) -> Response {
    // Refresh the allocator gauges (mem.live_bytes, mem.peak_bytes,
    // mem.phase{phase=…}) so both exposition formats see current data.
    adsafe_trace::alloc::publish_metrics();
    match query_param(&req.path, "format") {
        Some("prometheus") => Response {
            status: 200,
            headers: vec![(
                "Content-Type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
            body: adsafe_trace::render_prometheus().into_bytes(),
        },
        Some(other) => {
            Response::text(400, format!("unknown metrics format `{other}` (try prometheus)\n"))
        }
        None => Response::text(200, adsafe_trace::render_text()),
    }
}

/// `GET /requests[?status=200&endpoint=assess&last=50]`: the flight
/// recorder's retained records as a JSONL access log, oldest first.
/// `endpoint` matches either the short key (`assess`) or the literal
/// path (`/assess`); `last` truncates to the most recent N rows after
/// filtering.
fn requests_log(req: &Request, shared: &Arc<Shared>) -> Response {
    let status: Option<u16> = match query_param(&req.path, "status") {
        Some(s) => match s.parse() {
            Ok(v) => Some(v),
            Err(_) => return Response::text(400, "`status` must be a status code\n"),
        },
        None => None,
    };
    let endpoint = query_param(&req.path, "endpoint");
    let last: Option<usize> = match query_param(&req.path, "last") {
        Some(s) => match s.parse() {
            Ok(v) => Some(v),
            Err(_) => return Response::text(400, "`last` must be a non-negative integer\n"),
        },
        None => None,
    };
    let mut rows: Vec<RequestRecord> = shared
        .recorder
        .snapshot()
        .into_iter()
        .filter(|r| status.is_none_or(|s| r.status == s))
        .filter(|r| {
            endpoint.is_none_or(|e| r.endpoint == e || endpoint_key(&r.endpoint) == e)
        })
        .collect();
    if let Some(n) = last {
        if rows.len() > n {
            rows.drain(..rows.len() - n);
        }
    }
    let mut body = String::with_capacity(rows.len() * 192);
    for r in &rows {
        body.push_str(&r.to_json_line());
        body.push('\n');
    }
    Response {
        status: 200,
        headers: vec![("Content-Type".into(), "application/x-ndjson".into())],
        body: body.into_bytes(),
    }
}

/// `GET /trace/recent`: the flight recorder re-emitted as a Chrome
/// trace-event document — one `tid` track per connection, one complete
/// event per request with its phases nested under it. Loads directly
/// in `chrome://tracing` / Perfetto.
fn trace_recent(shared: &Arc<Shared>) -> Response {
    Response::json(200, shared.recorder.to_chrome_json())
}

/// The value of `name` in the request path's query string, if present.
fn query_param<'a>(path: &'a str, name: &str) -> Option<&'a str> {
    let query = path.split_once('?')?.1;
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// `POST /assess` body: `{"dir": "<corpus>", "asil": "D", "jobs": 4,
/// "failpoints": [{"site": "...", "action": "panic"|"delay", "ms": 50}]}`.
/// Only `dir` is required. The response body is the deterministic
/// report markdown; outcome metadata rides in `X-Adsafe-*` headers.
fn assess(req: &Request, shared: &Arc<Shared>) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::text(400, "body is not UTF-8\n");
    };
    let json = match Json::parse(body) {
        Ok(j) => j,
        Err(e) => return Response::text(400, format!("bad JSON body: {e}\n")),
    };
    let Some(dir) = json.get("dir").and_then(Json::as_str) else {
        return Response::text(400, "missing required string field `dir`\n");
    };
    let asil = match json.get("asil") {
        None => Asil::D,
        Some(v) => match v.as_str().and_then(parse_asil) {
            Some(a) => a,
            None => return Response::text(400, "`asil` must be A|B|C|D|QM\n"),
        },
    };
    let jobs = match json.get("jobs") {
        None => shared.jobs,
        Some(v) => match v.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 => n as usize,
            _ => return Response::text(400, "`jobs` must be a non-negative integer\n"),
        },
    };

    // Failpoint injection (tests only in practice, but harmless to
    // expose: failpoints are inert unless a request arms them, and
    // they are thread-local to this worker for this request).
    let mut armed: Vec<failpoints::Armed> = Vec::new();
    if let Some(fps) = json.get("failpoints").and_then(Json::as_arr) {
        for fp in fps {
            let Some(site) = fp.get("site").and_then(Json::as_str) else {
                return Response::text(400, "failpoint needs a `site`\n");
            };
            let action = match fp.get("action").and_then(Json::as_str) {
                Some("panic") => failpoints::Action::Panic("injected by request".into()),
                Some("delay") => {
                    let ms = fp.get("ms").and_then(Json::as_f64).unwrap_or(100.0);
                    failpoints::Action::Delay(Duration::from_millis(ms as u64))
                }
                _ => return Response::text(400, "failpoint `action` must be panic|delay\n"),
            };
            armed.push(failpoints::Armed::new(site, action));
        }
    }
    // The serving layer's own failpoint: a panic armed here escapes to
    // the connection-level catch_unwind (→ 500), unlike checker
    // failpoints, which the pipeline contains (→ 200, degraded).
    failpoints::hit("serve.request");

    let root = PathBuf::from(dir);
    if !root.is_dir() {
        return Response::text(400, format!("`{dir}` is not a directory\n"));
    }
    let mut files = Vec::new();
    collect_sources(&root, &mut files);
    if files.is_empty() {
        return Response::text(400, format!("no C/C++/CUDA sources under `{dir}`\n"));
    }
    // Read all sources first: their content hashes (in stable file
    // order, over the same lossy text the pipeline analyses) form the
    // corpus digest that salts the run ID.
    let mut sources: Vec<(String, String, Vec<u8>)> = Vec::new();
    let mut hashes: Vec<u64> = Vec::new();
    for f in &files {
        if let Ok(bytes) = std::fs::read(f) {
            let path = f.display().to_string();
            hashes.push(adsafe::content_hash(&path, &String::from_utf8_lossy(&bytes)));
            sources.push((module_of(&root, f), path, bytes));
        }
    }
    let digest = corpus_digest(&hashes);
    let ledger = shared.ledger_for(&root);
    let (run_id, seq) = match &ledger {
        Some(l) => {
            let (id, seq) = l.reserve(&digest);
            (id, seq)
        }
        None => (String::new(), 0),
    };

    let mut assessment = Assessment::new().with_options(AssessmentOptions {
        asil,
        jobs,
        store: Some(Arc::clone(&shared.store)),
        run_id: run_id.clone(),
        rules: Some(Arc::clone(&shared.rules)),
        ..AssessmentOptions::default()
    });
    // Pack-loading faults from startup repeat on every request that
    // uses the pack: each response's fault list stands alone.
    for pf in &shared.rules.faults {
        assessment.add_fault(adsafe::query::pack_fault(pf));
    }
    if let Some(l) = &ledger {
        for torn in l.torn_lines() {
            assessment.add_fault(crate::ledger_torn_fault(&l.file(), torn));
        }
    }
    for (module, path, bytes) in &sources {
        assessment.add_file_bytes(module, path, bytes);
    }
    let report = assessment.run();
    drop(armed);
    // The pipeline drains its own span events into the report, so the
    // connection loop never sees them — re-note the phase breakdown
    // (parse, checks, metrics, assess) for the flight recorder from
    // the report's raw events, which carry real start timestamps.
    for e in &report.trace.events {
        if e.cat == "phase" {
            note_phase(
                e.name.strip_prefix("phase.").unwrap_or(&e.name),
                e.start_us,
                e.dur_us,
            );
        }
    }
    let exit_code = crate::exit_code_for(&report);
    if let Some(l) = &ledger {
        let record = RunRecord::from_report(
            &report,
            &run_id,
            seq,
            &root.display().to_string(),
            &digest,
            sources.len() as u64,
            exit_code,
        );
        if l.append(&record).is_ok() {
            adsafe_trace::counter("ledger.appends").incr();
            shared.runs.lock().unwrap_or_else(|e| e.into_inner()).push(record);
        } else {
            adsafe_trace::counter("ledger.append_errors").incr();
        }
    }

    // Eviction pressure is daemon observability, not assessment
    // outcome: the fault surfaces on /healthz (and the store.evictions
    // counter), never in the report — whose bytes must stay identical
    // to the CLI's regardless of cache pressure.
    if let Some(evicted) = shared.store.take_eviction_fault() {
        *shared.last_fault.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(evicted.to_string());
    }
    shared.last_degraded.store(report.degraded, Ordering::SeqCst);
    if let Some(worst) = report.faults.iter().map(|f| f.to_string()).last() {
        *shared.last_fault.lock().unwrap_or_else(|e| e.into_inner()) = Some(worst);
    }
    adsafe_trace::counter("serve.assessments").incr();

    let counter_of = |name: &str| {
        report.trace.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    };
    // Digest of the per-request trace: the run's counter deltas, which
    // distinguish cold from warm and serial from parallel requests.
    let mut digest_input = String::new();
    for (name, v) in &report.trace.counters {
        digest_input.push_str(name);
        digest_input.push('=');
        digest_input.push_str(&v.to_string());
        digest_input.push('\n');
    }
    let digest = format!("{:016x}", adsafe::content_hash("serve.trace", &digest_input));

    let render_start_us = adsafe_trace::now_us();
    let body = render::deterministic_report_markdown(&report).into_bytes();
    note_phase(
        "render",
        render_start_us,
        adsafe_trace::now_us().saturating_sub(render_start_us),
    );
    let mut resp = Response {
        status: 200,
        headers: vec![("Content-Type".into(), "text/markdown; charset=utf-8".into())],
        body,
    }
    .with_header("X-Adsafe-Exit-Code", exit_code.to_string())
    .with_header("X-Adsafe-Degraded", report.degraded.to_string())
    .with_header("X-Adsafe-Cache-Hits", counter_of("cache.hits").to_string())
    .with_header("X-Adsafe-Trace-Digest", digest);
    if !run_id.is_empty() {
        resp = resp.with_header("X-Adsafe-Run-Id", run_id);
    }
    resp
}

/// `GET /runs`: summaries of every run this daemon has appended, in
/// append order, as a JSON array.
fn runs_index(shared: &Arc<Shared>) -> Response {
    use std::fmt::Write as _;
    let runs = shared.runs.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"run\":");
        write_escaped(&mut out, &r.run);
        out.push_str(",\"corpus_root\":");
        write_escaped(&mut out, &r.corpus_root);
        let _ = write!(
            out,
            ",\"seq\":{},\"exit_code\":{},\"degraded\":{},\"files\":{},\"blocking\":{}}}",
            r.seq,
            r.exit_code,
            r.degraded,
            r.files,
            r.blocking_count()
        );
    }
    out.push(']');
    Response::json(200, out)
}

/// `GET /rules`: every rule this daemon evaluates on `/assess` —
/// native checkers first (registration order), then the loaded query
/// pack (pack order) — with ids, scopes, ISO references, and any
/// contained pack-loading faults. The order is stable across requests.
fn rules_listing(shared: &Arc<Shared>) -> Response {
    use std::fmt::Write as _;
    let scope_name = |s: adsafe::checkers::CheckScope| match s {
        adsafe::checkers::CheckScope::File => "file",
        adsafe::checkers::CheckScope::Program => "program",
    };
    let mut out = String::from("{\"rules\":[");
    let mut first = true;
    let entry = |out: &mut String,
                 first: &mut bool,
                 id: &str,
                 origin: &str,
                 scope: &str,
                 iso: &[&str],
                 desc: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("{\"id\":");
        write_escaped(out, id);
        let _ = write!(out, ",\"origin\":\"{origin}\",\"scope\":\"{scope}\",\"iso\":[");
        for (i, r) in iso.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(out, r);
        }
        out.push_str("],\"desc\":");
        write_escaped(out, desc);
        out.push('}');
    };
    for c in adsafe::checkers::default_checks() {
        entry(&mut out, &mut first, c.id(), "native", scope_name(c.scope()), c.iso_refs(), c.description());
    }
    for r in &shared.rules.rules {
        entry(&mut out, &mut first, r.id, "query", scope_name(r.scope), r.iso, r.desc);
    }
    out.push_str("],\"pack_faults\":[");
    for (i, f) in shared.rules.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        write_escaped(&mut out, &f.file);
        let _ = write!(out, ",\"line\":{},\"detail\":", f.line);
        write_escaped(&mut out, &f.detail);
        out.push('}');
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// `GET /runs/<ref>`: the full ledger record of one run — matched by
/// run ID, unique ID prefix, or sequence number — as JSON.
fn runs_one(reference: &str, shared: &Arc<Shared>) -> Response {
    let runs = shared.runs.lock().unwrap_or_else(|e| e.into_inner());
    let seq: Option<u64> = reference.parse().ok();
    let matches: Vec<&RunRecord> = runs
        .iter()
        .filter(|r| Some(r.seq) == seq || r.run.starts_with(reference))
        .collect();
    match matches.as_slice() {
        [one] => Response::json(200, one.to_json_line()),
        [] => Response::text(404, format!("no run matches `{reference}`\n")),
        many => Response::text(
            409,
            format!("`{reference}` is ambiguous ({} runs match); use more digits\n", many.len()),
        ),
    }
}

/// `POST /invalidate` body: `{"paths": ["a.cc", …]}` or
/// `{"all": true}`. Drops resident (and backing disk) facts so the
/// next assessment re-analyses those files from source.
fn invalidate(req: &Request, shared: &Arc<Shared>) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::text(400, "body is not UTF-8\n");
    };
    let json = match Json::parse(body) {
        Ok(j) => j,
        Err(e) => return Response::text(400, format!("bad JSON body: {e}\n")),
    };
    let dropped = if matches!(json.get("all"), Some(Json::Bool(true))) {
        shared.store.invalidate_all()
    } else if let Some(arr) = json.get("paths").and_then(Json::as_arr) {
        let mut paths = Vec::with_capacity(arr.len());
        for p in arr {
            match p.as_str() {
                Some(s) => paths.push(s.to_string()),
                None => return Response::text(400, "`paths` must be an array of strings\n"),
            }
        }
        shared.store.invalidate_paths(&paths)
    } else {
        return Response::text(400, "need `paths` (array) or `all`: true\n");
    };
    Response::json(200, format!("{{\"dropped\":{dropped}}}"))
}

/// `GET /healthz`: readiness plus the degradation state of the most
/// recent assessment.
fn healthz(shared: &Arc<Shared>) -> Response {
    let status = if shared.stop.load(Ordering::SeqCst) { "draining" } else { "ok" };
    let last_fault = shared.last_fault.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut out = String::from("{");
    out.push_str(&format!("\"status\":\"{status}\""));
    out.push_str(&format!(",\"requests\":{}", shared.requests.load(Ordering::SeqCst)));
    out.push_str(&format!(
        ",\"queue_depth\":{}",
        adsafe_trace::gauge("pool.queue_depth").get()
    ));
    out.push_str(&format!(",\"queue_capacity\":{}", shared.queue_capacity));
    out.push_str(&format!(",\"store_entries\":{}", shared.store.len()));
    out.push_str(&format!(",\"store_bytes\":{}", shared.store.bytes()));
    out.push_str(&format!(",\"store_budget\":{}", shared.store.budget()));
    out.push_str(&format!(
        ",\"store_evictions\":{}",
        adsafe_trace::counter("store.evictions").get()
    ));
    out.push_str(&format!(",\"keep_alive_max\":{}", shared.keep_alive_max));
    out.push_str(&format!(",\"recorder_len\":{}", shared.recorder.len()));
    out.push_str(&format!(",\"recorder_cap\":{}", shared.recorder.capacity()));
    out.push_str(&format!(",\"recorder_evicted\":{}", shared.recorder.evicted()));
    out.push_str(&format!(",\"mem_live\":{}", adsafe_trace::alloc::live_bytes()));
    out.push_str(&format!(",\"mem_peak\":{}", adsafe_trace::alloc::peak_live_bytes()));
    out.push_str(&format!(
        ",\"last_degraded\":{}",
        shared.last_degraded.load(Ordering::SeqCst)
    ));
    out.push_str(",\"last_fault\":");
    match last_fault {
        Some(f) => write_escaped(&mut out, &f),
        None => out.push_str("null"),
    }
    out.push('}');
    Response::json(200, out)
}

fn parse_asil(s: &str) -> Option<Asil> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Some(Asil::A),
        "B" => Some(Asil::B),
        "C" => Some(Asil::C),
        "D" => Some(Asil::D),
        "QM" => Some(Asil::Qm),
        _ => None,
    }
}
