//! Per-connection read discipline for the `adsafe serve` daemon.
//!
//! A keep-alive server holds sockets open between requests, which
//! turns every connection into a liability with three distinct failure
//! budgets: how long a *quiet* connection may sit between requests
//! (idle timeout), how long one request may take end to end (request
//! deadline), and how slowly a client may feed bytes once it has
//! started talking (the slow-loris floor). [`DeadlineReader`] wraps a
//! [`TcpStream`] and enforces all three *below* the `BufReader` the
//! HTTP codec parses from, so the codec itself stays timing-free.
//!
//! Mechanically the reader never blocks for long: each `read` slices
//! the remaining budget into short socket timeouts
//! ([`POLL_SLICE`]-sized) and re-checks a shared stop flag between
//! slices, so a draining daemon reclaims even idle keep-alive
//! connections within one slice rather than one idle timeout.
//!
//! When a budget is exhausted the reader records *which one* as a
//! [`Trip`] and surfaces a `TimedOut` I/O error to the codec; the
//! connection loop maps the trip onto the right wire behaviour (idle
//! expiry → clean close, mid-request stall → `408`).

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How finely budgets are sliced into socket timeouts. Bounds both
/// stop-flag latency and the cost of a spurious wakeup.
pub const POLL_SLICE: Duration = Duration::from_millis(250);

/// Grace period before the slow-loris floor is enforced: a legitimate
/// client gets this long to ramp up before its byte rate is judged.
pub const SLOW_LORIS_GRACE: Duration = Duration::from_millis(500);

/// Which budget a [`DeadlineReader`] exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// No request bytes arrived within the idle timeout — the normal
    /// end of a keep-alive connection; answered with a clean close.
    Idle,
    /// A request started but did not complete within the request
    /// deadline; answered with `408`.
    Deadline,
    /// A request's byte rate fell below the slow-loris floor after the
    /// grace period; answered with `408`.
    SlowLoris,
}

/// Budget configuration for a [`DeadlineReader`]; zero durations or a
/// zero rate disable the corresponding check.
#[derive(Debug, Clone, Copy)]
pub struct ReadBudget {
    /// Max quiet time between requests before [`Trip::Idle`].
    pub idle_timeout: Duration,
    /// Max wall time from a request's first byte to its last before
    /// [`Trip::Deadline`].
    pub request_timeout: Duration,
    /// Minimum sustained bytes/second once a request has started (and
    /// [`SLOW_LORIS_GRACE`] has passed) before [`Trip::SlowLoris`].
    pub min_byte_rate: u64,
}

/// A [`TcpStream`] read wrapper enforcing idle, deadline, and byte-rate
/// budgets; sits under the codec's `BufReader`.
#[derive(Debug)]
pub struct DeadlineReader {
    stream: TcpStream,
    stop: Arc<AtomicBool>,
    budget: ReadBudget,
    /// When the current between-requests wait began.
    wait_since: Instant,
    /// First-byte instant of the in-flight request, if one started.
    started: Option<Instant>,
    /// Bytes read for the in-flight request.
    bytes: u64,
    tripped: Option<Trip>,
}

fn timed_out(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::TimedOut, what.to_string())
}

impl DeadlineReader {
    /// Wraps `stream`; `stop` is the daemon's drain flag — once set,
    /// reads return EOF (a clean close) within one [`POLL_SLICE`].
    pub fn new(stream: TcpStream, stop: Arc<AtomicBool>, budget: ReadBudget) -> DeadlineReader {
        DeadlineReader {
            stream,
            stop,
            budget,
            wait_since: Instant::now(),
            started: None,
            bytes: 0,
            tripped: None,
        }
    }

    /// Resets the per-request state; the connection loop calls this
    /// after each response so the next request gets fresh budgets.
    pub fn begin_request(&mut self) {
        self.wait_since = Instant::now();
        self.started = None;
        self.bytes = 0;
    }

    /// Which budget (if any) was exhausted; set once, never cleared by
    /// [`begin_request`](Self::begin_request) — a tripped connection
    /// is done.
    pub fn trip(&self) -> Option<Trip> {
        self.tripped
    }

    /// Remaining budget right now, or the trip that just exhausted it.
    fn remaining(&mut self) -> Result<Duration, Trip> {
        match self.started {
            None => {
                if self.budget.idle_timeout.is_zero() {
                    return Ok(POLL_SLICE);
                }
                let waited = self.wait_since.elapsed();
                if waited >= self.budget.idle_timeout {
                    return Err(Trip::Idle);
                }
                Ok(self.budget.idle_timeout - waited)
            }
            Some(started) => {
                let elapsed = started.elapsed();
                if !self.budget.request_timeout.is_zero() && elapsed >= self.budget.request_timeout
                {
                    return Err(Trip::Deadline);
                }
                if self.budget.min_byte_rate > 0 && elapsed > SLOW_LORIS_GRACE {
                    let required =
                        self.budget.min_byte_rate.saturating_mul(elapsed.as_millis() as u64)
                            / 1000;
                    if self.bytes < required {
                        return Err(Trip::SlowLoris);
                    }
                }
                if self.budget.request_timeout.is_zero() {
                    Ok(POLL_SLICE)
                } else {
                    Ok(self.budget.request_timeout - elapsed)
                }
            }
        }
    }
}

impl Read for DeadlineReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.tripped.is_some() {
            return Err(timed_out("connection budget already exhausted"));
        }
        loop {
            if self.stop.load(Ordering::Relaxed) {
                // Drain: present EOF so the codec sees a clean close.
                return Ok(0);
            }
            let remaining = match self.remaining() {
                Ok(d) => d,
                Err(trip) => {
                    self.tripped = Some(trip);
                    return Err(timed_out("connection budget exhausted"));
                }
            };
            let slice = remaining.min(POLL_SLICE).max(Duration::from_millis(1));
            self.stream.set_read_timeout(Some(slice))?;
            match self.stream.read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    if self.started.is_none() {
                        self.started = Some(Instant::now());
                    }
                    self.bytes += n as u64;
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn budget(idle_ms: u64, req_ms: u64, rate: u64) -> ReadBudget {
        ReadBudget {
            idle_timeout: Duration::from_millis(idle_ms),
            request_timeout: Duration::from_millis(req_ms),
            min_byte_rate: rate,
        }
    }

    #[test]
    fn quiet_connection_trips_idle() {
        let (_client, server) = pair();
        let stop = Arc::new(AtomicBool::new(false));
        let mut r = DeadlineReader::new(server, stop, budget(100, 5_000, 0));
        let mut buf = [0u8; 16];
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(r.trip(), Some(Trip::Idle));
    }

    #[test]
    fn stalled_request_trips_deadline_not_idle() {
        let (mut client, server) = pair();
        let stop = Arc::new(AtomicBool::new(false));
        let mut r = DeadlineReader::new(server, stop, budget(5_000, 200, 0));
        client.write_all(b"GET ").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 16];
        let n = r.read(&mut buf).unwrap();
        assert!(n > 0, "first bytes arrive");
        // Client now stalls; the *request* deadline should trip.
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(r.trip(), Some(Trip::Deadline));
    }

    #[test]
    fn slow_drip_below_the_rate_floor_trips_slow_loris() {
        let (client, server) = pair();
        let stop = Arc::new(AtomicBool::new(false));
        // 10 KiB/s floor, generous deadline: only the rate can trip.
        let mut r = DeadlineReader::new(server, stop, budget(5_000, 30_000, 10 * 1024));
        let writer = std::thread::spawn(move || {
            let mut client = client;
            // One byte every 150ms is far below 10 KiB/s.
            for _ in 0..40 {
                if client.write_all(b"x").is_err() {
                    return;
                }
                let _ = client.flush();
                std::thread::sleep(Duration::from_millis(150));
            }
        });
        let mut buf = [0u8; 16];
        let tripped = loop {
            match r.read(&mut buf) {
                Ok(0) => panic!("unexpected EOF"),
                Ok(_) => continue,
                Err(_) => break r.trip(),
            }
        };
        assert_eq!(tripped, Some(Trip::SlowLoris));
        drop(r);
        writer.join().unwrap();
    }

    #[test]
    fn stop_flag_turns_idle_wait_into_clean_eof() {
        let (_client, server) = pair();
        let stop = Arc::new(AtomicBool::new(false));
        let mut r = DeadlineReader::new(server, Arc::clone(&stop), budget(60_000, 60_000, 0));
        let flipper = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                stop.store(true, Ordering::Relaxed);
            })
        };
        let started = Instant::now();
        let mut buf = [0u8; 16];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 0, "drain presents EOF");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "EOF within a slice or two, not the idle timeout"
        );
        flipper.join().unwrap();
    }

    #[test]
    fn begin_request_resets_budgets_between_requests() {
        let (mut client, server) = pair();
        let stop = Arc::new(AtomicBool::new(false));
        let mut r = DeadlineReader::new(server, stop, budget(2_000, 2_000, 0));
        client.write_all(b"first\nsecond\n").unwrap();
        client.flush().unwrap();
        let mut lines = BufReader::new(&mut r);
        let mut line = String::new();
        lines.read_line(&mut line).unwrap();
        assert_eq!(line, "first\n");
        // A fresh request sees fresh budgets; bytes the BufReader
        // already holds are served without touching the socket again —
        // exactly how pipelined keep-alive requests behave.
        lines.get_mut().begin_request();
        line.clear();
        lines.read_line(&mut line).unwrap();
        assert_eq!(line, "second\n");
        assert_eq!(lines.get_mut().trip(), None);
    }
}
