//! `adsafe top`: a polling terminal dashboard over a live daemon.
//!
//! Zero dependencies: the client rides the crate's own [`http`] codec,
//! the redraw is a plain ANSI clear (`ESC[2J ESC[H`), and the data
//! sources are the two endpoints every daemon already serves —
//! `GET /metrics` (the stable `adsafe-metrics/1` text dump) and
//! `GET /healthz`. Rendering is a pure function over two parsed
//! snapshots ([`render_dashboard`]), so the frame layout is unit-
//! testable without a socket; [`run_top`] owns the fetch/sleep loop.

use crate::http;
use adsafe_trace::json::Json;
use std::collections::BTreeMap;
use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed `/metrics` text dump.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// Counter name (full registry key, labels included) → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram lines in dump order.
    pub hists: Vec<HistLine>,
}

/// One `hist` line of the `/metrics` text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistLine {
    /// Full registry key, labels included.
    pub name: String,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Interpolated quantile estimates as rendered by the daemon.
    pub p50: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// 99.9th percentile estimate.
    pub p999: u64,
}

/// Parses the `adsafe-metrics/1` text format. Unknown line shapes are
/// skipped, not errors — the dashboard must keep working against a
/// daemon one format revision ahead.
pub fn parse_metrics_text(text: &str) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("counter ") {
            if let Some((name, v)) = rest.rsplit_once(' ') {
                if let Ok(v) = v.parse() {
                    snap.counters.insert(name.to_string(), v);
                }
            }
        } else if let Some(rest) = line.strip_prefix("gauge ") {
            if let Some((name, v)) = rest.rsplit_once(' ') {
                if let Ok(v) = v.parse() {
                    snap.gauges.insert(name.to_string(), v);
                }
            }
        } else if let Some(rest) = line.strip_prefix("hist ") {
            // `hist <name> count C sum S p50 A p99 B p999 D` — split at
            // the ` count ` marker so a labeled name survives intact.
            let Some((name, nums)) = rest.split_once(" count ") else { continue };
            let fields: Vec<&str> = nums.split_whitespace().collect();
            let num = |key: &str| -> Option<u64> {
                fields
                    .iter()
                    .position(|f| *f == key)
                    .and_then(|i| fields.get(i + 1))
                    .and_then(|v| v.parse().ok())
            };
            let (Some(sum), Some(p50), Some(p99), Some(p999)) =
                (num("sum"), num("p50"), num("p99"), num("p999"))
            else {
                continue;
            };
            let Some(count) = fields.first().and_then(|v| v.parse().ok()) else { continue };
            snap.hists.push(HistLine { name: name.to_string(), count, sum, p50, p99, p999 });
        }
    }
    snap
}

/// Splits a labeled registry key into its base name and label pairs.
/// `serve.latency{endpoint="assess",status="200"}` →
/// `("serve.latency", [("endpoint","assess"), ("status","200")])`.
/// Escapes are left as-is (the dashboard's labels never contain them).
pub fn split_labels(key: &str) -> (&str, Vec<(String, String)>) {
    let Some((base, rest)) = key.split_once('{') else { return (key, Vec::new()) };
    let inner = rest.trim_end_matches('}');
    let mut labels = Vec::new();
    for pair in inner.split(',') {
        if let Some((k, v)) = pair.split_once("=\"") {
            labels.push((k.to_string(), v.trim_end_matches('"').to_string()));
        }
    }
    (base, labels)
}

/// Formats a byte count with a short unit for the memory panel.
fn fmt_bytes(b: u64) -> String {
    match b {
        0..=1023 => format!("{b}B"),
        1024..=1048575 => format!("{:.1}KiB", b as f64 / 1024.0),
        1048576..=1073741823 => format!("{:.1}MiB", b as f64 / 1048576.0),
        _ => format!("{:.2}GiB", b as f64 / 1073741824.0),
    }
}

/// Formats µs as a human latency (`850µs`, `12.4ms`, `3.21s`).
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}µs")
    }
}

/// Renders one dashboard frame (no ANSI codes — the caller owns the
/// clear/redraw). `prev` with the seconds since it was taken enables
/// the req/s rate; `health` is the parsed `/healthz` document.
pub fn render_dashboard(
    addr: &str,
    cur: &MetricsSnapshot,
    prev: Option<(&MetricsSnapshot, f64)>,
    health: &Json,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(2048);
    let counter = |name: &str| cur.counters.get(name).copied().unwrap_or(0);
    let health_num =
        |key: &str| health.get(key).and_then(Json::as_f64).map_or(0, |v| v as u64);
    let status = health.get("status").and_then(Json::as_str).unwrap_or("unreachable");
    let requests = counter("serve.requests");
    let rate = prev
        .filter(|(_, secs)| *secs > 0.0)
        .map(|(p, secs)| {
            let before = p.counters.get("serve.requests").copied().unwrap_or(0);
            requests.saturating_sub(before) as f64 / secs
        })
        .map_or(String::new(), |r| format!("  ({r:.1}/s)"));
    let _ = writeln!(out, "adsafe top — {addr}   status {status}   requests {requests}{rate}");
    let _ = writeln!(
        out,
        "queue {}/{}   keep-alive reuses {}   recorder {}/{} (evicted {})",
        cur.gauges.get("pool.queue_depth").copied().unwrap_or(0),
        health_num("queue_capacity"),
        counter("serve.keepalive.reuses"),
        health_num("recorder_len"),
        health_num("recorder_cap"),
        health_num("recorder_evicted"),
    );
    let _ = writeln!(
        out,
        "store {} entries, {} bytes (budget {}), evictions {}",
        health_num("store_entries"),
        health_num("store_bytes"),
        health_num("store_budget"),
        counter("store.evictions"),
    );

    // Memory panel: the allocator gauges the daemon publishes on
    // /metrics (all zero until a binary with a CountingAlloc serves
    // an assessment — then live/peak plus the per-phase breakdown).
    let mem_live = cur.gauges.get("mem.live_bytes").copied().unwrap_or(0);
    let mem_peak = cur.gauges.get("mem.peak_bytes").copied().unwrap_or(0);
    if mem_live > 0 || mem_peak > 0 {
        let _ = writeln!(out, "mem live {}   peak {}", fmt_bytes(mem_live), fmt_bytes(mem_peak));
        let phases: Vec<String> = cur
            .gauges
            .iter()
            .filter(|(k, _)| k.starts_with("mem.phase{"))
            .map(|(k, v)| {
                let (_, labels) = split_labels(k);
                let phase = labels
                    .iter()
                    .find(|(n, _)| n == "phase")
                    .map_or("?".to_string(), |(_, p)| p.clone());
                format!("{phase}={}", fmt_bytes(*v))
            })
            .collect();
        if !phases.is_empty() {
            let _ = writeln!(out, "mem by phase: {}", phases.join("  "));
        }
    }

    // Status code mix and chaos-visible fault counters, enumerated by
    // label/prefix because both families are created dynamically.
    let codes: Vec<String> = cur
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("serve.status{"))
        .map(|(k, v)| {
            let (_, labels) = split_labels(k);
            let code = labels
                .iter()
                .find(|(n, _)| n == "code")
                .map_or("?".to_string(), |(_, c)| c.clone());
            format!("{code}={v}")
        })
        .collect();
    if !codes.is_empty() {
        let _ = writeln!(out, "status codes: {}", codes.join("  "));
    }
    let faults: Vec<String> = cur
        .counters
        .iter()
        .filter(|(k, v)| k.starts_with("chaos.") && **v > 0)
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    if !faults.is_empty() {
        let _ = writeln!(out, "chaos faults: {}", faults.join("  "));
    }

    // Per-endpoint×status SLO table from the labeled latency series.
    let mut rows: Vec<(String, String, &HistLine)> = cur
        .hists
        .iter()
        .filter_map(|h| {
            let (base, labels) = split_labels(&h.name);
            if base != "serve.latency" {
                return None;
            }
            let get = |name: &str| {
                labels
                    .iter()
                    .find(|(k, _)| k == name)
                    .map_or("?".to_string(), |(_, v)| v.clone())
            };
            Some((get("endpoint"), get("status"), h))
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    if !rows.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<12} {:>6} {:>8} {:>9} {:>9} {:>9}",
            "endpoint", "status", "count", "p50", "p99", "p999"
        );
        for (endpoint, status, h) in rows {
            let _ = writeln!(
                out,
                "{endpoint:<12} {status:>6} {:>8} {:>9} {:>9} {:>9}",
                h.count,
                fmt_us(h.p50),
                fmt_us(h.p99),
                fmt_us(h.p999),
            );
        }
    }
    if let Some(qw) = cur.hists.iter().find(|h| h.name == "pool.queue_wait") {
        let _ = writeln!(
            out,
            "\npool.queue_wait: count {}  p50 {}  p99 {}  p999 {}",
            qw.count,
            fmt_us(qw.p50),
            fmt_us(qw.p99),
            fmt_us(qw.p999),
        );
    }
    out
}

/// One `GET` over a fresh connection; 200 bodies only.
pub fn fetch(addr: &str, path: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("socket setup: {e}"))?;
    stream
        .write_all(&http::encode_request("GET", path, &[("Connection", "close")], b""))
        .map_err(|e| format!("cannot send GET {path}: {e}"))?;
    let resp = http::read_response(&mut BufReader::new(stream))
        .map_err(|e| format!("bad response for GET {path}: {e:?}"))?;
    if resp.status != 200 {
        return Err(format!("GET {path} answered {}", resp.status));
    }
    Ok(resp.body_text())
}

/// The polling loop behind `adsafe top`: fetch `/metrics` + `/healthz`
/// every `interval`, clear the terminal, render. `iterations` of 0
/// polls until the process is killed; a finite count (used by CI and
/// tests) stops after that many frames. Errors on the *first* poll are
/// fatal (the daemon is unreachable); later errors render as a banner
/// and the loop keeps trying, so a daemon restart does not kill an
/// attached dashboard.
pub fn run_top(addr: &str, interval: Duration, iterations: u64) -> Result<(), String> {
    let mut prev: Option<MetricsSnapshot> = None;
    let mut frame: u64 = 0;
    loop {
        let fetched = fetch(addr, "/metrics")
            .and_then(|m| fetch(addr, "/healthz").map(|h| (m, h)));
        match fetched {
            Ok((metrics_text, health_text)) => {
                let cur = parse_metrics_text(&metrics_text);
                let health = Json::parse(&health_text)
                    .map_err(|e| format!("bad /healthz JSON: {e}"))?;
                let dash = render_dashboard(
                    addr,
                    &cur,
                    prev.as_ref().map(|p| (p, interval.as_secs_f64())),
                    &health,
                );
                // Clear screen + home, then the frame.
                print!("\x1b[2J\x1b[H{dash}");
                let _ = std::io::stdout().flush();
                prev = Some(cur);
            }
            Err(e) if frame == 0 => return Err(e),
            Err(e) => {
                println!("\x1b[2J\x1b[Hadsafe top — {addr}   [poll failed: {e}]");
                let _ = std::io::stdout().flush();
            }
        }
        frame += 1;
        if iterations != 0 && frame >= iterations {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUMP: &str = "\
# adsafe-metrics/1
counter serve.keepalive.reuses 12
counter serve.requests 40
counter serve.status{code=\"200\"} 38
counter serve.status{code=\"503\"} 2
counter store.evictions 1
gauge pool.queue_depth 3
gauge mem.live_bytes 10485760
gauge mem.peak_bytes 47185920
gauge mem.phase{phase=\"parse\"} 31457280
gauge mem.phase{phase=\"checks\"} 2097152
hist pool.queue_wait count 40 sum 80000 p50 1500 p99 4000 p999 4100
hist serve.latency{endpoint=\"assess\",status=\"200\"} count 38 sum 266000 p50 6500 p99 12000 p999 12800
hist serve.request_us count 40 sum 280000 p50 6600 p99 12500 p999 13000
";

    #[test]
    fn parses_counters_gauges_and_labeled_hists() {
        let snap = parse_metrics_text(DUMP);
        assert_eq!(snap.counters["serve.requests"], 40);
        assert_eq!(snap.counters["serve.status{code=\"503\"}"], 2);
        assert_eq!(snap.gauges["pool.queue_depth"], 3);
        assert_eq!(snap.hists.len(), 3);
        let lat = &snap.hists[1];
        assert_eq!(lat.name, "serve.latency{endpoint=\"assess\",status=\"200\"}");
        assert_eq!((lat.count, lat.p50, lat.p999), (38, 6500, 12800));
    }

    #[test]
    fn split_labels_extracts_pairs() {
        let (base, labels) = split_labels("serve.latency{endpoint=\"assess\",status=\"200\"}");
        assert_eq!(base, "serve.latency");
        assert_eq!(
            labels,
            vec![
                ("endpoint".to_string(), "assess".to_string()),
                ("status".to_string(), "200".to_string())
            ]
        );
        assert_eq!(split_labels("plain.name"), ("plain.name", Vec::new()));
    }

    #[test]
    fn dashboard_renders_slo_rows_and_rates() {
        let cur = parse_metrics_text(DUMP);
        let mut before = cur.clone();
        before.counters.insert("serve.requests".to_string(), 30);
        let health = Json::parse(
            "{\"status\":\"ok\",\"queue_capacity\":32,\"store_entries\":5,\
             \"store_bytes\":1000,\"store_budget\":0,\"recorder_len\":40,\
             \"recorder_cap\":256,\"recorder_evicted\":0}",
        )
        .unwrap();
        let dash = render_dashboard("127.0.0.1:7026", &cur, Some((&before, 2.0)), &health);
        assert!(dash.contains("status ok"), "{dash}");
        assert!(dash.contains("requests 40  (5.0/s)"), "{dash}");
        assert!(dash.contains("queue 3/32"), "{dash}");
        assert!(dash.contains("recorder 40/256"), "{dash}");
        assert!(dash.contains("mem live 10.0MiB   peak 45.0MiB"), "{dash}");
        // Gauge keys sort alphabetically, so checks precedes parse.
        assert!(dash.contains("mem by phase: checks=2.0MiB  parse=30.0MiB"), "{dash}");
        assert!(dash.contains("status codes: 200=38  503=2"), "{dash}");
        assert!(dash.contains("assess"), "{dash}");
        assert!(dash.contains("6.5ms"), "{dash}");
        assert!(dash.contains("12.8ms"), "{dash}");
        assert!(dash.contains("pool.queue_wait: count 40"), "{dash}");
        assert!(!dash.contains('\x1b'), "frame itself carries no ANSI codes");
    }

    #[test]
    fn dashboard_survives_missing_series() {
        let empty = MetricsSnapshot::default();
        let health = Json::parse("{\"status\":\"ok\"}").unwrap();
        let dash = render_dashboard("x", &empty, None, &health);
        assert!(dash.contains("requests 0"), "{dash}");
        assert!(!dash.contains("endpoint"), "no SLO table without latency series");
        assert!(!dash.contains("mem live"), "no memory panel without allocator gauges");
    }
}
