//! Line-of-code metrics: physical lines, non-blank non-comment lines
//! (NLOC), and comment density, per file and per span.

use adsafe_lang::preprocess::preprocess;
use adsafe_lang::{FileId, SourceFile, Span};

/// Line counts for a file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocCounts {
    /// Total physical lines.
    pub physical: usize,
    /// Lines containing at least one code token (after comment/directive
    /// stripping) — the "NLOC" figure tools like Lizard report.
    pub nloc: usize,
    /// Lines containing (part of) a comment.
    pub comment: usize,
    /// Blank lines.
    pub blank: usize,
    /// Preprocessor directive lines.
    pub directive: usize,
}

impl LocCounts {
    /// Comment density: comment lines / (comment + code lines).
    pub fn comment_ratio(&self) -> f64 {
        let denom = self.comment + self.nloc;
        if denom == 0 {
            0.0
        } else {
            self.comment as f64 / denom as f64
        }
    }
}

/// Counts lines in a source file.
pub fn count_file(file: &SourceFile) -> LocCounts {
    let pre = preprocess(file.id(), file.text());
    let mut c = LocCounts { physical: file.line_count(), ..LocCounts::default() };
    let clean_lines: Vec<&str> = pre.text.split('\n').collect();
    for (i, (_, raw)) in file.lines().enumerate() {
        let clean = clean_lines.get(i).copied().unwrap_or("");
        let raw_trim = raw.trim();
        let clean_trim = clean.trim();
        let had_comment = raw.contains("//") || raw.contains("/*") || raw.contains("*/")
            || (raw_trim.starts_with('*') && clean_trim.is_empty() && !raw_trim.is_empty());
        if raw_trim.is_empty() {
            c.blank += 1;
        } else if raw_trim.starts_with('#') {
            c.directive += 1;
        } else if !clean_trim.is_empty() {
            c.nloc += 1;
            if had_comment {
                c.comment += 1;
            }
        } else if had_comment || !raw_trim.is_empty() {
            c.comment += 1;
        }
    }
    c
}

/// Number of non-blank lines covered by `span` within `file` — used for
/// function-length metrics.
pub fn span_nloc(file: &SourceFile, span: Span) -> usize {
    debug_assert_eq!(file.id(), span.file, "span from a different file");
    let text = file.text();
    let start = (span.start as usize).min(text.len());
    let end = (span.end as usize).min(text.len());
    text[start..end]
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

/// Convenience: line counts straight from text.
pub fn count_text(text: &str) -> LocCounts {
    let mut sm = adsafe_lang::SourceMap::new();
    let id = sm.add_file("<text>", text);
    let _ = FileId(0);
    count_file(sm.file(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_mixed_file() {
        let src = "\
// header comment
#include <stdio.h>

int main() { // entry
    return 0; /* done */
}
";
        let c = count_text(src);
        assert_eq!(c.physical, 6);
        assert_eq!(c.blank, 1);
        assert_eq!(c.directive, 1);
        assert_eq!(c.nloc, 3); // int main, return, }
        assert_eq!(c.comment, 3); // header line + the two inline-comment code lines
    }

    #[test]
    fn pure_comment_lines() {
        let c = count_text("// a\n// b\nint x;\n");
        assert_eq!(c.nloc, 1);
        assert_eq!(c.comment, 2);
        assert!((c.comment_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn block_comment_spanning_lines() {
        let c = count_text("/*\n multi\n line\n*/\nint x;\n");
        assert_eq!(c.nloc, 1);
        assert_eq!(c.comment, 4);
    }

    #[test]
    fn empty_text() {
        let c = count_text("");
        assert_eq!(c.nloc, 0);
        assert_eq!(c.comment_ratio(), 0.0);
    }

    #[test]
    fn span_nloc_counts_nonblank() {
        let mut sm = adsafe_lang::SourceMap::new();
        let id = sm.add_file("a.c", "int f() {\n\n  return 1;\n}\n");
        let f = sm.file(id);
        let span = Span::new(id, 0, f.text().len() as u32);
        assert_eq!(span_nloc(f, span), 3);
    }
}
