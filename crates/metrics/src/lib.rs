//! # adsafe-metrics — software metrics for ISO 26262 assessment
//!
//! The measurement engine behind the paper's Figure 3 and the
//! architectural-design rows of Tables 1–2: cyclomatic complexity (Lizard
//! semantics), line counts, per-function structure metrics, Halstead
//! metrics, and module-level aggregation with cohesion/coupling.
//!
//! ```
//! use adsafe_lang::{parse_source, SourceMap};
//! use adsafe_metrics::{cyclomatic_complexity, ComplexityBand};
//!
//! let mut sm = SourceMap::new();
//! let id = sm.add_file("f.c", "int f(int x) { if (x > 0 && x < 9) return 1; return 0; }");
//! let parsed = parse_source(id, sm.file(id).text());
//! let cc = cyclomatic_complexity(parsed.unit.functions()[0]);
//! assert_eq!(cc, 3); // if + &&
//! assert_eq!(ComplexityBand::of(cc), ComplexityBand::Low);
//! ```

#![warn(missing_docs)]

pub mod cyclomatic;
pub mod function;
pub mod halstead;
pub mod loc;
pub mod module;
pub mod token_estimate;

pub use cyclomatic::{cyclomatic_complexity, ComplexityBand, ComplexityHistogram};
pub use function::{function_metrics, FunctionMetrics};
pub use halstead::{halstead, maintainability_index, Halstead};
pub use loc::{count_file, count_text, span_nloc, LocCounts};
pub use module::{coupling, module_metrics, pairwise_cohesion, ModuleMetrics};
pub use token_estimate::{absorb_estimate, module_from_estimates, token_estimate, TokenEstimate};
