//! Halstead software-science metrics, computed from the token stream.
//!
//! Used as a secondary complexity signal in the architectural-design
//! assessment (ISO 26262-6 Table 3 "restricted size of software
//! components" is about more than raw LOC).

use adsafe_lang::lexer::lex;
use adsafe_lang::token::TokenKind;
use adsafe_lang::FileId;
use std::collections::HashSet;

/// Halstead metric bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Halstead {
    /// Distinct operators (η₁).
    pub distinct_operators: usize,
    /// Distinct operands (η₂).
    pub distinct_operands: usize,
    /// Total operators (N₁).
    pub total_operators: usize,
    /// Total operands (N₂).
    pub total_operands: usize,
}

impl Halstead {
    /// Program vocabulary η = η₁ + η₂.
    pub fn vocabulary(&self) -> usize {
        self.distinct_operators + self.distinct_operands
    }

    /// Program length N = N₁ + N₂.
    pub fn length(&self) -> usize {
        self.total_operators + self.total_operands
    }

    /// Volume V = N · log₂(η).
    pub fn volume(&self) -> f64 {
        let eta = self.vocabulary();
        if eta == 0 {
            0.0
        } else {
            self.length() as f64 * (eta as f64).log2()
        }
    }

    /// Difficulty D = (η₁ / 2) · (N₂ / η₂).
    pub fn difficulty(&self) -> f64 {
        if self.distinct_operands == 0 {
            0.0
        } else {
            (self.distinct_operators as f64 / 2.0)
                * (self.total_operands as f64 / self.distinct_operands as f64)
        }
    }

    /// Effort E = D · V.
    pub fn effort(&self) -> f64 {
        self.difficulty() * self.volume()
    }
}

/// Computes Halstead metrics over a source snippet (typically one
/// function body or one file, already comment-stripped or not — comments
/// are ignored by the lexer anyway once preprocessed; for raw text the
/// numbers are approximate, which is how Halstead is used in practice).
pub fn halstead(text: &str) -> Halstead {
    let toks = lex(FileId(0), text);
    let mut distinct_ops: HashSet<String> = HashSet::new();
    let mut distinct_operands: HashSet<String> = HashSet::new();
    let mut total_ops = 0usize;
    let mut total_operands = 0usize;
    for t in &toks {
        let lexeme = &text[t.span.start as usize..t.span.end as usize];
        match t.kind {
            TokenKind::Punct(_) | TokenKind::Keyword(_) => {
                total_ops += 1;
                distinct_ops.insert(lexeme.to_string());
            }
            TokenKind::Ident
            | TokenKind::IntLit
            | TokenKind::FloatLit
            | TokenKind::StrLit
            | TokenKind::CharLit => {
                total_operands += 1;
                distinct_operands.insert(lexeme.to_string());
            }
            TokenKind::Eof => {}
        }
    }
    Halstead {
        distinct_operators: distinct_ops.len(),
        distinct_operands: distinct_operands.len(),
        total_operators: total_ops,
        total_operands,
    }
}

/// Maintainability Index (the classic SEI formula, 0–171 clamped to
/// 0–100): combines Halstead volume, cyclomatic complexity, and size.
/// Values below ~20 flag hard-to-maintain units — a complementary signal
/// to the paper's Figure 3 complexity histogram.
pub fn maintainability_index(volume: f64, cyclomatic: u32, nloc: usize) -> f64 {
    let v = volume.max(1.0);
    let loc = (nloc.max(1)) as f64;
    let raw = 171.0 - 5.2 * v.ln() - 0.23 * f64::from(cyclomatic) - 16.2 * loc.ln();
    (raw * 100.0 / 171.0).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = halstead("");
        assert_eq!(h.length(), 0);
        assert_eq!(h.volume(), 0.0);
        assert_eq!(h.difficulty(), 0.0);
    }

    #[test]
    fn simple_expression() {
        // `a = b + c ;` → operators {=, +, ;} operands {a, b, c}
        let h = halstead("a = b + c;");
        assert_eq!(h.distinct_operators, 3);
        assert_eq!(h.distinct_operands, 3);
        assert_eq!(h.total_operators, 3);
        assert_eq!(h.total_operands, 3);
        assert!(h.volume() > 0.0);
    }

    #[test]
    fn repeated_operands_counted() {
        let h = halstead("x = x + x;");
        assert_eq!(h.distinct_operands, 1);
        assert_eq!(h.total_operands, 3);
        assert!(h.difficulty() > 1.0);
    }

    #[test]
    fn volume_grows_with_code() {
        let small = halstead("int a = 1;");
        let big = halstead("int a = 1; int b = 2; int c = a + b * 3; if (c > 0) { c -= a; }");
        assert!(big.volume() > small.volume());
        assert!(big.effort() > small.effort());
    }

    #[test]
    fn maintainability_index_ordering() {
        // Trivial unit scores high; a big complex unit scores lower.
        let tiny = maintainability_index(10.0, 1, 3);
        let gnarly = maintainability_index(8000.0, 45, 400);
        assert!(tiny > 70.0, "tiny = {tiny}");
        assert!(gnarly < tiny, "gnarly = {gnarly}");
        assert!((0.0..=100.0).contains(&gnarly));
    }

    #[test]
    fn maintainability_index_is_clamped_and_total() {
        assert!(!maintainability_index(0.0, 0, 0).is_nan());
        assert!(maintainability_index(1e12, 1000, 1_000_000) >= 0.0);
        assert!(maintainability_index(1.0, 1, 1) <= 100.0);
    }
}
