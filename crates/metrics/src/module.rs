//! Module-level aggregation: the per-module numbers behind the paper's
//! Figure 3 (LOC, function counts, complexity histogram) and Table 2
//! (architectural design: component size, interface size, cohesion,
//! coupling).

use crate::cyclomatic::ComplexityHistogram;
use crate::function::{function_metrics, FunctionMetrics};
use crate::loc::{count_file, LocCounts};
use adsafe_lang::ast::TranslationUnit;
use adsafe_lang::visit::walk_exprs;
use adsafe_lang::{CallGraph, SourceFile};
use std::collections::{HashMap, HashSet};

/// Aggregated metrics for one software module (e.g. `perception`).
#[derive(Debug, Clone)]
pub struct ModuleMetrics {
    /// Module name.
    pub name: String,
    /// Number of source files.
    pub file_count: usize,
    /// Line counts summed over files.
    pub loc: LocCounts,
    /// Metrics for every function, in discovery order.
    pub functions: Vec<FunctionMetrics>,
    /// Complexity histogram over all functions.
    pub histogram: ComplexityHistogram,
    /// Number of file-scope variables (globals) declared in the module.
    pub global_count: usize,
    /// Mean parameters per function (interface size proxy).
    pub mean_params: f64,
    /// LCOM-style cohesion in `[0, 1]`: 1 means every pair of functions
    /// shares at least one accessed module global; 0 means none do.
    pub cohesion: f64,
    /// Files whose evidence came from token-only estimation (degraded
    /// tier) rather than a parse. Always `<= file_count`.
    pub absorbed_files: usize,
}

impl ModuleMetrics {
    /// Total number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Functions with complexity strictly above `threshold`.
    pub fn functions_over(&self, threshold: u32) -> usize {
        self.functions.iter().filter(|f| f.cyclomatic > threshold).count()
    }
}

/// Computes module metrics over `(file, unit)` pairs belonging to one module.
pub fn module_metrics(name: &str, files: &[(&SourceFile, &TranslationUnit)]) -> ModuleMetrics {
    let _sp = adsafe_trace::span_with(
        "metrics.module",
        "metrics",
        vec![("module", name.to_string())],
    );
    adsafe_trace::counter("metrics.module.files").add(files.len() as u64);
    let mut loc = LocCounts::default();
    let mut functions = Vec::new();
    let mut histogram = ComplexityHistogram::default();
    let mut global_count = 0usize;
    let mut global_names: HashSet<String> = HashSet::new();

    for (file, unit) in files {
        let c = count_file(file);
        loc.physical += c.physical;
        loc.nloc += c.nloc;
        loc.comment += c.comment;
        loc.blank += c.blank;
        loc.directive += c.directive;
        for g in unit.global_vars() {
            global_count += 1;
            global_names.insert(g.name.clone());
        }
        for f in unit.functions() {
            let m = function_metrics(file, f);
            histogram.add(m.cyclomatic);
            functions.push(m);
        }
    }

    // Cohesion: for each function, the set of module globals it touches;
    // cohesion = fraction of function pairs sharing at least one global.
    let mut touched: Vec<HashSet<String>> = Vec::new();
    for (_, unit) in files {
        for f in unit.functions() {
            let mut set = HashSet::new();
            walk_exprs(f, |e| {
                if let adsafe_lang::ast::ExprKind::Ident(n) = &e.kind {
                    if global_names.contains(n) {
                        set.insert(n.clone());
                    }
                }
            });
            touched.push(set);
        }
    }
    let cohesion = pairwise_cohesion(&touched);

    let mean_params = if functions.is_empty() {
        0.0
    } else {
        functions.iter().map(|f| f.param_count).sum::<usize>() as f64 / functions.len() as f64
    };

    ModuleMetrics {
        name: name.to_string(),
        file_count: files.len(),
        loc,
        functions,
        histogram,
        global_count,
        mean_params,
        cohesion,
        absorbed_files: 0,
    }
}

/// LCOM-style pairwise cohesion over per-function touched-global sets:
/// the fraction of function pairs sharing at least one accessed module
/// global (1.0 when there are fewer than two functions). Public so the
/// incremental pipeline can recompute cohesion from cached per-function
/// ident sets with exactly this formula.
pub fn pairwise_cohesion(touched: &[HashSet<String>]) -> f64 {
    let n = touched.len();
    if n < 2 {
        return 1.0;
    }
    let mut share = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            pairs += 1;
            if !touched[i].is_disjoint(&touched[j]) {
                share += 1;
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        share as f64 / pairs as f64
    }
}

/// Inter-module coupling: number of distinct call edges between functions
/// of *different* modules, per module pair. `module_of` maps a qualified
/// function name to its module.
pub fn coupling(
    graph: &CallGraph,
    module_of: &HashMap<String, String>,
) -> HashMap<(String, String), usize> {
    let mut out: HashMap<(String, String), usize> = HashMap::new();
    for name in graph.names() {
        let Some(from_mod) = module_of.get(name) else { continue };
        let Some(callees) = graph.callees(name) else { continue };
        for callee in callees {
            let Some(to_mod) = module_of.get(callee) else { continue };
            if from_mod != to_mod {
                *out.entry((from_mod.clone(), to_mod.clone())).or_insert(0) += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsafe_lang::{parse_source, SourceMap};

    fn module_from(srcs: &[(&str, &str)]) -> ModuleMetrics {
        let mut sm = SourceMap::new();
        let parsed: Vec<_> = srcs
            .iter()
            .map(|(path, text)| {
                let id = sm.add_file(*path, *text);
                (id, parse_source(id, text))
            })
            .collect();
        let pairs: Vec<(&SourceFile, &TranslationUnit)> =
            parsed.iter().map(|(id, p)| (sm.file(*id), &p.unit)).collect();
        module_metrics("test", &pairs)
    }

    #[test]
    fn aggregates_files() {
        let m = module_from(&[
            ("a.cc", "int f() { return 1; }\nint g_a;\n"),
            ("b.cc", "int g(int x) { if (x) return 1; return 0; }\n"),
        ]);
        assert_eq!(m.file_count, 2);
        assert_eq!(m.function_count(), 2);
        assert_eq!(m.global_count, 1);
        assert_eq!(m.histogram.total, 2);
        assert_eq!(m.loc.nloc, 3);
    }

    #[test]
    fn functions_over_threshold() {
        let deep = (0..12)
            .map(|i| format!("if (x > {i}) {{ x--; }}"))
            .collect::<Vec<_>>()
            .join(" ");
        let src = format!("void busy(int x) {{ {deep} }} void calm() {{}}");
        let m = module_from(&[("a.cc", src.as_str())]);
        assert_eq!(m.functions_over(10), 1);
        assert_eq!(m.functions_over(20), 0);
    }

    #[test]
    fn cohesion_shared_globals() {
        // Both functions touch g → cohesion 1.
        let m = module_from(&[(
            "a.cc",
            "int g;\nvoid f1() { g = 1; }\nvoid f2() { g = 2; }\n",
        )]);
        assert!((m.cohesion - 1.0).abs() < 1e-12);
        // Disjoint globals → cohesion 0.
        let m2 = module_from(&[(
            "a.cc",
            "int g1; int g2;\nvoid f1() { g1 = 1; }\nvoid f2() { g2 = 2; }\n",
        )]);
        assert_eq!(m2.cohesion, 0.0);
    }

    #[test]
    fn coupling_counts_cross_module_edges() {
        let mut sm = SourceMap::new();
        let a = sm.add_file("a.cc", "void detect() { plan(); plan2(); }");
        let b = sm.add_file("b.cc", "void plan() {} void plan2() { plan(); }");
        let pa = parse_source(a, sm.file(a).text());
        let pb = parse_source(b, sm.file(b).text());
        let graph = CallGraph::build(&[&pa.unit, &pb.unit]);
        let mut module_of = HashMap::new();
        module_of.insert("detect".to_string(), "perception".to_string());
        module_of.insert("plan".to_string(), "planning".to_string());
        module_of.insert("plan2".to_string(), "planning".to_string());
        let c = coupling(&graph, &module_of);
        assert_eq!(c[&("perception".to_string(), "planning".to_string())], 2);
        assert_eq!(c.len(), 1, "intra-module edge must not appear");
    }
}
