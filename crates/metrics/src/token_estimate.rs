//! Token-only metric estimation: the bottom tier of the degradation
//! ladder.
//!
//! When a file cannot be parsed at all (the parser panicked, or the
//! content is so mangled that the AST would be a single opaque blob),
//! the assessment still needs *some* evidence from it — "every file
//! contributes" is a core robustness guarantee. This module recovers
//! Lizard-style figures from the token stream alone: NLOC, an estimated
//! function count, and an estimated total cyclomatic complexity from
//! branch tokens. The lexer is total, so this tier cannot fail on any
//! UTF-8 input (non-UTF-8 bytes are lossily replaced by the caller).

use crate::cyclomatic::ComplexityHistogram;
use crate::module::ModuleMetrics;
use adsafe_lang::lexer::lex;
use adsafe_lang::preprocess::preprocess;
use adsafe_lang::token::{Kw, Punct, TokenKind};
use adsafe_lang::FileId;

/// Metrics recovered from tokens alone, without a parse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenEstimate {
    /// Total physical lines.
    pub physical: usize,
    /// Lines carrying at least one code token (Lizard's NLOC).
    pub nloc: usize,
    /// Number of code tokens.
    pub token_count: usize,
    /// Estimated function definitions: top-level `...) {` sequences.
    pub est_functions: usize,
    /// Estimated total cyclomatic complexity: one per estimated
    /// function plus one per branch keyword / short-circuit operator.
    pub est_cyclomatic: u32,
}

impl TokenEstimate {
    /// Mean complexity per estimated function (whole estimate if no
    /// function boundary was recognisable).
    pub fn mean_cyclomatic(&self) -> u32 {
        match (self.est_cyclomatic as usize).checked_div(self.est_functions) {
            None => self.est_cyclomatic,
            Some(per_fn) => per_fn.max(1) as u32,
        }
    }
}

/// Estimates metrics for `text` from its token stream alone.
///
/// Comments and directives are stripped first so NLOC matches what
/// [`crate::loc::count_file`] would report for a parseable file.
pub fn token_estimate(file: FileId, text: &str) -> TokenEstimate {
    let pre = preprocess(file, text);
    let tokens = lex(file, &pre.text);

    // Byte offsets of line starts, for span → line mapping.
    let mut line_starts: Vec<u32> = vec![0];
    for (i, b) in pre.text.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i as u32 + 1);
        }
    }
    let line_of = |off: u32| match line_starts.binary_search(&off) {
        Ok(i) => i,
        Err(i) => i - 1,
    };

    let mut est = TokenEstimate {
        physical: if text.is_empty() { 0 } else { text.lines().count() },
        ..TokenEstimate::default()
    };

    let mut code_lines = vec![false; line_starts.len()];
    let mut depth: usize = 0;
    let mut prev_kind: Option<TokenKind> = None;
    let mut branch_tokens: u32 = 0;

    for t in &tokens {
        if t.kind == TokenKind::Eof {
            break;
        }
        est.token_count += 1;
        let first = line_of(t.span.start);
        let last = line_of(t.span.end.saturating_sub(1).max(t.span.start));
        for flag in &mut code_lines[first..=last] {
            *flag = true;
        }
        match t.kind {
            TokenKind::Punct(Punct::LBrace) => {
                if depth == 0 && prev_kind == Some(TokenKind::Punct(Punct::RParen)) {
                    est.est_functions += 1;
                }
                depth += 1;
            }
            TokenKind::Punct(Punct::RBrace) => depth = depth.saturating_sub(1),
            TokenKind::Keyword(Kw::If | Kw::For | Kw::While | Kw::Case | Kw::Catch)
            | TokenKind::Punct(Punct::AmpAmp | Punct::PipePipe | Punct::Question) => {
                branch_tokens += 1;
            }
            _ => {}
        }
        prev_kind = Some(t.kind);
    }

    est.nloc = code_lines.iter().filter(|&&c| c).count();
    est.est_cyclomatic = est.est_functions.max(1) as u32 + branch_tokens;
    est
}

/// Folds a token-only estimate for an unparseable file into a module's
/// metrics so the file still contributes NLOC/CC evidence.
///
/// The estimate is attributed as `est_functions` pseudo-functions of
/// mean complexity (so the histogram and `functions_over` remain
/// meaningful), and the absorbed-file counter records how much of the
/// module's evidence came in degraded.
pub fn absorb_estimate(m: &mut ModuleMetrics, est: &TokenEstimate) {
    m.file_count += 1;
    m.absorbed_files += 1;
    m.loc.physical += est.physical;
    m.loc.nloc += est.nloc;
    let per_fn = est.mean_cyclomatic();
    for _ in 0..est.est_functions.max(if est.est_cyclomatic > 0 { 1 } else { 0 }) {
        m.histogram.add(per_fn);
    }
}

/// Builds a `ModuleMetrics` from estimates only (module where *no* file
/// parsed).
pub fn module_from_estimates(name: &str, ests: &[TokenEstimate]) -> ModuleMetrics {
    let mut m = ModuleMetrics {
        name: name.to_string(),
        file_count: 0,
        loc: crate::loc::LocCounts::default(),
        functions: Vec::new(),
        histogram: ComplexityHistogram::default(),
        global_count: 0,
        mean_params: 0.0,
        cohesion: 1.0,
        absorbed_files: 0,
    };
    for est in ests {
        absorb_estimate(&mut m, est);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsafe_lang::SourceMap;

    fn est(text: &str) -> TokenEstimate {
        let mut sm = SourceMap::new();
        let id = sm.add_file("t.cc", text);
        token_estimate(id, text)
    }

    #[test]
    fn clean_file_counts_match_intent() {
        let e = est("int f(int x) {\n  if (x > 0 && x < 9) return 1;\n  return 0;\n}\n");
        assert_eq!(e.physical, 4);
        assert_eq!(e.nloc, 4);
        assert_eq!(e.est_functions, 1);
        // 1 (function) + if + && = 3, same as the parsed CC.
        assert_eq!(e.est_cyclomatic, 3);
    }

    #[test]
    fn comments_and_directives_excluded_from_nloc() {
        let e = est("#include <x.h>\n// comment only\nint g; /* c */\n\n");
        assert_eq!(e.nloc, 1);
        assert!(e.token_count >= 3); // int g ;
    }

    #[test]
    fn total_on_garbage_input() {
        let e = est("\u{fffd}\u{fffd} int { ) ((( \u{1F600} broken\x07");
        assert!(e.token_count > 0);
        assert!(e.est_cyclomatic >= 1);
    }

    #[test]
    fn estimates_survive_brace_deletion() {
        // A file whose braces were corrupted away still yields NLOC and
        // branch-based complexity.
        let e = est("void f(int x)\n  if (x) x++;\n  while (x) x--;\n");
        assert_eq!(e.nloc, 3);
        assert_eq!(e.est_functions, 0);
        // 1 (floor) + if + while.
        assert_eq!(e.est_cyclomatic, 3);
    }

    #[test]
    fn absorb_adds_pseudo_functions() {
        let mut m = module_from_estimates("m", &[]);
        assert_eq!(m.file_count, 0);
        let e = est("int f() { return 1; }\nint g(int x) { if (x) return x; return 0; }\n");
        assert_eq!(e.est_functions, 2);
        absorb_estimate(&mut m, &e);
        assert_eq!(m.file_count, 1);
        assert_eq!(m.absorbed_files, 1);
        assert_eq!(m.loc.nloc, 2);
        assert_eq!(m.histogram.total, 2);
    }
}
