//! Per-function metrics: complexity, length, parameters, nesting,
//! exit-point structure, and interface size.

use crate::cyclomatic::{cyclomatic_complexity, ComplexityBand};
use adsafe_lang::ast::{FunctionDef, Stmt, StmtKind};
use adsafe_lang::visit::walk_stmts;
use adsafe_lang::SourceFile;

/// Metrics for a single function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionMetrics {
    /// Unqualified function name.
    pub name: String,
    /// Qualified name (namespace/class path).
    pub qualified_name: String,
    /// Cyclomatic complexity.
    pub cyclomatic: u32,
    /// Non-blank lines in the definition.
    pub nloc: usize,
    /// Number of parameters.
    pub param_count: usize,
    /// Maximum statement nesting depth.
    pub max_nesting: usize,
    /// Number of `return` statements.
    pub return_count: usize,
    /// Whether the function has multiple exit points in the ISO 26262-6
    /// Table 8 row 1 sense: more than one `return`, or an early `return`
    /// that is not the final statement.
    pub multi_exit: bool,
    /// Number of `goto` statements.
    pub goto_count: usize,
    /// Number of statements in total.
    pub stmt_count: usize,
    /// Whether this is GPU code (`__global__`/`__device__`).
    pub is_gpu: bool,
}

impl FunctionMetrics {
    /// The complexity band this function falls in.
    pub fn band(&self) -> ComplexityBand {
        ComplexityBand::of(self.cyclomatic)
    }
}

/// Computes [`FunctionMetrics`] for `func` defined in `file`.
pub fn function_metrics(file: &SourceFile, func: &FunctionDef) -> FunctionMetrics {
    let mut return_count = 0usize;
    let mut goto_count = 0usize;
    let mut stmt_count = 0usize;
    walk_stmts(func, |s| {
        stmt_count += 1;
        match s.kind {
            StmtKind::Return(_) => return_count += 1,
            StmtKind::Goto(_) => goto_count += 1,
            _ => {}
        }
    });
    let ends_with_return = func
        .body
        .stmts
        .last()
        .is_some_and(stmt_is_return_like);
    let multi_exit = return_count > 1 || (return_count == 1 && !ends_with_return);
    FunctionMetrics {
        name: func.sig.name.clone(),
        qualified_name: func.sig.qualified_name.clone(),
        cyclomatic: cyclomatic_complexity(func),
        nloc: crate::loc::span_nloc(file, func.span),
        param_count: func.sig.params.len(),
        max_nesting: max_nesting(&func.body.stmts, 0),
        return_count,
        multi_exit,
        goto_count,
        stmt_count,
        is_gpu: func.sig.quals.is_gpu(),
    }
}

fn stmt_is_return_like(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::Block(b) => b.stmts.last().is_some_and(stmt_is_return_like),
        StmtKind::Label(_, inner) => stmt_is_return_like(inner),
        _ => false,
    }
}

fn max_nesting(stmts: &[Stmt], depth: usize) -> usize {
    let mut max = depth;
    for s in stmts {
        let d = stmt_nesting(s, depth);
        max = max.max(d);
    }
    max
}

fn stmt_nesting(s: &Stmt, depth: usize) -> usize {
    match &s.kind {
        StmtKind::Block(b) => max_nesting(&b.stmts, depth),
        StmtKind::If { then_branch, else_branch, .. } => {
            let mut m = stmt_nesting(then_branch, depth + 1);
            if let Some(e) = else_branch {
                m = m.max(stmt_nesting(e, depth + 1));
            }
            m
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            stmt_nesting(body, depth + 1)
        }
        StmtKind::For { body, .. } => stmt_nesting(body, depth + 1),
        StmtKind::Switch { body, .. } => max_nesting(&body.stmts, depth + 1),
        StmtKind::Label(_, inner) => stmt_nesting(inner, depth),
        StmtKind::Try { body, catches } => {
            let mut m = max_nesting(&body.stmts, depth + 1);
            for (_, h) in catches {
                m = m.max(max_nesting(&h.stmts, depth + 1));
            }
            m
        }
        _ => depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsafe_lang::{parse_source, SourceMap};

    fn metrics(src: &str) -> Vec<FunctionMetrics> {
        let mut sm = SourceMap::new();
        let id = sm.add_file("t.cc", src);
        let parsed = parse_source(id, sm.file(id).text());
        parsed
            .unit
            .functions()
            .into_iter()
            .map(|f| function_metrics(sm.file(id), f))
            .collect()
    }

    #[test]
    fn single_exit_at_end_not_multi() {
        let m = &metrics("int f(int a) { a += 1; return a; }")[0];
        assert_eq!(m.return_count, 1);
        assert!(!m.multi_exit);
    }

    #[test]
    fn early_return_is_multi_exit() {
        let m = &metrics("int f(int a) { if (a < 0) return -1; return a; }")[0];
        assert_eq!(m.return_count, 2);
        assert!(m.multi_exit);
    }

    #[test]
    fn void_with_no_return_single_exit() {
        let m = &metrics("void f(int a) { a += 1; }")[0];
        assert_eq!(m.return_count, 0);
        assert!(!m.multi_exit);
    }

    #[test]
    fn early_return_not_at_end_is_multi_exit() {
        let m = &metrics("void f(int a) { if (a) return; a++; }")[0];
        assert_eq!(m.return_count, 1);
        assert!(m.multi_exit);
    }

    #[test]
    fn nesting_depth() {
        let m = &metrics("void f(int n) { if (n) { for (;;) { while (n) { n--; } } } }")[0];
        assert_eq!(m.max_nesting, 3);
    }

    #[test]
    fn param_and_goto_counts() {
        let m = &metrics("int f(int a, float b, char* c) { if (a) goto out; out: return 0; }")[0];
        assert_eq!(m.param_count, 3);
        assert_eq!(m.goto_count, 1);
    }

    #[test]
    fn gpu_flag() {
        let m = &metrics("__global__ void k(float* x) { x[0] = 1.0f; }")[0];
        assert!(m.is_gpu);
        let m2 = &metrics("void h() {}")[0];
        assert!(!m2.is_gpu);
    }

    #[test]
    fn nloc_positive_for_multiline() {
        let m = &metrics("int f() {\n  int a = 1;\n  return a;\n}")[0];
        assert!(m.nloc >= 3, "nloc = {}", m.nloc);
    }
}
