//! McCabe cyclomatic complexity, counted the way Lizard counts it (the
//! tool the paper uses for Figure 3): one plus the number of decision
//! points, where decision points are `if`, `while`, `do`, `for`, each
//! `case` label, each `catch` handler, the ternary operator, and the
//! short-circuit operators `&&`/`||`.

use adsafe_lang::ast::{BinOp, ExprKind, FunctionDef, StmtKind};
use adsafe_lang::visit::{walk_exprs, walk_stmts};

/// Complexity classification bands used in the paper's Figure 3
/// discussion: 1–10 low, 11–20 moderate, 21–50 risky, >50 unstable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComplexityBand {
    /// CC 1–10: simple, easily testable.
    Low,
    /// CC 11–20: moderate risk.
    Moderate,
    /// CC 21–50: risky, hard to verify.
    Risky,
    /// CC > 50: untestable/unstable.
    Unstable,
}

impl ComplexityBand {
    /// Classifies a cyclomatic-complexity value.
    pub fn of(cc: u32) -> Self {
        match cc {
            0..=10 => ComplexityBand::Low,
            11..=20 => ComplexityBand::Moderate,
            21..=50 => ComplexityBand::Risky,
            _ => ComplexityBand::Unstable,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ComplexityBand::Low => "low (1-10)",
            ComplexityBand::Moderate => "moderate (11-20)",
            ComplexityBand::Risky => "risky (21-50)",
            ComplexityBand::Unstable => "unstable (>50)",
        }
    }
}

impl std::fmt::Display for ComplexityBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Computes the cyclomatic complexity of one function.
pub fn cyclomatic_complexity(func: &FunctionDef) -> u32 {
    let mut cc: u32 = 1;
    walk_stmts(func, |s| match &s.kind {
        StmtKind::If { .. }
        | StmtKind::While { .. }
        | StmtKind::DoWhile { .. }
        | StmtKind::For { .. }
        | StmtKind::Case(_) => cc += 1,
        StmtKind::Try { catches, .. } => cc += catches.len() as u32,
        _ => {}
    });
    walk_exprs(func, |e| match &e.kind {
        ExprKind::Binary { op, .. } if op.is_logical() => cc += 1,
        ExprKind::Ternary { .. } => cc += 1,
        _ => {}
    });
    let _ = BinOp::LogAnd; // referenced for doc clarity
    cc
}

/// Histogram of function complexities over thresholds, as used by the
/// paper's Figure 3 bars: number of functions with CC strictly above each
/// threshold.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComplexityHistogram {
    /// Functions with CC > 10 (moderate or worse).
    pub over_10: usize,
    /// Functions with CC > 20 (risky or worse).
    pub over_20: usize,
    /// Functions with CC > 50 (unstable).
    pub over_50: usize,
    /// Total functions counted.
    pub total: usize,
    /// Maximum CC seen.
    pub max: u32,
    /// Sum of CCs (for averaging).
    pub sum: u64,
}

impl ComplexityHistogram {
    /// Accumulates one function's complexity.
    pub fn add(&mut self, cc: u32) {
        self.total += 1;
        self.sum += u64::from(cc);
        self.max = self.max.max(cc);
        if cc > 10 {
            self.over_10 += 1;
        }
        if cc > 20 {
            self.over_20 += 1;
        }
        if cc > 50 {
            self.over_50 += 1;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ComplexityHistogram) {
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.over_10 += other.over_10;
        self.over_20 += other.over_20;
        self.over_50 += other.over_50;
    }

    /// Mean complexity, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsafe_lang::parse_source;
    use adsafe_lang::FileId;

    fn cc_of(src: &str) -> u32 {
        let parsed = parse_source(FileId(0), src);
        let funcs = parsed.unit.functions();
        cyclomatic_complexity(funcs[0])
    }

    #[test]
    fn straight_line_is_one() {
        assert_eq!(cc_of("int f() { int a = 1; return a; }"), 1);
    }

    #[test]
    fn single_if_is_two() {
        assert_eq!(cc_of("int f(int x) { if (x) return 1; return 0; }"), 2);
    }

    #[test]
    fn nested_ifs_are_three() {
        // Paper: "two nested if conditions result in complexity of three".
        assert_eq!(
            cc_of("int f(int x, int y) { if (x) { if (y) return 2; } return 0; }"),
            3
        );
    }

    #[test]
    fn loops_count() {
        assert_eq!(
            cc_of("void f(int n) { for (int i = 0; i < n; i++) { while (n) n--; } do n++; while (n < 5); }"),
            4
        );
    }

    #[test]
    fn each_case_counts() {
        assert_eq!(
            cc_of("int f(int x) { switch (x) { case 1: return 1; case 2: return 2; default: return 0; } }"),
            3 // 1 + two cases (default not counted)
        );
    }

    #[test]
    fn logical_operators_count() {
        assert_eq!(cc_of("int f(int a, int b, int c) { if (a && b || c) return 1; return 0; }"), 4);
    }

    #[test]
    fn ternary_counts() {
        assert_eq!(cc_of("int f(int a) { return a > 0 ? a : -a; }"), 2);
    }

    #[test]
    fn catch_counts() {
        assert_eq!(
            cc_of("void f() { try { g(); } catch (int e) { } catch (...) { } }"),
            3
        );
    }

    #[test]
    fn bands() {
        assert_eq!(ComplexityBand::of(1), ComplexityBand::Low);
        assert_eq!(ComplexityBand::of(10), ComplexityBand::Low);
        assert_eq!(ComplexityBand::of(11), ComplexityBand::Moderate);
        assert_eq!(ComplexityBand::of(20), ComplexityBand::Moderate);
        assert_eq!(ComplexityBand::of(21), ComplexityBand::Risky);
        assert_eq!(ComplexityBand::of(50), ComplexityBand::Risky);
        assert_eq!(ComplexityBand::of(51), ComplexityBand::Unstable);
    }

    #[test]
    fn histogram_accumulates_and_merges() {
        let mut h = ComplexityHistogram::default();
        for cc in [1, 5, 12, 25, 60] {
            h.add(cc);
        }
        assert_eq!(h.total, 5);
        assert_eq!(h.over_10, 3);
        assert_eq!(h.over_20, 2);
        assert_eq!(h.over_50, 1);
        assert_eq!(h.max, 60);
        let mut h2 = ComplexityHistogram::default();
        h2.add(15);
        h.merge(&h2);
        assert_eq!(h.total, 6);
        assert_eq!(h.over_10, 4);
        assert!((h.mean() - (1 + 5 + 12 + 25 + 60 + 15) as f64 / 6.0).abs() < 1e-12);
    }
}
