//! Renders assessment results as the paper's tables and figures.

use crate::pipeline::AssessmentReport;
use adsafe_iso26262::TableId;
use adsafe_report::{Figure, Table};

/// Renders one of the three compliance tables with measured verdicts.
pub fn compliance_table(report: &AssessmentReport, table: TableId) -> Table {
    let mut t = Table::new(
        table.title(),
        &["#", "Topic", "A", "B", "C", "D", "Status", "Effort", "Evidence"],
    );
    for v in report.compliance.table(table) {
        let lv = v.topic.levels;
        t.row_owned(vec![
            v.topic.row.to_string(),
            v.topic.name.to_string(),
            lv[0].notation().to_string(),
            lv[1].notation().to_string(),
            lv[2].notation().to_string(),
            lv[3].notation().to_string(),
            v.status.to_string(),
            v.effort.to_string(),
            v.evidence.clone(),
        ]);
    }
    t
}

/// Paper Table 1 (ISO 26262-6 Table 1) with verdicts.
pub fn table1(report: &AssessmentReport) -> Table {
    compliance_table(report, TableId::CodingGuidelines)
}

/// Paper Table 2 (ISO 26262-6 Table 3) with verdicts.
pub fn table2(report: &AssessmentReport) -> Table {
    compliance_table(report, TableId::ArchitecturalDesign)
}

/// Paper Table 3 (ISO 26262-6 Table 8) with verdicts.
pub fn table3(report: &AssessmentReport) -> Table {
    compliance_table(report, TableId::UnitDesign)
}

/// Figure 3: per-module LOC, function count, and complexity bars.
pub fn fig3(report: &AssessmentReport) -> Figure {
    let mut f = Figure::new(
        "Figure 3",
        "Complexity, LOC, and number of functions in Apollo modules",
    );
    let labels: Vec<&str> = report.modules.iter().map(|m| m.name.as_str()).collect();
    f.labels(&labels);
    f.series(
        "LOC",
        report.modules.iter().map(|m| m.loc.nloc as f64).collect(),
    );
    f.series(
        "functions",
        report.modules.iter().map(|m| m.function_count() as f64).collect(),
    );
    f.series(
        "CC > 10",
        report.modules.iter().map(|m| m.functions_over(10) as f64).collect(),
    );
    f.series(
        "CC > 20",
        report.modules.iter().map(|m| m.functions_over(20) as f64).collect(),
    );
    f.series(
        "CC > 50",
        report.modules.iter().map(|m| m.functions_over(50) as f64).collect(),
    );
    f
}

/// The fourteen observations as numbered prose (only those that hold).
pub fn observations_text(report: &AssessmentReport) -> String {
    let mut out = String::new();
    for o in &report.observations {
        if o.holds {
            out.push_str(&format!("Observation {}. {}\n", o.number, o.text));
        }
    }
    out
}

/// Renders the structural-coverage verdicts (when coverage was measured)
/// as a table — the §3.2 judgement of Figure 5's numbers.
pub fn coverage_table(report: &AssessmentReport) -> Option<Table> {
    let cov = report.evidence.coverage.as_ref()?;
    let gpu = report.evidence.gpu.kernel_count > 0;
    let verdicts =
        adsafe_iso26262::judge_coverage(cov, report.compliance.asil, gpu);
    let mut t = Table::new(
        "Structural coverage vs ISO 26262-6 / IEC 61508 (100% reference)",
        &["Metric", "Required", "Measured", "Status", "Effort"],
    );
    for v in verdicts {
        t.row_owned(vec![
            v.metric.name().to_string(),
            v.required.notation().to_string(),
            format!("{:.0}%", v.measured_pct),
            v.status.to_string(),
            v.effort.to_string(),
        ]);
    }
    Some(t)
}

/// Renders the complete assessment as a single Markdown document:
/// summary, the three compliance tables, coverage (if measured), the
/// observations that hold, the finding counts per rule, and the trace
/// digest.
pub fn full_report_markdown(report: &AssessmentReport) -> String {
    let mut out = deterministic_report_markdown(report);
    out.push('\n');
    out.push_str(&trace_summary(report));
    out
}

/// [`full_report_markdown`] minus the trailing trace digest — every
/// section that depends only on the assessed code, none that depend on
/// wall time. Two runs over the same corpus render byte-identical
/// output here regardless of worker count (`AssessmentOptions::jobs`)
/// or cache state; the pipeline's determinism tests and the CI
/// jobs-matrix gate compare exactly this document.
pub fn deterministic_report_markdown(report: &AssessmentReport) -> String {
    let mut out = String::new();
    out.push_str("# ISO 26262 Part-6 Adherence Assessment\n\n");
    out.push_str(&format!(
        "- target: **{}**\n- code: {} NLOC, {} functions, {} modules\n\
         - findings: {}\n- blocking topics: {} of 25\n- compliance ratio: {:.0}%\n\n",
        report.compliance.asil,
        report.evidence.total_loc,
        report.evidence.total_functions,
        report.evidence.module_count(),
        report.diagnostics.len(),
        report.compliance.blocking_count(),
        report.compliance.compliance_ratio() * 100.0
    ));
    out.push_str(&table1(report).to_markdown());
    out.push('\n');
    out.push_str(&table2(report).to_markdown());
    out.push('\n');
    out.push_str(&table3(report).to_markdown());
    out.push('\n');
    if let Some(t) = coverage_table(report) {
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    out.push_str("## Observations\n\n");
    for o in &report.observations {
        if o.holds {
            out.push_str(&format!("**Observation {}.** {}\n\n", o.number, o.text));
        }
    }
    out.push_str("## Findings by rule\n\n| Rule | Findings |\n|---|---|\n");
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for d in &report.diagnostics {
        *counts.entry(d.check_id).or_insert(0) += 1;
    }
    for (rule, n) in counts {
        out.push_str(&format!("| `{rule}` | {n} |\n"));
    }
    if !report.faults.is_empty() {
        out.push('\n');
        out.push_str(&fault_summary(report));
    }
    out
}

/// Renders the run's self-observability digest: per-phase wall time,
/// the top-10 slowest files, and the top-10 slowest checker rules.
pub fn trace_summary(report: &AssessmentReport) -> String {
    let t = &report.trace;
    let mut out = String::new();
    out.push_str("## Trace summary\n\n");
    if !report.run_id.is_empty() {
        out.push_str(&format!("- run: {}\n", report.run_id));
    }
    out.push_str(&format!("- total wall time: {:.1} ms\n", t.total_us as f64 / 1000.0));
    for p in &t.phases {
        out.push_str(&format!("- phase {}: {:.1} ms\n", p.name, p.wall_us as f64 / 1000.0));
    }
    if !t.slowest_files.is_empty() {
        out.push_str("\n### Slowest files\n\n| File | Time (ms) |\n|---|---|\n");
        for (path, us) in &t.slowest_files {
            out.push_str(&format!("| `{path}` | {:.2} |\n", *us as f64 / 1000.0));
        }
    }
    if !t.slowest_rules.is_empty() {
        out.push_str("\n### Slowest rules\n\n| Rule | Time (ms) |\n|---|---|\n");
        for (rule, us) in &t.slowest_rules {
            out.push_str(&format!("| `{rule}` | {:.2} |\n", *us as f64 / 1000.0));
        }
    }
    out
}

/// Renders the fault log: degradation banner, counts per phase, worst
/// severity, and the individual faults. Empty string for a clean run.
pub fn fault_summary(report: &AssessmentReport) -> String {
    if report.faults.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("## Fault log\n\n");
    if report.degraded {
        out.push_str(
            "**Degraded assessment**: some evidence was recovered through \
             lower tiers of the degradation ladder or lost.\n\n",
        );
    }
    let worst = report.faults.worst().expect("non-empty log has a worst severity");
    out.push_str(&format!(
        "- faults contained: {}\n- worst severity: {}\n",
        report.faults.len(),
        worst.name()
    ));
    for (phase, n) in report.faults.counts_by_phase() {
        out.push_str(&format!("- {}: {}\n", phase.name(), n));
    }
    out.push('\n');
    for f in &report.faults {
        out.push_str(&format!("- {f}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Assessment;

    fn report() -> AssessmentReport {
        let mut a = Assessment::new();
        a.add_file(
            "control",
            "control/pid.cc",
            "int g_mode;\nint Clamp(int v) { if (v > 100) return 100; return v; }\n",
        );
        a.run()
    }

    #[test]
    fn tables_render_with_verdicts() {
        let r = report();
        let t1 = table1(&r);
        assert_eq!(t1.rows.len(), 8);
        assert!(t1.to_ascii().contains("Enforcement of low complexity"));
        let t2 = table2(&r);
        assert_eq!(t2.rows.len(), 7);
        let t3 = table3(&r);
        assert_eq!(t3.rows.len(), 10);
        assert!(t3.to_ascii().contains("No unconditional jumps"));
        // Recommendation notation appears.
        assert!(t1.to_ascii().contains("++"));
    }

    #[test]
    fn fig3_has_all_series() {
        let r = report();
        let f = fig3(&r);
        assert_eq!(f.series.len(), 5);
        assert_eq!(f.labels, vec!["control"]);
        assert!(f.to_csv().contains("LOC"));
    }

    #[test]
    fn observations_text_mentions_globals() {
        let r = report();
        let text = observations_text(&r);
        assert!(text.contains("Observation 7"), "{text}");
    }

    #[test]
    fn coverage_table_requires_measurement() {
        let r = report();
        assert!(coverage_table(&r).is_none(), "no coverage measured");
        let mut a = Assessment::new().with_options(crate::pipeline::AssessmentOptions {
            coverage: Some(adsafe_iso26262::CoverageEvidence {
                statement_pct: 83.0,
                branch_pct: 75.0,
                mcdc_pct: 61.0,
            }),
            ..Default::default()
        });
        a.add_file("m", "a.cc", "int f() { return 1; }");
        let r2 = a.run();
        let t = coverage_table(&r2).expect("coverage measured");
        let md = t.to_markdown();
        assert!(md.contains("83%"));
        assert!(md.contains("MC/DC"));
    }

    #[test]
    fn full_markdown_report_is_complete() {
        let r = report();
        let md = full_report_markdown(&r);
        assert!(md.starts_with("# ISO 26262"));
        assert!(md.contains("## Observations"));
        assert!(md.contains("## Findings by rule"));
        assert!(md.contains("design-global-variable"));
        assert!(md.contains("Modeling/coding guidelines"));
        assert!(md.contains("compliance ratio"));
        // Clean run: no fault section.
        assert!(!md.contains("## Fault log"));
        assert_eq!(fault_summary(&r), "");
    }

    #[test]
    fn run_id_lands_in_trace_summary_only() {
        let mut a = Assessment::new().with_options(crate::pipeline::AssessmentOptions {
            run_id: "r000009-cafef00d".into(),
            ..Default::default()
        });
        a.add_file("m", "a.cc", "int f() { return 1; }");
        let r = a.run();
        assert!(
            !deterministic_report_markdown(&r).contains("r000009"),
            "run ID must never reach the byte-compared deterministic report"
        );
        assert!(trace_summary(&r).contains("- run: r000009-cafef00d"));
        assert!(full_report_markdown(&r).contains("- run: r000009-cafef00d"));
    }

    #[test]
    fn fault_summary_renders_degradation() {
        let mut a = Assessment::new();
        a.add_file("m", "bad.cc", "int ; ] ) } = 5 +;\nint h() { return 2; }\n");
        let r = a.run();
        assert!(r.degraded);
        let s = fault_summary(&r);
        assert!(s.contains("Degraded assessment"), "{s}");
        assert!(s.contains("worst severity: degraded"), "{s}");
        assert!(s.contains("parse: 1"), "{s}");
        assert!(s.contains("bad.cc"), "{s}");
        let md = full_report_markdown(&r);
        assert!(md.contains("## Fault log"));
    }
}
