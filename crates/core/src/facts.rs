//! Per-file analysis facts: everything the pipeline needs from one
//! source file, extracted once after parsing and cacheable on disk.
//!
//! [`FileFacts`] is the unit of incrementality. For a *fresh* file the
//! pipeline parses it and calls [`extract_facts`]; for a *cached* file
//! it deserialises the same record from `.adsafe-cache/` and skips the
//! parse entirely. Everything cross-file — the call graph, recursion
//! and global-use diagnostics, module metrics, the ISO 26262-6 Table 8
//! unit statistics, the validation ratio, GPU evidence — is *always*
//! recomputed from facts records, for fresh and cached files alike,
//! through the `*_from_facts` functions below. Fresh and warm runs
//! therefore produce byte-identical reports by construction: they run
//! the exact same assembly code over the exact same inputs.
//!
//! The serialised form (`adsafe-facts/1`) is hand-written JSON parsed
//! back with [`adsafe_trace::json::Json`]; any structural mismatch is
//! surfaced as an error so the cache layer can fall back to the cold
//! path with a [`crate::FaultCause::CacheCorrupt`] fault.

use adsafe_checkers::defensive::ValidationFacts;
use adsafe_checkers::unit_design::{FunctionUnitFacts, UnitDesignStats};
use adsafe_checkers::{Check, CheckContext, Diagnostic, FileEntry, Severity};
use adsafe_lang::ast::Storage;
use adsafe_lang::symbols::analyze_function;
use adsafe_lang::visit::walk_exprs;
use adsafe_lang::{CallGraph, FileId, ParsedFile, SourceMap, Span};
use adsafe_metrics::{
    count_file, function_metrics, pairwise_cohesion, ComplexityHistogram, FunctionMetrics,
    LocCounts, ModuleMetrics,
};
use adsafe_trace::json::{write_escaped, Json};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Version tag of the serialised facts record. Bump on any schema
/// change: it participates in the cache fingerprint, so old entries are
/// invalidated wholesale instead of being misread.
pub const FACTS_SCHEMA: &str = "adsafe-facts/1";

/// One file-scope variable definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalFacts {
    /// Variable name.
    pub name: String,
    /// Whether the declared type is `const`.
    pub is_const: bool,
    /// Whether the storage class is `extern`.
    pub is_extern: bool,
}

/// Everything the cross-file assemblies need from one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionFacts {
    /// Structural metrics (complexity, NLOC, exits, …).
    pub metrics: FunctionMetrics,
    /// Signature span start (byte offset).
    pub sig_start: u32,
    /// Signature span end (byte offset).
    pub sig_end: u32,
    /// Callee names in walk order, duplicates kept — replays the call
    /// graph via [`CallGraph::from_functions`].
    pub callees: Vec<String>,
    /// Distinct identifier expressions, sorted — feeds module cohesion.
    pub idents: Vec<String>,
    /// First unresolved use per name, in source order:
    /// `(name, span_start, span_end)` — feeds `design-global-use`.
    pub unresolved: Vec<(String, u32, u32)>,
    /// Per-function ISO 26262-6 Table 8 contributions.
    pub unit: FunctionUnitFacts,
    /// Whether this is a `__global__` CUDA kernel.
    pub is_kernel: bool,
    /// Pointer-like parameter count (GPU evidence).
    pub ptr_params: usize,
    /// CUDA allocation API call sites (GPU evidence).
    pub alloc_calls: usize,
    /// Input-validation facts (defensive-programming ratio).
    pub validation: ValidationFacts,
}

/// The complete cacheable record for one source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileFacts {
    /// Parser error-recovery regions (0 for a clean tier-1 parse).
    pub recovery_count: usize,
    /// Line counts.
    pub loc: LocCounts,
    /// File-scope variables.
    pub globals: Vec<GlobalFacts>,
    /// Per-function facts, in definition order.
    pub functions: Vec<FunctionFacts>,
    /// Implicit narrowing conversions (Table 8 row 7), measured
    /// file-locally at extraction time.
    pub implicit_conversions: usize,
    /// File-local diagnostics: every [`adsafe_checkers::CheckScope::File`]
    /// rule's findings plus the preprocessor macro-naming pass, in
    /// rule-registry order. Cross-file rule diagnostics are *not*
    /// stored — they are recomputed from facts.
    pub diags: Vec<Diagnostic>,
}

/// A facts record in pipeline position: `(file, module, facts)`.
pub type FactsRecord<'a> = (FileId, &'a str, &'a FileFacts);

/// Extracts [`FileFacts`] (minus diagnostics) from a parsed file.
pub fn extract_facts(sm: &SourceMap, id: FileId, parsed: &ParsedFile) -> FileFacts {
    let file = sm.file(id);
    let globals = parsed
        .unit
        .global_vars()
        .iter()
        .map(|g| GlobalFacts {
            name: g.name.clone(),
            is_const: g.ty.is_const,
            is_extern: g.storage == Storage::Extern,
        })
        .collect();
    let functions = parsed
        .unit
        .functions()
        .into_iter()
        .map(|f| {
            let mut idents: BTreeSet<String> = BTreeSet::new();
            walk_exprs(f, |e| {
                if let adsafe_lang::ast::ExprKind::Ident(n) = &e.kind {
                    if !idents.contains(n.as_str()) {
                        idents.insert(n.clone());
                    }
                }
            });
            let syms = analyze_function(f);
            let mut seen = HashSet::new();
            let unresolved = syms
                .unresolved
                .iter()
                .filter(|u| seen.insert(u.name.clone()))
                .map(|u| (u.name.clone(), u.span.start, u.span.end))
                .collect();
            FunctionFacts {
                metrics: function_metrics(file, f),
                sig_start: f.sig.span.start,
                sig_end: f.sig.span.end,
                callees: adsafe_lang::callgraph::callee_names(f),
                idents: idents.into_iter().collect(),
                unresolved,
                unit: adsafe_checkers::unit_design::function_unit_facts(f),
                is_kernel: f.sig.quals.cuda_global,
                ptr_params: f.sig.params.iter().filter(|p| p.ty.is_pointer_like()).count(),
                alloc_calls: adsafe_lang::cuda::profile_function(f).alloc_calls(),
                validation: adsafe_checkers::defensive::validation_facts(f),
            }
        })
        .collect();
    let entry = FileEntry { file, unit: &parsed.unit, module: "" };
    let implicit_conversions = adsafe_checkers::typing::ImplicitConversionCheck
        .run(&CheckContext::file_local(sm, entry))
        .len();
    FileFacts {
        recovery_count: parsed.unit.recovery_count,
        loc: count_file(file),
        globals,
        functions,
        implicit_conversions,
        diags: Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Cross-file assemblies. Each mirrors one piece of the serial pipeline
// exactly; the invariants are pinned by tests against the originals.
// ---------------------------------------------------------------------

/// Replays the whole-program call graph from facts records.
pub fn call_graph(records: &[FactsRecord<'_>]) -> CallGraph {
    let defs: Vec<(String, Vec<String>)> = records
        .iter()
        .flat_map(|(_, _, facts)| {
            facts
                .functions
                .iter()
                .map(|f| (f.metrics.qualified_name.clone(), f.callees.clone()))
        })
        .collect();
    CallGraph::from_functions(&defs)
}

/// All file-scope variable names across the program (unfiltered, as in
/// `adsafe_lang::symbols::global_names`).
pub fn global_names(records: &[FactsRecord<'_>]) -> HashSet<String> {
    records
        .iter()
        .flat_map(|(_, _, facts)| facts.globals.iter().map(|g| g.name.clone()))
        .collect()
}

/// `misra-17.2-recursion` diagnostics from facts — same order and
/// content as `RecursionCheck::run` over the whole-program context.
pub fn recursion_diags(records: &[FactsRecord<'_>], graph: &CallGraph) -> Vec<Diagnostic> {
    let recursive = graph.recursive_functions();
    let mut out = Vec::new();
    for (id, _, facts) in records {
        for f in &facts.functions {
            if recursive.contains(&f.metrics.qualified_name) {
                out.push(
                    Diagnostic::new(
                        "misra-17.2-recursion",
                        Severity::Violation,
                        Span::new(*id, f.sig_start, f.sig_end),
                        format!("function `{}` participates in recursion", f.metrics.name),
                    )
                    .in_function(&f.metrics.qualified_name),
                );
            }
        }
    }
    out
}

/// `design-global-use` diagnostics from facts — same order and content
/// as `GlobalUseCheck::run` over the whole-program context.
pub fn global_use_diags(
    records: &[FactsRecord<'_>],
    globals: &HashSet<String>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, _, facts) in records {
        for f in &facts.functions {
            for (name, start, end) in &f.unresolved {
                if globals.contains(name) {
                    out.push(
                        Diagnostic::new(
                            "design-global-use",
                            Severity::Info,
                            Span::new(*id, *start, *end),
                            format!("function accesses global `{name}`"),
                        )
                        .in_function(&f.metrics.qualified_name),
                    );
                }
            }
        }
    }
    out
}

/// Module metrics from facts — the same numbers (and the same
/// `metrics.module` span and counter) as `adsafe_metrics::module_metrics`
/// over the parsed files.
pub fn module_metrics_from_facts(name: &str, files: &[&FileFacts]) -> ModuleMetrics {
    let _sp = adsafe_trace::span_with(
        "metrics.module",
        "metrics",
        vec![("module", name.to_string())],
    );
    adsafe_trace::counter("metrics.module.files").add(files.len() as u64);
    let mut loc = LocCounts::default();
    let mut functions: Vec<FunctionMetrics> = Vec::new();
    let mut histogram = ComplexityHistogram::default();
    let mut global_count = 0usize;
    let mut global_names: HashSet<&str> = HashSet::new();

    for facts in files {
        loc.physical += facts.loc.physical;
        loc.nloc += facts.loc.nloc;
        loc.comment += facts.loc.comment;
        loc.blank += facts.loc.blank;
        loc.directive += facts.loc.directive;
        for g in &facts.globals {
            global_count += 1;
            global_names.insert(g.name.as_str());
        }
        for f in &facts.functions {
            histogram.add(f.metrics.cyclomatic);
            functions.push(f.metrics.clone());
        }
    }

    let touched: Vec<HashSet<String>> = files
        .iter()
        .flat_map(|facts| {
            facts.functions.iter().map(|f| {
                f.idents
                    .iter()
                    .filter(|n| global_names.contains(n.as_str()))
                    .cloned()
                    .collect::<HashSet<String>>()
            })
        })
        .collect();
    let cohesion = pairwise_cohesion(&touched);

    let mean_params = if functions.is_empty() {
        0.0
    } else {
        functions.iter().map(|f| f.param_count).sum::<usize>() as f64 / functions.len() as f64
    };

    ModuleMetrics {
        name: name.to_string(),
        file_count: files.len(),
        loc,
        functions,
        histogram,
        global_count,
        mean_params,
        cohesion,
        absorbed_files: 0,
    }
}

/// ISO 26262-6 Table 8 statistics from facts — same numbers as
/// `adsafe_checkers::unit_design_stats` over the whole-program context.
pub fn unit_stats_from_facts(records: &[FactsRecord<'_>], graph: &CallGraph) -> UnitDesignStats {
    let mut s = UnitDesignStats::default();
    let recursive = graph.recursive_functions();
    for (_, _, facts) in records {
        s.opaque_regions += facts.recovery_count;
        s.global_definitions += facts
            .globals
            .iter()
            .filter(|g| !g.is_const && !g.is_extern)
            .count();
        s.implicit_conversions += facts.implicit_conversions;
        for f in &facts.functions {
            s.function_count += 1;
            if f.metrics.multi_exit {
                s.multi_exit_functions += 1;
            }
            s.goto_count += f.metrics.goto_count;
            if recursive.contains(&f.metrics.qualified_name) {
                s.recursive_functions += 1;
            }
            s.maybe_uninit_reads += f.unit.maybe_uninit_reads;
            s.shadowed_declarations += f.unit.shadowed_declarations;
            s.pointer_uses += f.unit.pointer_uses;
            s.dynamic_alloc_sites += f.unit.dynamic_alloc_sites;
            s.opaque_regions += f.unit.opaque_stmts;
        }
    }
    s
}

/// Fraction of functions validating at least one parameter — same value
/// as `adsafe_checkers::defensive::validation_ratio`.
pub fn validation_ratio_from_facts(records: &[FactsRecord<'_>]) -> f64 {
    let mut with_params = 0usize;
    let mut validating = 0usize;
    for (_, _, facts) in records {
        for f in &facts.functions {
            if !f.validation.has_named_params {
                continue;
            }
            with_params += 1;
            if f.validation.validates {
                validating += 1;
            }
        }
    }
    if with_params == 0 {
        1.0
    } else {
        validating as f64 / with_params as f64
    }
}

// ---------------------------------------------------------------------
// Serialisation (hand-written JSON; parsed back with trace::json).
// ---------------------------------------------------------------------

/// The interned rule-id table: serialised diagnostics name their rule
/// by string, deserialisation maps it back to the `&'static str` the
/// live registry uses. An unknown id means the entry was written by an
/// incompatible build → corrupt.
fn check_id_for(name: &str) -> Option<&'static str> {
    static IDS: OnceLock<HashMap<String, &'static str>> = OnceLock::new();
    IDS.get_or_init(|| {
        let mut m: HashMap<String, &'static str> = HashMap::new();
        for c in adsafe_checkers::default_checks() {
            m.insert(c.id().to_string(), c.id());
        }
        m.insert("naming-macro".to_string(), "naming-macro");
        m
    })
    .get(name)
    .copied()
}

impl FileFacts {
    /// Serialises to the `adsafe-facts/1` JSON form. Diagnostic spans
    /// drop their [`FileId`] — it is reassigned at load time from the
    /// current run's source map.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        let _ = write!(out, "\"schema\":");
        write_escaped(&mut out, FACTS_SCHEMA);
        let _ = write!(
            out,
            ",\"recovery\":{},\"loc\":[{},{},{},{},{}],\"implicit\":{}",
            self.recovery_count,
            self.loc.physical,
            self.loc.nloc,
            self.loc.comment,
            self.loc.blank,
            self.loc.directive,
            self.implicit_conversions
        );
        out.push_str(",\"globals\":[");
        for (i, g) in self.globals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            write_escaped(&mut out, &g.name);
            let _ = write!(out, ",{},{}]", g.is_const, g.is_extern);
        }
        out.push_str("],\"functions\":[");
        for (i, f) in self.functions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_function(&mut out, f);
        }
        out.push_str("],\"diags\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            write_escaped(&mut out, d.check_id);
            out.push(',');
            write_escaped(&mut out, &d.severity.to_string());
            let _ = write!(out, ",{},{},", d.span.start, d.span.end);
            write_escaped(&mut out, &d.message);
            out.push(',');
            match &d.function {
                Some(f) => write_escaped(&mut out, f),
                None => out.push_str("null"),
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Parses a serialised record, rebinding all spans to `file`.
    pub fn from_json(text: &str, file: FileId) -> Result<FileFacts, String> {
        let v = Json::parse(text)?;
        if v.get("schema").and_then(Json::as_str) != Some(FACTS_SCHEMA) {
            return Err("schema mismatch".to_string());
        }
        let loc_arr = req_arr(&v, "loc")?;
        if loc_arr.len() != 5 {
            return Err("loc arity".to_string());
        }
        let loc = LocCounts {
            physical: as_usize(&loc_arr[0])?,
            nloc: as_usize(&loc_arr[1])?,
            comment: as_usize(&loc_arr[2])?,
            blank: as_usize(&loc_arr[3])?,
            directive: as_usize(&loc_arr[4])?,
        };
        let mut globals = Vec::new();
        for g in req_arr(&v, "globals")? {
            let t = g.as_arr().ok_or("global not an array")?;
            if t.len() != 3 {
                return Err("global arity".to_string());
            }
            globals.push(GlobalFacts {
                name: req_str_v(&t[0])?,
                is_const: as_bool(&t[1])?,
                is_extern: as_bool(&t[2])?,
            });
        }
        let mut functions = Vec::new();
        for f in req_arr(&v, "functions")? {
            functions.push(read_function(f)?);
        }
        let mut diags = Vec::new();
        for d in req_arr(&v, "diags")? {
            let t = d.as_arr().ok_or("diag not an array")?;
            if t.len() != 6 {
                return Err("diag arity".to_string());
            }
            let id_name = req_str_v(&t[0])?;
            let check_id =
                check_id_for(&id_name).ok_or_else(|| format!("unknown check id `{id_name}`"))?;
            let severity = match t[1].as_str() {
                Some("info") => Severity::Info,
                Some("warning") => Severity::Warning,
                Some("violation") => Severity::Violation,
                _ => return Err("bad severity".to_string()),
            };
            let span = Span::new(file, as_u32(&t[2])?, as_u32(&t[3])?);
            let mut diag = Diagnostic::new(check_id, severity, span, req_str_v(&t[4])?);
            match &t[5] {
                Json::Null => {}
                Json::Str(s) => diag = diag.in_function(s),
                _ => return Err("bad diag function".to_string()),
            }
            diags.push(diag);
        }
        Ok(FileFacts {
            recovery_count: req_usize(&v, "recovery")?,
            loc,
            globals,
            functions,
            implicit_conversions: req_usize(&v, "implicit")?,
            diags,
        })
    }
}

fn write_function(out: &mut String, f: &FunctionFacts) {
    out.push('{');
    out.push_str("\"name\":");
    write_escaped(out, &f.metrics.name);
    out.push_str(",\"qual\":");
    write_escaped(out, &f.metrics.qualified_name);
    let _ = write!(
        out,
        ",\"cc\":{},\"nloc\":{},\"params\":{},\"nest\":{},\"returns\":{},\"multi\":{},\
         \"goto\":{},\"stmts\":{},\"gpu\":{},\"sig\":[{},{}]",
        f.metrics.cyclomatic,
        f.metrics.nloc,
        f.metrics.param_count,
        f.metrics.max_nesting,
        f.metrics.return_count,
        f.metrics.multi_exit,
        f.metrics.goto_count,
        f.metrics.stmt_count,
        f.metrics.is_gpu,
        f.sig_start,
        f.sig_end
    );
    out.push_str(",\"callees\":[");
    for (i, c) in f.callees.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, c);
    }
    out.push_str("],\"idents\":[");
    for (i, n) in f.idents.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, n);
    }
    out.push_str("],\"unres\":[");
    for (i, (n, s, e)) in f.unresolved.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        write_escaped(out, n);
        let _ = write!(out, ",{s},{e}]");
    }
    let _ = write!(
        out,
        "],\"uninit\":{},\"shadow\":{},\"ptr\":{},\"dyn\":{},\"opaque\":{},\
         \"kernel\":{},\"kptr\":{},\"alloc\":{},\"named\":{},\"validates\":{}}}",
        f.unit.maybe_uninit_reads,
        f.unit.shadowed_declarations,
        f.unit.pointer_uses,
        f.unit.dynamic_alloc_sites,
        f.unit.opaque_stmts,
        f.is_kernel,
        f.ptr_params,
        f.alloc_calls,
        f.validation.has_named_params,
        f.validation.validates
    );
}

fn read_function(v: &Json) -> Result<FunctionFacts, String> {
    let sig = req_arr(v, "sig")?;
    if sig.len() != 2 {
        return Err("sig arity".to_string());
    }
    let mut callees = Vec::new();
    for c in req_arr(v, "callees")? {
        callees.push(req_str_v(c)?);
    }
    let mut idents = Vec::new();
    for n in req_arr(v, "idents")? {
        idents.push(req_str_v(n)?);
    }
    let mut unresolved = Vec::new();
    for u in req_arr(v, "unres")? {
        let t = u.as_arr().ok_or("unres not an array")?;
        if t.len() != 3 {
            return Err("unres arity".to_string());
        }
        unresolved.push((req_str_v(&t[0])?, as_u32(&t[1])?, as_u32(&t[2])?));
    }
    Ok(FunctionFacts {
        metrics: FunctionMetrics {
            name: req_str(v, "name")?,
            qualified_name: req_str(v, "qual")?,
            cyclomatic: req_u32(v, "cc")?,
            nloc: req_usize(v, "nloc")?,
            param_count: req_usize(v, "params")?,
            max_nesting: req_usize(v, "nest")?,
            return_count: req_usize(v, "returns")?,
            multi_exit: req_bool(v, "multi")?,
            goto_count: req_usize(v, "goto")?,
            stmt_count: req_usize(v, "stmts")?,
            is_gpu: req_bool(v, "gpu")?,
        },
        sig_start: as_u32(&sig[0])?,
        sig_end: as_u32(&sig[1])?,
        callees,
        idents,
        unresolved,
        unit: FunctionUnitFacts {
            maybe_uninit_reads: req_usize(v, "uninit")?,
            shadowed_declarations: req_usize(v, "shadow")?,
            pointer_uses: req_usize(v, "ptr")?,
            dynamic_alloc_sites: req_usize(v, "dyn")?,
            opaque_stmts: req_usize(v, "opaque")?,
        },
        is_kernel: req_bool(v, "kernel")?,
        ptr_params: req_usize(v, "kptr")?,
        alloc_calls: req_usize(v, "alloc")?,
        validation: ValidationFacts {
            has_named_params: req_bool(v, "named")?,
            validates: req_bool(v, "validates")?,
        },
    })
}

fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key).and_then(Json::as_arr).ok_or_else(|| format!("missing array `{key}`"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn req_str_v(v: &Json) -> Result<String, String> {
    v.as_str().map(str::to_string).ok_or_else(|| "expected string".to_string())
}

fn req_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .ok_or_else(|| format!("missing number `{key}`"))
        .and_then(as_usize)
}

fn req_u32(v: &Json, key: &str) -> Result<u32, String> {
    v.get(key).ok_or_else(|| format!("missing number `{key}`")).and_then(as_u32)
}

fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool `{key}`")),
    }
}

fn as_bool(v: &Json) -> Result<bool, String> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err("expected bool".to_string()),
    }
}

fn as_usize(v: &Json) -> Result<usize, String> {
    let n = v.as_f64().ok_or("expected number")?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err("expected non-negative integer".to_string());
    }
    Ok(n as usize)
}

fn as_u32(v: &Json) -> Result<u32, String> {
    let n = as_usize(v)?;
    u32::try_from(n).map_err(|_| "integer out of range".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsafe_checkers::{default_checks, AnalysisSet, CheckScope};

    const SRC_A: &str = "int g_total;\n\
        int rec(int n) { if (n <= 0) return 0; return rec(n - 1); }\n\
        int use_g(int* p) { if (p) { g_total += *p; } return g_total; }\n";
    const SRC_B: &str = "const int kMax = 9;\n\
        __global__ void scale(float* d, int n) { d[0] = (float)n; }\n\
        void driver(int x) { int u; int y = u + x; { int y = 2; (void)y; } }\n";

    fn corpus() -> AnalysisSet {
        let mut set = AnalysisSet::new();
        set.add("control", "control/a.cc", SRC_A);
        set.add("control", "control/b.cu", SRC_B);
        set
    }

    fn facts_of(set: &AnalysisSet) -> Vec<(FileId, String, FileFacts)> {
        set.parsed()
            .map(|(id, module, parsed)| {
                (*id, module.to_string(), extract_facts(&set.sm, *id, parsed))
            })
            .collect()
    }

    fn records(facts: &[(FileId, String, FileFacts)]) -> Vec<FactsRecord<'_>> {
        facts.iter().map(|(id, m, f)| (*id, m.as_str(), f)).collect()
    }

    #[test]
    fn graph_and_globals_replay_the_serial_path() {
        let set = corpus();
        let cx = set.context();
        let facts = facts_of(&set);
        let recs = records(&facts);
        let g = call_graph(&recs);
        assert_eq!(g.names(), cx.graph.names());
        assert_eq!(g.recursive_functions(), cx.graph.recursive_functions());
        for n in cx.graph.names() {
            assert_eq!(g.callees(n), cx.graph.callees(n), "callees of {n}");
        }
        assert_eq!(global_names(&recs), cx.global_names);
    }

    #[test]
    fn program_scoped_diags_replay_the_rules() {
        let set = corpus();
        let cx = set.context();
        let facts = facts_of(&set);
        let recs = records(&facts);
        for check in default_checks() {
            if check.scope() != CheckScope::Program {
                continue;
            }
            let expected = check.run(&cx);
            let got = match check.id() {
                "misra-17.2-recursion" => recursion_diags(&recs, &cx.graph),
                "design-global-use" => global_use_diags(&recs, &cx.global_names),
                other => panic!("unexpected program-scoped rule {other}"),
            };
            assert_eq!(got, expected, "rule {}", check.id());
        }
    }

    #[test]
    fn module_metrics_match_the_parse_based_path() {
        let set = corpus();
        let cx = set.context();
        let facts = facts_of(&set);
        let pairs: Vec<_> = cx.entries.iter().map(|e| (e.file, e.unit)).collect();
        let legacy = adsafe_metrics::module_metrics("control", &pairs);
        let files: Vec<&FileFacts> = facts.iter().map(|(_, _, f)| f).collect();
        let from_facts = module_metrics_from_facts("control", &files);
        assert_eq!(format!("{legacy:?}"), format!("{from_facts:?}"));
    }

    #[test]
    fn unit_stats_and_validation_match() {
        let set = corpus();
        let cx = set.context();
        let facts = facts_of(&set);
        let recs = records(&facts);
        assert_eq!(
            unit_stats_from_facts(&recs, &cx.graph),
            adsafe_checkers::unit_design_stats(&cx)
        );
        let legacy = adsafe_checkers::defensive::validation_ratio(&cx);
        let got = validation_ratio_from_facts(&recs);
        assert!((legacy - got).abs() < 1e-15, "{legacy} vs {got}");
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let set = corpus();
        let cx = set.context();
        for (i, (id, _, mut facts)) in facts_of(&set).into_iter().enumerate() {
            // Attach some real diagnostics to exercise diag serde.
            let entry = cx.entries[i];
            for check in default_checks() {
                if check.scope() == CheckScope::File {
                    facts
                        .diags
                        .extend(check.run(&CheckContext::file_local(&set.sm, entry)));
                }
            }
            let json = facts.to_json();
            let back = FileFacts::from_json(&json, id).expect("round trip parses");
            assert_eq!(back, facts);
        }
    }

    #[test]
    fn corrupt_records_are_rejected_not_panicked() {
        let set = corpus();
        let (id, _, facts) = &facts_of(&set)[0];
        let good = facts.to_json();
        for bad in [
            "",
            "{",
            "{}",
            "null",
            r#"{"schema":"other/9"}"#,
            &good.replace("\"recovery\"", "\"recoverz\""),
            &good.replace("adsafe-facts/1", "adsafe-facts/0"),
        ] {
            assert!(FileFacts::from_json(bad, *id).is_err(), "accepted: {bad:.40}");
        }
        // Unknown rule id → corrupt, not a bogus static str.
        let mut with_diag = facts.clone();
        with_diag.diags.push(Diagnostic::new(
            "misra-15.1-goto",
            Severity::Violation,
            Span::new(*id, 0, 1),
            "x",
        ));
        let tampered = with_diag.to_json().replace("misra-15.1-goto", "not-a-rule");
        assert!(FileFacts::from_json(&tampered, *id).is_err());
    }
}
