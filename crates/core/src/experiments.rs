//! One entry point per paper experiment: each function regenerates the
//! data behind a table or figure, and is what the examples and the
//! Criterion benches call.

use adsafe_corpus::yolo::{harness_with_drivers, real_scenarios, STENCIL_CU, YOLO_FILES};
use adsafe_coverage::{CoverageHarness, TestCase, Value};
use adsafe_iso26262::CoverageEvidence;
use adsafe_report::Figure;

/// Figure 5: per-file statement/branch/MC-DC coverage of the YOLO-mini
/// corpus under the real-scenario tests. Returns the figure and the
/// whole-corpus averages (the paper reports 83/75/61%).
pub fn fig5_yolo_coverage() -> (Figure, CoverageEvidence) {
    let h = harness_with_drivers();
    let (cov, _) = h.measure(&real_scenarios());
    let measured: Vec<_> = cov
        .iter()
        .filter(|c| YOLO_FILES.iter().any(|(p, _)| *p == c.label))
        .collect();
    let mut f = Figure::new(
        "Figure 5",
        "Coverage achieved for object detection (YOLO)",
    );
    let labels: Vec<&str> = measured.iter().map(|c| c.label.as_str()).collect();
    f.labels(&labels);
    f.series(
        "statement %",
        measured.iter().map(|c| c.statement_pct(true)).collect(),
    );
    f.series(
        "branch %",
        measured.iter().map(|c| c.branch_pct(true)).collect(),
    );
    f.series(
        "MC/DC %",
        measured.iter().map(|c| c.mcdc_pct(true)).collect(),
    );
    let n = measured.len().max(1) as f64;
    let avg = CoverageEvidence {
        statement_pct: measured.iter().map(|c| c.statement_pct(true)).sum::<f64>() / n,
        branch_pct: measured.iter().map(|c| c.branch_pct(true)).sum::<f64>() / n,
        mcdc_pct: measured.iter().map(|c| c.mcdc_pct(true)).sum::<f64>() / n,
    };
    (f, avg)
}

/// The mini-C driver for the translated stencils (single-device run:
/// `halo == 0`, so the halo path stays uncovered — matching the paper's
/// "full coverage is not achieved").
const STENCIL_DRIVER: &str = "\
float run_stencil2d(int h, int w) {\n\
    float* in = malloc(h * w * 4);\n\
    float* out = malloc(h * w * 4);\n\
    for (int i = 0; i < h * w; i++) { in[i] = (i % 7) * 1.0f; }\n\
    stencil2d_kernel_cpu(in, out, h, w, 0.5f, 0.125f, 0, 1, 1, w, h);\n\
    float sum = 0.0f;\n\
    for (int i = 0; i < h * w; i++) { sum = sum + out[i]; }\n\
    free(in); free(out);\n\
    return sum;\n\
}\n\
float run_stencil3d(int d, int h, int w) {\n\
    float* in = malloc(d * h * w * 4);\n\
    float* out = malloc(d * h * w * 4);\n\
    for (int i = 0; i < d * h * w; i++) { in[i] = (i % 5) * 1.0f; }\n\
    stencil3d_kernel_cpu(in, out, d, h, w, 0.4f, 0.1f, 0, 1, 1, w, h);\n\
    float sum = 0.0f;\n\
    for (int i = 0; i < d * h * w; i++) { sum = sum + out[i]; }\n\
    free(in); free(out);\n\
    return sum;\n\
}\n";

/// Figure 6: statement and branch coverage of the CUDA stencils after
/// cuda4cpu-style translation, per kernel.
pub fn fig6_stencil_coverage() -> Figure {
    let translated = adsafe_corpus::cuda_to_cpu(STENCIL_CU);
    let mut h = CoverageHarness::new();
    h.add_file("stencil_cpu.c", &translated.source);
    h.add_file("stencil_driver.c", STENCIL_DRIVER);
    h.link();
    let tests = vec![
        TestCase::new("2D stencil 8x8", "run_stencil2d", vec![Value::Int(8), Value::Int(8)]),
        TestCase::new(
            "3D stencil 4x4x4",
            "run_stencil3d",
            vec![Value::Int(4), Value::Int(4), Value::Int(4)],
        ),
    ];
    let (log, outcomes) = h.run(&tests);
    debug_assert!(outcomes.iter().all(|o| o.result.is_ok()));
    // Per-kernel coverage: compute per function, group 2D vs 3D.
    let file_cov = h.file_coverage(&log);
    let stencil = &file_cov[0];
    let kernel_names = ["stencil2d_kernel", "stencil3d_kernel"];
    let mut f = Figure::new(
        "Figure 6",
        "Statement and branch coverage for CUDA code modified to run on the CPU",
    );
    f.labels(&["2D stencil", "3D stencil"]);
    let pick = |metric: &dyn Fn(&adsafe_coverage::FunctionCoverage) -> f64| -> Vec<f64> {
        kernel_names
            .iter()
            .map(|k| {
                stencil
                    .functions
                    .iter()
                    .find(|fc| fc.name == *k)
                    .map(metric)
                    .unwrap_or(0.0)
            })
            .collect()
    };
    f.series("statement %", pick(&|fc| fc.statement_pct()));
    f.series("branch %", pick(&|fc| fc.branch_pct()));
    f
}

/// Figure 7 (model): end-to-end detection time per library implementation.
pub fn fig7_detection_perf() -> Figure {
    let pts = adsafe_perfmodel::fig7_detection_times();
    let mut f = Figure::new(
        "Figure 7",
        "Object detection with open-source vs closed-source libraries (ms, modeled)",
    );
    let labels: Vec<&str> = pts.iter().map(|p| p.label.as_str()).collect();
    f.labels(&labels);
    f.series("time (ms)", pts.iter().map(|p| p.value).collect());
    f
}

/// Figure 7 (measured): the same contrast on the real Rust kernels —
/// naive vs tiled vs autotuned backends of the YOLO pipeline, wall time
/// in milliseconds for one inference.
pub fn fig7_measured(input_hw: usize) -> Figure {
    use adsafe_gpu::{synthetic_frame, Backend, YoloNet};
    let net = YoloNet::tiny(3, input_hw, 2, 4, 42);
    let img = synthetic_frame(3, input_hw, input_hw / 2, input_hw / 2, 7);
    let mut f = Figure::new(
        "Figure 7 (measured)",
        "Object detection on real Rust kernels: naive vs tiled vs autotuned",
    );
    let labels: Vec<&str> = Backend::ALL.iter().map(|b| b.name()).collect();
    f.labels(&labels);
    let mut values = Vec::new();
    for b in Backend::ALL {
        let start = std::time::Instant::now();
        let _ = net.forward(&img, b);
        values.push(start.elapsed().as_secs_f64() * 1e3);
    }
    f.series("time (ms)", values);
    f
}

/// Figure 8a: CUTLASS vs cuBLAS relative performance (modeled).
pub fn fig8a() -> Figure {
    let pts = adsafe_perfmodel::fig8a_cutlass_vs_cublas();
    let mut f = Figure::new(
        "Figure 8(a)",
        "CUTLASS relative to cuBLAS (1.0 = parity, higher = CUTLASS faster)",
    );
    let labels: Vec<&str> = pts.iter().map(|p| p.label.as_str()).collect();
    f.labels(&labels);
    f.series("relative perf", pts.iter().map(|p| p.value).collect());
    f
}

/// Figure 8b: ISAAC vs cuDNN relative performance (modeled).
pub fn fig8b() -> Figure {
    let pts = adsafe_perfmodel::fig8b_isaac_vs_cudnn();
    let mut f = Figure::new(
        "Figure 8(b)",
        "ISAAC relative to cuDNN (1.0 = parity, higher = ISAAC faster)",
    );
    let labels: Vec<&str> = pts.iter().map(|p| p.label.as_str()).collect();
    f.labels(&labels);
    f.series("relative perf", pts.iter().map(|p| p.value).collect());
    f
}

/// Ablation: MC/DC with masking (what qualified tools accept) vs strict
/// unique-cause on the same YOLO coverage log. Returns
/// `(masking_covered, strict_covered, total_conditions)`.
pub fn mcdc_masking_ablation() -> (usize, usize, usize) {
    use adsafe_coverage::mcdc::{covered_conditions, covered_conditions_strict};
    let h = harness_with_drivers();
    let (log, _) = h.run(&real_scenarios());
    let mut masking = 0;
    let mut strict = 0;
    let mut total = 0;
    for records in log.decision_records.values() {
        // Number of conditions = longest recorded vector.
        let n = records.iter().map(|r| r.conditions.len()).max().unwrap_or(0);
        total += n;
        masking += covered_conditions(records, n);
        strict += covered_conditions_strict(records, n);
    }
    (masking, strict, total)
}

/// Figure 4 exhibit: the checker findings on the paper's `scale_bias_gpu`
/// CUDA excerpt, rendered as diagnostics.
pub fn fig4_findings() -> Vec<String> {
    let mut a = crate::pipeline::Assessment::new();
    a.add_file("perception", "scale_bias.cu", adsafe_corpus::yolo::SCALE_BIAS_CU);
    let r = a.run();
    let mut out: Vec<String> = r
        .diagnostics
        .iter()
        .filter(|d| {
            matches!(
                d.check_id,
                "misra-21.3-dynamic-memory"
                    | "cuda-kernel-pointer"
                    | "cuda-alloc-balance"
                    | "cuda-launch-unchecked"
            )
        })
        .map(|d| format!("[{}] {}", d.check_id, d.message))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reproduces_coverage_shape() {
        let (fig, avg) = fig5_yolo_coverage();
        assert_eq!(fig.labels.len(), YOLO_FILES.len());
        assert_eq!(fig.series.len(), 3);
        assert!(avg.statement_pct > avg.branch_pct);
        assert!(avg.branch_pct > avg.mcdc_pct);
        assert!(avg.statement_pct < 100.0);
    }

    #[test]
    fn fig6_below_full_coverage() {
        let fig = fig6_stencil_coverage();
        assert_eq!(fig.labels, vec!["2D stencil", "3D stencil"]);
        for (_, values) in &fig.series {
            for v in values {
                assert!(*v > 0.0, "kernel executed");
                assert!(*v < 100.0, "halo path must stay uncovered, got {v}");
            }
        }
    }

    #[test]
    fn fig7_model_runs() {
        let fig = fig7_detection_perf();
        assert_eq!(fig.labels.len(), 6);
    }

    #[test]
    fn fig7_measured_runs_small() {
        let fig = fig7_measured(32);
        assert_eq!(fig.series[0].1.len(), 3);
        assert!(fig.series[0].1.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn fig8_series_nonempty() {
        assert!(fig8a().labels.len() >= 16);
        assert!(fig8b().labels.len() >= 10);
    }

    #[test]
    fn masking_dominates_strict_mcdc() {
        let (masking, strict, total) = mcdc_masking_ablation();
        assert!(total > 0);
        assert!(strict <= masking, "strict {strict} > masking {masking}");
        assert!(masking <= total);
        // Short-circuit code makes the difference material.
        assert!(masking > strict, "expected masking to credit more conditions");
    }

    #[test]
    fn fig4_flags_the_paper_pattern() {
        let findings = fig4_findings();
        assert!(
            findings.iter().any(|f| f.contains("cudaMalloc")),
            "{findings:?}"
        );
        assert!(findings.iter().any(|f| f.contains("raw pointer")));
        assert!(findings.iter().any(|f| f.contains("fewer frees")));
    }
}
