//! Incremental artifact cache: per-file [`FileFacts`](crate::facts::FileFacts)
//! records keyed by content hash, persisted under `.adsafe-cache/`.
//!
//! ## Key and invalidation
//!
//! An entry's file name is the FNV-1a 64-bit hash of `path + '\0' + text`
//! (the *post-ingest* text, after lossy UTF-8 replacement — so a byte
//! change, a rename, or a different lossy decode all miss). The path is
//! part of the key because some rule messages embed path-derived names
//! (e.g. the expected include-guard macro).
//!
//! The whole cache carries a *fingerprint* in `meta.json`: a hash over
//! every registered rule id and description, the crate version, and the
//! facts schema tag. When the fingerprint of the running binary differs
//! — a rule was added, reworded, or the schema changed — the directory
//! is wiped and rebuilt rather than partially trusted.
//!
//! ## Fault behaviour
//!
//! The cache is an accelerator, never a correctness dependency: any I/O
//! error degrades to a miss, and a syntactically present but unreadable
//! entry is reported as [`CacheLookup::Corrupt`] so the pipeline can
//! log a [`crate::FaultCause::CacheCorrupt`] fault and re-analyse from
//! source. Counters: `cache.hits`, `cache.misses`, `cache.corrupt`,
//! `cache.stores`.

use crate::facts::{FileFacts, FACTS_SCHEMA};
use adsafe_lang::FileId;
use std::fs;
use std::path::{Path, PathBuf};

/// Result of a cache lookup for one file.
#[derive(Debug)]
pub enum CacheLookup {
    /// A valid entry was found: skip parse, checks, and metrics
    /// extraction for this file.
    Hit(FileFacts),
    /// No entry (or the cache is disabled/unusable).
    Miss,
    /// An entry exists but cannot be trusted; the payload says why.
    Corrupt(String),
}

/// Anything the pipeline can reuse per-file facts from: the on-disk
/// [`FactsCache`], or the resident
/// [`MemoryFactsStore`](crate::store::MemoryFactsStore) an
/// `adsafe serve` daemon keeps warm across requests. Implementations
/// must be callable from parallel parse workers (`&self`, `Sync`).
pub trait FactsStore: Sync {
    /// Looks up the facts for `hash`, rebinding spans to `file`.
    fn load(&self, hash: u64, file: FileId) -> CacheLookup;

    /// Records the facts for `hash` (best-effort; failures are
    /// silent). `path` lets stores keep a path → hash index for
    /// targeted invalidation; the disk cache ignores it.
    fn store_entry(&self, hash: u64, path: &str, facts: &FileFacts);

    /// If the store could not be brought up (unwritable directory,
    /// clobbered `meta.json`, …), the reason — the pipeline logs it as
    /// a non-degrading `CacheCorrupt` fault and runs cold.
    fn disabled_detail(&self) -> Option<String> {
        None
    }
}

/// An open (or soft-failed) on-disk facts cache.
#[derive(Debug)]
pub struct FactsCache {
    dir: PathBuf,
    /// `Some(why)` when the directory could not be set up; every
    /// operation then degrades to a miss/no-op.
    disabled: Option<String>,
}

/// FNV-1a 64-bit over `bytes`, seeded with `state` (chainable).
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(PRIME);
    }
    state
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Content-hash key for one file: path and post-ingest text.
pub fn content_hash(path: &str, text: &str) -> u64 {
    let h = fnv1a(FNV_OFFSET, path.as_bytes());
    let h = fnv1a(h, &[0]);
    fnv1a(h, text.as_bytes())
}

/// Fingerprint of the analysing build: rule set, crate version, facts
/// schema. Two builds with equal fingerprints produce interchangeable
/// facts records.
pub fn ruleset_fingerprint() -> String {
    let mut h = FNV_OFFSET;
    for c in adsafe_checkers::default_checks() {
        h = fnv1a(h, c.id().as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, c.description().as_bytes());
        h = fnv1a(h, b"\n");
    }
    h = fnv1a(h, env!("CARGO_PKG_VERSION").as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, FACTS_SCHEMA.as_bytes());
    format!("{h:016x}")
}

impl FactsCache {
    /// Opens (creating if needed) the cache at `dir`, wiping it when
    /// the stored fingerprint does not match this build. Never fails:
    /// an unusable directory degrades every operation to a miss/no-op,
    /// with the reason surfaced through
    /// [`disabled_detail`](FactsStore::disabled_detail) so the
    /// pipeline can log a non-degrading `CacheCorrupt` fault instead
    /// of silently running cold.
    pub fn open(dir: &Path) -> FactsCache {
        let fingerprint = ruleset_fingerprint();
        if let Err(e) = fs::create_dir_all(dir) {
            return FactsCache {
                dir: dir.to_path_buf(),
                disabled: Some(format!("cannot create cache dir: {e}")),
            };
        }
        let meta_path = dir.join("meta.json");
        let stored = fs::read_to_string(&meta_path).ok().and_then(|text| {
            let v = adsafe_trace::json::Json::parse(&text).ok()?;
            Some(v.get("fingerprint")?.as_str()?.to_string())
        });
        if stored.as_deref() != Some(fingerprint.as_str()) {
            // Fingerprint changed (or first run): every entry is stale.
            if let Ok(entries) = fs::read_dir(dir) {
                for e in entries.flatten() {
                    if e.path().extension().is_some_and(|x| x == "json") {
                        let _ = fs::remove_file(e.path());
                    }
                }
            }
            let mut meta = String::from("{\"schema\":\"adsafe-cache/1\",\"fingerprint\":");
            adsafe_trace::json::write_escaped(&mut meta, &fingerprint);
            meta.push('}');
            if let Err(e) = fs::write(&meta_path, meta) {
                return FactsCache {
                    dir: dir.to_path_buf(),
                    disabled: Some(format!("cannot write meta.json: {e}")),
                };
            }
        }
        FactsCache { dir: dir.to_path_buf(), disabled: None }
    }

    fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.json"))
    }

    /// Looks up the entry for `hash`, rebinding diagnostic spans to
    /// `file`. Emits the `cache.hits`/`cache.misses`/`cache.corrupt`
    /// counter for the outcome.
    pub fn load(&self, hash: u64, file: FileId) -> CacheLookup {
        if self.disabled.is_some() {
            adsafe_trace::counter("cache.misses").incr();
            return CacheLookup::Miss;
        }
        let path = self.entry_path(hash);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                adsafe_trace::counter("cache.misses").incr();
                return CacheLookup::Miss;
            }
        };
        match FileFacts::from_json(&text, file) {
            Ok(facts) => {
                adsafe_trace::counter("cache.hits").incr();
                CacheLookup::Hit(facts)
            }
            Err(detail) => {
                adsafe_trace::counter("cache.corrupt").incr();
                // Drop the bad entry so the re-analysed facts can be
                // written back cleanly.
                let _ = fs::remove_file(&path);
                CacheLookup::Corrupt(detail)
            }
        }
    }

    /// Writes the entry for `hash` (atomically: temp file + rename).
    /// Emits `cache.stores` on success; failures are silent — the next
    /// run simply misses.
    pub fn store(&self, hash: u64, facts: &FileFacts) {
        if self.write_json(hash, &facts.to_json()) {
            adsafe_trace::counter("cache.stores").incr();
        }
    }

    /// Writes an already-serialised entry (the memory store's lazy
    /// write-back path). Emits `cache.writeback` on success.
    pub fn store_raw(&self, hash: u64, json: &str) -> bool {
        let ok = self.write_json(hash, json);
        if ok {
            adsafe_trace::counter("cache.writeback").incr();
        }
        ok
    }

    fn write_json(&self, hash: u64, json: &str) -> bool {
        if self.disabled.is_some() {
            return false;
        }
        let tmp = self.dir.join(format!(".tmp-{}-{hash:016x}", std::process::id()));
        if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, self.entry_path(hash)).is_ok() {
            true
        } else {
            let _ = fs::remove_file(&tmp);
            false
        }
    }

    /// Removes the entry for `hash`, if present.
    pub fn evict(&self, hash: u64) {
        if self.disabled.is_none() {
            let _ = fs::remove_file(self.entry_path(hash));
        }
    }
}

impl FactsStore for FactsCache {
    fn load(&self, hash: u64, file: FileId) -> CacheLookup {
        FactsCache::load(self, hash, file)
    }

    fn store_entry(&self, hash: u64, _path: &str, facts: &FileFacts) {
        FactsCache::store(self, hash, facts);
    }

    fn disabled_detail(&self) -> Option<String> {
        self.disabled.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "adsafe-cache-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn hash_differs_on_path_and_content() {
        let a = content_hash("a.cc", "int x;");
        assert_ne!(a, content_hash("b.cc", "int x;"));
        assert_ne!(a, content_hash("a.cc", "int y;"));
        assert_eq!(a, content_hash("a.cc", "int x;"));
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = FactsCache::open(&dir);
        let facts = FileFacts { recovery_count: 2, ..FileFacts::default() };
        let h = content_hash("m/a.cc", "text");
        cache.store(h, &facts);
        match cache.load(h, FileId(0)) {
            CacheLookup::Hit(f) => assert_eq!(f, facts),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(
            cache.load(h ^ 1, FileId(0)),
            CacheLookup::Miss
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_reported_and_evicted() {
        let dir = temp_dir("corrupt");
        let cache = FactsCache::open(&dir);
        let h = content_hash("m/a.cc", "text");
        fs::write(dir.join(format!("{h:016x}.json")), "{not json").unwrap();
        assert!(matches!(cache.load(h, FileId(0)), CacheLookup::Corrupt(_)));
        // The bad entry was evicted → second lookup is a plain miss.
        assert!(matches!(cache.load(h, FileId(0)), CacheLookup::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn occupied_cache_path_disables_with_detail() {
        // A regular file where the cache dir should be: create_dir_all
        // fails for any user (unlike a read-only dir, which root
        // bypasses), standing in for every unwritable-dir failure.
        let path = temp_dir("occupied");
        fs::write(&path, "not a directory").unwrap();
        let cache = FactsCache::open(&path);
        let detail = cache.disabled_detail().expect("unusable cache reports why");
        assert!(detail.contains("cannot create cache dir"), "{detail}");
        // Every operation degrades to a miss/no-op, never an error.
        let h = content_hash("m/a.cc", "text");
        cache.store(h, &FileFacts::default());
        assert!(matches!(cache.load(h, FileId(0)), CacheLookup::Miss));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn readonly_cache_dir_disables_with_detail() {
        use std::os::unix::fs::PermissionsExt;
        let dir = temp_dir("readonly");
        fs::create_dir_all(&dir).unwrap();
        fs::set_permissions(&dir, fs::Permissions::from_mode(0o555)).unwrap();
        // Root ignores permission bits; only assert when the kernel
        // actually enforces them.
        let enforced = fs::write(dir.join(".probe"), "x").is_err();
        if enforced {
            let cache = FactsCache::open(&dir);
            let detail = cache.disabled_detail().expect("read-only dir must disable");
            assert!(detail.contains("meta.json"), "{detail}");
        }
        fs::set_permissions(&dir, fs::Permissions::from_mode(0o755)).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_raw_round_trips_and_evicts() {
        let dir = temp_dir("raw");
        let cache = FactsCache::open(&dir);
        let facts = FileFacts { recovery_count: 1, ..FileFacts::default() };
        let h = content_hash("m/raw.cc", "text");
        assert!(cache.store_raw(h, &facts.to_json()));
        match cache.load(h, FileId(0)) {
            CacheLookup::Hit(f) => assert_eq!(f, facts),
            other => panic!("expected hit, got {other:?}"),
        }
        cache.evict(h);
        assert!(matches!(cache.load(h, FileId(0)), CacheLookup::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_wipes_entries() {
        let dir = temp_dir("fingerprint");
        let cache = FactsCache::open(&dir);
        let h = content_hash("m/a.cc", "text");
        cache.store(h, &FileFacts::default());
        // Simulate a cache written by a different rule set.
        fs::write(
            dir.join("meta.json"),
            "{\"schema\":\"adsafe-cache/1\",\"fingerprint\":\"deadbeef\"}",
        )
        .unwrap();
        let cache2 = FactsCache::open(&dir);
        assert!(matches!(cache2.load(h, FileId(0)), CacheLookup::Miss));
        // meta.json was rewritten with the current fingerprint.
        let meta = fs::read_to_string(dir.join("meta.json")).unwrap();
        assert!(meta.contains(&ruleset_fingerprint()));
        let _ = fs::remove_dir_all(&dir);
    }
}
