//! Incremental artifact cache: per-file [`FileFacts`](crate::facts::FileFacts)
//! records keyed by content hash, persisted under `.adsafe-cache/`.
//!
//! ## Key and invalidation
//!
//! An entry's file name is the FNV-1a 64-bit hash of `path + '\0' + text`
//! (the *post-ingest* text, after lossy UTF-8 replacement — so a byte
//! change, a rename, or a different lossy decode all miss). The path is
//! part of the key because some rule messages embed path-derived names
//! (e.g. the expected include-guard macro).
//!
//! The whole cache carries a *fingerprint* in `meta.json`: a hash over
//! every registered rule id and description, the crate version, and the
//! facts schema tag. When the fingerprint of the running binary differs
//! — a rule was added, reworded, or the schema changed — the directory
//! is wiped and rebuilt rather than partially trusted.
//!
//! ## Fault behaviour
//!
//! The cache is an accelerator, never a correctness dependency: any I/O
//! error degrades to a miss, and a syntactically present but unreadable
//! entry is reported as [`CacheLookup::Corrupt`] so the pipeline can
//! log a [`crate::FaultCause::CacheCorrupt`] fault and re-analyse from
//! source. Counters: `cache.hits`, `cache.misses`, `cache.corrupt`,
//! `cache.stores`.

use crate::facts::{FileFacts, FACTS_SCHEMA};
use adsafe_lang::FileId;
use std::fs;
use std::path::{Path, PathBuf};

/// Result of a cache lookup for one file.
#[derive(Debug)]
pub enum CacheLookup {
    /// A valid entry was found: skip parse, checks, and metrics
    /// extraction for this file.
    Hit(FileFacts),
    /// No entry (or the cache is disabled/unusable).
    Miss,
    /// An entry exists but cannot be trusted; the payload says why.
    Corrupt(String),
}

/// An open (or soft-failed) on-disk facts cache.
#[derive(Debug)]
pub struct FactsCache {
    dir: PathBuf,
    usable: bool,
}

/// FNV-1a 64-bit over `bytes`, seeded with `state` (chainable).
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(PRIME);
    }
    state
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Content-hash key for one file: path and post-ingest text.
pub fn content_hash(path: &str, text: &str) -> u64 {
    let h = fnv1a(FNV_OFFSET, path.as_bytes());
    let h = fnv1a(h, &[0]);
    fnv1a(h, text.as_bytes())
}

/// Fingerprint of the analysing build: rule set, crate version, facts
/// schema. Two builds with equal fingerprints produce interchangeable
/// facts records.
pub fn ruleset_fingerprint() -> String {
    let mut h = FNV_OFFSET;
    for c in adsafe_checkers::default_checks() {
        h = fnv1a(h, c.id().as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, c.description().as_bytes());
        h = fnv1a(h, b"\n");
    }
    h = fnv1a(h, env!("CARGO_PKG_VERSION").as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, FACTS_SCHEMA.as_bytes());
    format!("{h:016x}")
}

impl FactsCache {
    /// Opens (creating if needed) the cache at `dir`, wiping it when
    /// the stored fingerprint does not match this build. Never fails:
    /// an unusable directory degrades every operation to a miss/no-op.
    pub fn open(dir: &Path) -> FactsCache {
        let fingerprint = ruleset_fingerprint();
        if fs::create_dir_all(dir).is_err() {
            return FactsCache { dir: dir.to_path_buf(), usable: false };
        }
        let meta_path = dir.join("meta.json");
        let stored = fs::read_to_string(&meta_path).ok().and_then(|text| {
            let v = adsafe_trace::json::Json::parse(&text).ok()?;
            Some(v.get("fingerprint")?.as_str()?.to_string())
        });
        if stored.as_deref() != Some(fingerprint.as_str()) {
            // Fingerprint changed (or first run): every entry is stale.
            if let Ok(entries) = fs::read_dir(dir) {
                for e in entries.flatten() {
                    if e.path().extension().is_some_and(|x| x == "json") {
                        let _ = fs::remove_file(e.path());
                    }
                }
            }
            let mut meta = String::from("{\"schema\":\"adsafe-cache/1\",\"fingerprint\":");
            adsafe_trace::json::write_escaped(&mut meta, &fingerprint);
            meta.push('}');
            if fs::write(&meta_path, meta).is_err() {
                return FactsCache { dir: dir.to_path_buf(), usable: false };
            }
        }
        FactsCache { dir: dir.to_path_buf(), usable: true }
    }

    fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.json"))
    }

    /// Looks up the entry for `hash`, rebinding diagnostic spans to
    /// `file`. Emits the `cache.hits`/`cache.misses`/`cache.corrupt`
    /// counter for the outcome.
    pub fn load(&self, hash: u64, file: FileId) -> CacheLookup {
        if !self.usable {
            adsafe_trace::counter("cache.misses").incr();
            return CacheLookup::Miss;
        }
        let path = self.entry_path(hash);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                adsafe_trace::counter("cache.misses").incr();
                return CacheLookup::Miss;
            }
        };
        match FileFacts::from_json(&text, file) {
            Ok(facts) => {
                adsafe_trace::counter("cache.hits").incr();
                CacheLookup::Hit(facts)
            }
            Err(detail) => {
                adsafe_trace::counter("cache.corrupt").incr();
                // Drop the bad entry so the re-analysed facts can be
                // written back cleanly.
                let _ = fs::remove_file(&path);
                CacheLookup::Corrupt(detail)
            }
        }
    }

    /// Writes the entry for `hash` (atomically: temp file + rename).
    /// Emits `cache.stores` on success; failures are silent — the next
    /// run simply misses.
    pub fn store(&self, hash: u64, facts: &FileFacts) {
        if !self.usable {
            return;
        }
        let tmp = self.dir.join(format!(".tmp-{}-{hash:016x}", std::process::id()));
        if fs::write(&tmp, facts.to_json()).is_ok()
            && fs::rename(&tmp, self.entry_path(hash)).is_ok()
        {
            adsafe_trace::counter("cache.stores").incr();
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "adsafe-cache-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn hash_differs_on_path_and_content() {
        let a = content_hash("a.cc", "int x;");
        assert_ne!(a, content_hash("b.cc", "int x;"));
        assert_ne!(a, content_hash("a.cc", "int y;"));
        assert_eq!(a, content_hash("a.cc", "int x;"));
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = FactsCache::open(&dir);
        let facts = FileFacts { recovery_count: 2, ..FileFacts::default() };
        let h = content_hash("m/a.cc", "text");
        cache.store(h, &facts);
        match cache.load(h, FileId(0)) {
            CacheLookup::Hit(f) => assert_eq!(f, facts),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(
            cache.load(h ^ 1, FileId(0)),
            CacheLookup::Miss
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_reported_and_evicted() {
        let dir = temp_dir("corrupt");
        let cache = FactsCache::open(&dir);
        let h = content_hash("m/a.cc", "text");
        fs::write(dir.join(format!("{h:016x}.json")), "{not json").unwrap();
        assert!(matches!(cache.load(h, FileId(0)), CacheLookup::Corrupt(_)));
        // The bad entry was evicted → second lookup is a plain miss.
        assert!(matches!(cache.load(h, FileId(0)), CacheLookup::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_wipes_entries() {
        let dir = temp_dir("fingerprint");
        let cache = FactsCache::open(&dir);
        let h = content_hash("m/a.cc", "text");
        cache.store(h, &FileFacts::default());
        // Simulate a cache written by a different rule set.
        fs::write(
            dir.join("meta.json"),
            "{\"schema\":\"adsafe-cache/1\",\"fingerprint\":\"deadbeef\"}",
        )
        .unwrap();
        let cache2 = FactsCache::open(&dir);
        assert!(matches!(cache2.load(h, FileId(0)), CacheLookup::Miss));
        // meta.json was rewritten with the current fingerprint.
        let meta = fs::read_to_string(dir.join("meta.json")).unwrap();
        assert!(meta.contains(&ruleset_fingerprint()));
        let _ = fs::remove_dir_all(&dir);
    }
}
