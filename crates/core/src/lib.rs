//! # adsafe — ISO 26262 Part-6 adherence assessment for AD software
//!
//! A Rust reproduction of *"Assessing the Adherence of an Industrial
//! Autonomous Driving Framework to ISO 26262 Software Guidelines"*
//! (Tabani et al., DAC 2019): a full assessment toolchain — C/C++/CUDA
//! front-end, software metrics, MISRA-style checkers, structural
//! coverage (statement/branch/MC-DC), CUDA-on-CPU execution, GPU-library
//! performance models — plus an Apollo-scale synthetic corpus, wired
//! into the paper's methodology: measure, judge against the Part-6
//! recommendation tables at ASIL-D, and report the gaps.
//!
//! ## Quickstart
//!
//! ```
//! use adsafe::{Assessment, AssessmentOptions};
//! use adsafe::iso26262::{Status, TableId};
//!
//! let mut a = Assessment::new();
//! a.add_file(
//!     "control",
//!     "control/brake.cc",
//!     "int g_brake_state;\n\
//!      int Apply(int force) { if (force < 0) return -1; g_brake_state = force; return 0; }\n",
//! );
//! let report = a.run();
//! // Global variable + multi-exit function → two Part-6 findings.
//! let unit = report.compliance.table(TableId::UnitDesign);
//! assert_ne!(unit[0].status, Status::Compliant); // multiple exits
//! assert_ne!(unit[4].status, Status::Compliant); // global variables
//! ```
//!
//! Every paper table and figure has a regeneration entry point in
//! [`experiments`]; the Criterion benches in `adsafe-bench` wrap them.

#![warn(missing_docs)]

pub mod cache;
pub mod experiments;
pub mod facts;
pub mod fault;
pub mod pipeline;
pub mod query;
pub mod render;
pub mod store;

pub use cache::{content_hash, ruleset_fingerprint, CacheLookup, FactsCache, FactsStore};
pub use store::MemoryFactsStore;
pub use fault::{Fault, FaultCause, FaultLog, FaultPhase, FaultSeverity, Recovery};
pub use pipeline::{assess_corpus, Assessment, AssessmentOptions, AssessmentReport, Budgets};
pub use adsafe_trace::TraceSummary;

/// Re-export: zero-dependency work-stealing thread pool.
pub use adsafe_pool as pool;

/// Re-export: structured tracing & metrics registry.
pub use adsafe_trace as trace;

/// Re-export: language front-end.
pub use adsafe_lang as lang;
/// Re-export: software metrics.
pub use adsafe_metrics as metrics;
/// Re-export: rule engine.
pub use adsafe_checkers as checkers;
/// Re-export: typed rule-query language and VM.
pub use adsafe_query as rulequery;
/// Re-export: standard model & compliance engine.
pub use adsafe_iso26262 as iso26262;
/// Re-export: structural coverage.
pub use adsafe_coverage as coverage;
/// Re-export: GPU emulation & kernels.
pub use adsafe_gpu as gpu;
/// Re-export: performance models.
pub use adsafe_perfmodel as perfmodel;
/// Re-export: corpora.
pub use adsafe_corpus as corpus;
/// Re-export: tables & figures.
pub use adsafe_report as report;
