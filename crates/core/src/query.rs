//! Query-rule integration: rows from cached facts, pack discovery and
//! loading, and fault mapping.
//!
//! The pipeline evaluates query rules over [`FileFacts`] records — the
//! same records the incremental cache replays — so a warm-cache run
//! never reparses a file just to answer a query. The row builders here
//! must agree value-for-value with `adsafe_query::rows_from_context`
//! (the live-AST path used by `adsafe rules check` and the parity
//! gate); both go through the same named-field structs, and the parity
//! integration test pins the agreement.

use crate::facts::FileFacts;
use crate::fault::{Fault, FaultCause, FaultPhase, FaultSeverity, Recovery};
use adsafe_checkers::default_checks;
use adsafe_lang::{FileId, Span};
use adsafe_query::{FileRow, FunctionRow, GlobalRow, PackFault, Row, RulePack, Selector};
use std::path::{Path, PathBuf};

/// Builds the rows `selector` ranges over for one file, from its facts
/// record. `recursive` is the whole-program recursive-function set
/// (qualified names) — only consulted by the `recursive` field.
pub fn rows_from_facts(
    selector: Selector,
    id: FileId,
    module: &str,
    facts: &FileFacts,
    recursive: &[String],
) -> Vec<Row> {
    match selector {
        Selector::Function => facts
            .functions
            .iter()
            .map(|f| {
                let m = &f.metrics;
                FunctionRow {
                    name: &m.name,
                    qualified: &m.qualified_name,
                    module,
                    cc: m.cyclomatic,
                    nloc: m.nloc,
                    params: m.param_count,
                    nesting: m.max_nesting,
                    returns: m.return_count,
                    multi_exit: m.multi_exit,
                    gotos: m.goto_count,
                    stmts: m.stmt_count,
                    is_gpu: m.is_gpu,
                    is_kernel: f.is_kernel,
                    ptr_params: f.ptr_params,
                    alloc_calls: f.alloc_calls,
                    uninit_reads: f.unit.maybe_uninit_reads,
                    shadowed: f.unit.shadowed_declarations,
                    pointer_uses: f.unit.pointer_uses,
                    alloc_sites: f.unit.dynamic_alloc_sites,
                    opaque_stmts: f.unit.opaque_stmts,
                    has_named_params: f.validation.has_named_params,
                    validates: f.validation.validates,
                    recursive: recursive.contains(&m.qualified_name),
                    span: Span::new(id, f.sig_start, f.sig_end),
                }
                .into_row()
            })
            .collect(),
        Selector::Global => facts
            .globals
            .iter()
            .map(|g| {
                GlobalRow {
                    name: &g.name,
                    module,
                    is_const: g.is_const,
                    is_extern: g.is_extern,
                    span: Span::new(id, 0, 0),
                }
                .into_row()
            })
            .collect(),
        Selector::File => vec![FileRow {
            module,
            physical: facts.loc.physical,
            nloc: facts.loc.nloc,
            comment: facts.loc.comment,
            blank: facts.loc.blank,
            directive: facts.loc.directive,
            recovery: facts.recovery_count,
            implicit_conversions: facts.implicit_conversions,
            functions: facts.functions.len(),
            globals: facts.globals.len(),
            span: Span::new(id, 0, 0),
        }
        .into_row()],
    }
}

/// Finds rule-pack files for a corpus root: `ROOT/.adsafe-rules/*.aq`,
/// sorted by file name for deterministic load order.
pub fn discover_rule_paths(root: &Path) -> Vec<PathBuf> {
    let dir = root.join(".adsafe-rules");
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("aq") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Resolves a `--rules` argument: a single pack file is used as-is, a
/// directory contributes its `*.aq` files in sorted order.
pub fn resolve_rules_arg(path: &Path) -> Vec<PathBuf> {
    if !path.is_dir() {
        return vec![path.to_path_buf()];
    }
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(path) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.extension().and_then(|e| e.to_str()) == Some("aq") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Native rule ids, reserved so a pack can never shadow them.
pub fn native_rule_ids() -> Vec<&'static str> {
    default_checks().iter().map(|c| c.id()).collect()
}

/// Loads a rule pack from explicit paths. Unreadable files become
/// [`PackFault`]s (line 0); parse/type/collision faults come back from
/// the pack loader per rule. Native ids are always reserved.
pub fn load_rule_pack(paths: &[PathBuf]) -> RulePack {
    let mut sources = Vec::new();
    let mut io_faults = Vec::new();
    for path in paths {
        let label = path.display().to_string();
        match std::fs::read_to_string(path) {
            Ok(text) => sources.push((label, text)),
            Err(e) => io_faults.push(PackFault {
                file: label,
                line: 0,
                detail: format!("unreadable pack file: {e}"),
            }),
        }
    }
    let native = native_rule_ids();
    let mut pack = RulePack::from_sources(&sources, &native);
    // Unreadable files surface first: they are discovered first.
    io_faults.append(&mut pack.faults);
    pack.faults = io_faults;
    pack
}

/// Maps one contained pack-loading failure onto the fault taxonomy:
/// Info severity (no evidence affected), `Noted` recovery — the run
/// proceeds with the remaining rules.
pub fn pack_fault(pf: &PackFault) -> Fault {
    Fault {
        phase: FaultPhase::Checks,
        path: pf.file.clone(),
        severity: FaultSeverity::Info,
        cause: FaultCause::RulePackInvalid { line: pf.line, detail: pf.detail.clone() },
        recovery: Recovery::Noted,
        run_id: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract_facts;
    use adsafe_checkers::AnalysisSet;
    use adsafe_query::rows_from_context;

    const SRC: &str = "\
const int kMax = 4;\n\
int counter;\n\
__global__ void kern(int* p, float* q) { p[0] = (int)q[0]; }\n\
int pick(int a) { if (a > 0) { return a; } return -a; }\n";

    /// The facts path and the live-AST path must produce identical
    /// rows — this is the invariant that makes warm-cache query runs
    /// byte-identical to cold ones.
    #[test]
    fn facts_rows_agree_with_context_rows() {
        let mut set = AnalysisSet::new();
        set.add("demo", "demo/demo.cu", SRC);
        let facts: Vec<_> = set
            .parsed()
            .map(|(id, module, parsed)| {
                (*id, module.to_string(), extract_facts(&set.sm, *id, parsed))
            })
            .collect();
        let cx = set.context();
        for sel in [Selector::Function, Selector::Global, Selector::File] {
            let from_facts: Vec<Row> = facts
                .iter()
                .flat_map(|(id, m, f)| rows_from_facts(sel, *id, m, f, &[]))
                .collect();
            let from_cx = rows_from_context(sel, &cx);
            assert_eq!(from_facts, from_cx, "{sel:?}");
        }
    }

    #[test]
    fn recursive_set_feeds_the_recursive_field() {
        let mut set = AnalysisSet::new();
        set.add("m", "m/a.cc", "int odd(int n) { if (n == 0) return 0; return odd(n - 1); }\n");
        let (id, module, facts) = set
            .parsed()
            .map(|(id, module, parsed)| {
                (*id, module.to_string(), extract_facts(&set.sm, *id, parsed))
            })
            .next()
            .unwrap();
        let cold = rows_from_facts(Selector::Function, id, &module, &facts, &[]);
        let hot =
            rows_from_facts(Selector::Function, id, &module, &facts, &["odd".to_string()]);
        let idx = adsafe_query::schema::lookup(Selector::Function, "recursive").unwrap().0;
        assert_eq!(cold[0].vals[idx as usize], adsafe_query::Value::Bool(false));
        assert_eq!(hot[0].vals[idx as usize], adsafe_query::Value::Bool(true));
    }

    #[test]
    fn unreadable_pack_is_a_contained_fault() {
        let pack = load_rule_pack(&[PathBuf::from("/nonexistent/rules.aq")]);
        assert!(pack.rules.is_empty());
        assert_eq!(pack.faults.len(), 1);
        assert!(pack.faults[0].detail.contains("unreadable"));
        let f = pack_fault(&pack.faults[0]);
        assert_eq!(f.severity, FaultSeverity::Info);
        assert_eq!(f.recovery, Recovery::Noted);
        assert!(f.to_string().contains("rule pack invalid"));
    }

    #[test]
    fn native_ids_are_reserved() {
        assert!(native_rule_ids().contains(&"misra-15.1-goto"));
    }
}
