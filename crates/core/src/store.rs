//! Resident in-memory facts store for long-lived assessment services.
//!
//! The on-disk [`FactsCache`](crate::cache::FactsCache) makes *cold
//! process starts* cheap; this store makes *warm requests* cheap. An
//! `adsafe serve` daemon keeps one [`MemoryFactsStore`] alive across
//! requests, so a repeated `POST /assess` over an unchanged corpus
//! performs zero parse-phase work: every file resolves to a resident
//! entry keyed by content hash.
//!
//! Entries are held in the same serialised form the disk cache uses
//! (`FileFacts::to_json`), for two reasons: loading must rebind
//! diagnostic spans to the *current* run's `FileId` (exactly what
//! `FileFacts::from_json` does), and memory and disk then share one
//! validation path — an entry that round-trips from memory is
//! byte-for-byte the entry that would round-trip from disk, which is
//! what keeps served reports identical to CLI reports.
//!
//! With a backing directory ([`MemoryFactsStore::open`] with
//! `Some(dir)`), misses fall through to the disk cache (promoting hits
//! into memory) and new entries are written back **lazily**: they stay
//! dirty in memory until [`flush`](MemoryFactsStore::flush), which the
//! server calls on graceful shutdown — requests never pay disk-write
//! latency.
//!
//! A secondary path → hash index supports targeted invalidation
//! (`POST /invalidate`): dropping a path removes the resident entry
//! *and* evicts the disk entry, so the next request re-analyses from
//! source.
//!
//! With a byte budget ([`MemoryFactsStore::open_budgeted`]), the store
//! degrades gracefully under memory pressure instead of growing
//! without bound: crossing the watermark evicts least-recently-used
//! entries (dirty ones are demoted to the disk backing first, so no
//! warm-start data is lost) until the store is back under budget.
//! Evictions are counted in `store.evictions`, released bytes in
//! `store.evicted_bytes`, and summarised as a non-degrading Info
//! [`Fault`](crate::Fault) via [`take_eviction_fault`]
//! (MemoryFactsStore::take_eviction_fault) — which the daemon surfaces
//! through `/healthz`, *not* the assessment report: report bytes must
//! stay a function of the assessed code alone, never of how much other
//! traffic the store has absorbed.

use crate::cache::{CacheLookup, FactsCache, FactsStore};
use crate::facts::FileFacts;
use crate::fault::{Fault, FaultCause, FaultPhase, FaultSeverity, Recovery};
use adsafe_lang::FileId;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// One resident entry: the serialised facts, whether it still needs
/// writing back to the disk cache, and when it was last used (a
/// logical-clock stamp driving LRU eviction; atomic so hits under the
/// read lock can refresh recency without write-lock contention).
#[derive(Debug)]
struct Entry {
    path: String,
    json: String,
    dirty: bool,
    last_use: AtomicU64,
}

/// A thread-safe facts store resident in process memory, with optional
/// lazy write-back to an on-disk [`FactsCache`] and an optional LRU
/// byte budget.
#[derive(Debug)]
pub struct MemoryFactsStore {
    entries: RwLock<HashMap<u64, Entry>>,
    disk: Option<FactsCache>,
    /// Total serialised-JSON bytes resident, maintained incrementally
    /// (always mutated under the `entries` write lock, so it tracks the
    /// map exactly). Backs the `store.facts.bytes` gauge and
    /// `/healthz`, making resident growth visible before it hurts.
    bytes: AtomicU64,
    /// Byte budget; `0` means unbounded. Crossing it evicts LRU
    /// entries until `bytes <= budget`.
    budget: u64,
    /// Logical clock stamping entry use; monotonic per store.
    clock: AtomicU64,
    /// Entries evicted since the last [`take_eviction_fault`]
    /// (Self::take_eviction_fault) drain.
    evicted_entries: AtomicU64,
    /// Bytes released since the last drain.
    evicted_bytes: AtomicU64,
}

impl MemoryFactsStore {
    /// Creates a store, backed by the disk cache at `dir` when given
    /// (misses fall through, dirty entries flush there on
    /// [`flush`](Self::flush)); memory-only otherwise. Unbounded — see
    /// [`open_budgeted`](Self::open_budgeted) for the LRU byte budget.
    pub fn open(dir: Option<&Path>) -> MemoryFactsStore {
        Self::open_budgeted(dir, 0)
    }

    /// [`open`](Self::open) with an LRU byte budget: whenever resident
    /// serialised bytes exceed `budget`, least-recently-used entries
    /// are evicted (dirty ones demoted to disk first) until the store
    /// is back under. `0` means unbounded.
    pub fn open_budgeted(dir: Option<&Path>, budget: u64) -> MemoryFactsStore {
        MemoryFactsStore {
            entries: RwLock::new(HashMap::new()),
            disk: dir.map(FactsCache::open),
            bytes: AtomicU64::new(0),
            budget,
            clock: AtomicU64::new(0),
            evicted_entries: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// The configured byte budget (`0` = unbounded).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Next logical-clock stamp for an entry use.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Evicts least-recently-used entries until resident bytes are
    /// within budget, never evicting `keep` (the entry whose insertion
    /// triggered the sweep — evicting it would thrash the very request
    /// being served). Dirty victims are demoted to the disk backing
    /// (best effort) so warm-start data survives the pressure. Callers
    /// hold the `entries` write lock.
    fn enforce_budget(&self, map: &mut HashMap<u64, Entry>, keep: u64) {
        if self.budget == 0 {
            return;
        }
        let mut evicted = 0u64;
        let mut released = 0u64;
        while self.bytes.load(Ordering::Relaxed) > self.budget && map.len() > 1 {
            let victim = map
                .iter()
                .filter(|(h, _)| **h != keep)
                .min_by_key(|(_, e)| e.last_use.load(Ordering::Relaxed))
                .map(|(h, _)| *h);
            let Some(h) = victim else { break };
            let Some(e) = map.remove(&h) else { break };
            if e.dirty {
                if let Some(d) = &self.disk {
                    let _ = d.store_raw(h, &e.json);
                }
            }
            released += e.json.len() as u64;
            self.bytes.fetch_sub(e.json.len() as u64, Ordering::Relaxed);
            evicted += 1;
        }
        if evicted > 0 {
            self.evicted_entries.fetch_add(evicted, Ordering::Relaxed);
            self.evicted_bytes.fetch_add(released, Ordering::Relaxed);
            adsafe_trace::counter("store.evictions").add(evicted);
            adsafe_trace::counter("store.evicted_bytes").add(released);
        }
    }

    /// Drains the eviction tally accumulated since the last call into
    /// a non-degrading Info [`Fault`], or `None` when nothing was
    /// evicted. The daemon routes this to its observability surfaces
    /// (`/healthz`, the fault gauge) — deliberately *not* into the
    /// assessment report, whose bytes must depend only on the assessed
    /// corpus.
    pub fn take_eviction_fault(&self) -> Option<Fault> {
        let entries = self.evicted_entries.swap(0, Ordering::Relaxed);
        let bytes = self.evicted_bytes.swap(0, Ordering::Relaxed);
        if entries == 0 {
            return None;
        }
        Some(Fault {
            phase: FaultPhase::Ingest,
            path: "facts-store".to_string(),
            severity: FaultSeverity::Info,
            cause: FaultCause::StoreEvicted { entries: entries as usize, bytes },
            recovery: Recovery::Noted,
            run_id: String::new(),
        })
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.read().expect("facts store poisoned").len()
    }

    /// Total serialised bytes resident in memory.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Re-points the size gauges at the current entry count and byte
    /// total. Callers hold the write lock, so the pair is coherent.
    fn set_gauges(&self, entries: usize) {
        adsafe_trace::gauge("store.entries").set(entries as u64);
        adsafe_trace::gauge("store.facts.entries").set(entries as u64);
        adsafe_trace::gauge("store.facts.bytes").set(self.bytes.load(Ordering::Relaxed));
    }

    /// Adjusts the byte total for an insert that displaced `old`.
    fn account_insert(&self, inserted: usize, displaced: Option<usize>) {
        let delta = inserted as i64 - displaced.unwrap_or(0) as i64;
        if delta >= 0 {
            self.bytes.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.bytes.fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops the resident (and backing disk) entries for every path in
    /// `paths`; returns how many resident entries were dropped.
    pub fn invalidate_paths(&self, paths: &[String]) -> usize {
        let mut map = self.entries.write().expect("facts store poisoned");
        let victims: Vec<u64> = map
            .iter()
            .filter(|(_, e)| paths.contains(&e.path))
            .map(|(h, _)| *h)
            .collect();
        for h in &victims {
            if let Some(e) = map.remove(h) {
                self.bytes.fetch_sub(e.json.len() as u64, Ordering::Relaxed);
            }
            if let Some(d) = &self.disk {
                d.evict(*h);
            }
        }
        adsafe_trace::counter("store.invalidated").add(victims.len() as u64);
        self.set_gauges(map.len());
        victims.len()
    }

    /// Drops every resident entry (disk entries are left for the
    /// fingerprint machinery); returns how many were dropped.
    pub fn invalidate_all(&self) -> usize {
        let mut map = self.entries.write().expect("facts store poisoned");
        let n = map.len();
        for (h, _) in map.drain() {
            if let Some(d) = &self.disk {
                d.evict(h);
            }
        }
        self.bytes.store(0, Ordering::Relaxed);
        adsafe_trace::counter("store.invalidated").add(n as u64);
        self.set_gauges(0);
        n
    }

    /// Writes every dirty entry back to the backing disk cache (no-op
    /// when memory-only); returns how many entries were written. The
    /// server calls this while draining on graceful shutdown.
    pub fn flush(&self) -> usize {
        let Some(disk) = &self.disk else { return 0 };
        let mut map = self.entries.write().expect("facts store poisoned");
        let mut written = 0;
        for (hash, entry) in map.iter_mut() {
            if entry.dirty && disk.store_raw(*hash, &entry.json) {
                entry.dirty = false;
                written += 1;
            }
        }
        written
    }
}

impl FactsStore for MemoryFactsStore {
    fn load(&self, hash: u64, file: FileId) -> CacheLookup {
        let resident = {
            let map = self.entries.read().expect("facts store poisoned");
            map.get(&hash).map(|e| {
                // Refresh recency under the read lock: a hit must not
                // leave the entry looking LRU-stale.
                e.last_use.store(self.tick(), Ordering::Relaxed);
                e.json.clone()
            })
        };
        if let Some(json) = resident {
            return match FileFacts::from_json(&json, file) {
                Ok(facts) => {
                    adsafe_trace::counter("cache.hits").incr();
                    adsafe_trace::counter("store.memory_hits").incr();
                    CacheLookup::Hit(facts)
                }
                Err(detail) => {
                    // Evict the unusable entry; the cold path rebuilds it.
                    adsafe_trace::counter("cache.corrupt").incr();
                    let mut map = self.entries.write().expect("facts store poisoned");
                    if let Some(e) = map.remove(&hash) {
                        self.bytes.fetch_sub(e.json.len() as u64, Ordering::Relaxed);
                    }
                    self.set_gauges(map.len());
                    CacheLookup::Corrupt(detail)
                }
            };
        }
        match &self.disk {
            // The disk cache emits its own hit/miss/corrupt counters.
            Some(disk) => match disk.load(hash, file) {
                CacheLookup::Hit(facts) => {
                    let mut map = self.entries.write().expect("facts store poisoned");
                    let json = facts.to_json();
                    let inserted = json.len();
                    let entry = Entry {
                        path: String::new(),
                        json,
                        dirty: false,
                        last_use: AtomicU64::new(self.tick()),
                    };
                    let old = map.insert(hash, entry).map(|e| e.json.len());
                    self.account_insert(inserted, old);
                    self.enforce_budget(&mut map, hash);
                    self.set_gauges(map.len());
                    CacheLookup::Hit(facts)
                }
                other => other,
            },
            None => {
                adsafe_trace::counter("cache.misses").incr();
                CacheLookup::Miss
            }
        }
    }

    fn store_entry(&self, hash: u64, path: &str, facts: &FileFacts) {
        let mut map = self.entries.write().expect("facts store poisoned");
        let json = facts.to_json();
        let inserted = json.len();
        let entry = Entry {
            path: path.to_string(),
            json,
            dirty: true,
            last_use: AtomicU64::new(self.tick()),
        };
        let old = map.insert(hash, entry).map(|e| e.json.len());
        self.account_insert(inserted, old);
        self.enforce_budget(&mut map, hash);
        adsafe_trace::counter("cache.stores").incr();
        self.set_gauges(map.len());
    }

    fn disabled_detail(&self) -> Option<String> {
        self.disk.as_ref().and_then(FactsStore::disabled_detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::content_hash;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "adsafe-store-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_round_trip_and_invalidate() {
        let store = MemoryFactsStore::open(None);
        let facts = FileFacts { recovery_count: 3, ..FileFacts::default() };
        let h = content_hash("m/a.cc", "text");
        store.store_entry(h, "m/a.cc", &facts);
        assert_eq!(store.len(), 1);
        match store.load(h, FileId(7)) {
            CacheLookup::Hit(f) => assert_eq!(f, facts),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(store.load(h ^ 1, FileId(0)), CacheLookup::Miss));
        assert_eq!(store.invalidate_paths(&["m/other.cc".to_string()]), 0);
        assert_eq!(store.invalidate_paths(&["m/a.cc".to_string()]), 1);
        assert!(store.is_empty());
        assert!(matches!(store.load(h, FileId(0)), CacheLookup::Miss));
    }

    #[test]
    fn byte_accounting_tracks_inserts_and_drops() {
        let store = MemoryFactsStore::open(None);
        assert_eq!(store.bytes(), 0);
        let a = FileFacts { recovery_count: 1, ..FileFacts::default() };
        let b = FileFacts { recovery_count: 22, ..FileFacts::default() };
        let h = content_hash("m/a.cc", "x");
        store.store_entry(h, "m/a.cc", &a);
        assert_eq!(store.bytes(), a.to_json().len() as u64);
        // Replacing an entry charges the delta, not the sum.
        store.store_entry(h, "m/a.cc", &b);
        assert_eq!(store.bytes(), b.to_json().len() as u64);
        let h2 = content_hash("m/b.cc", "y");
        store.store_entry(h2, "m/b.cc", &a);
        assert_eq!(store.bytes(), (a.to_json().len() + b.to_json().len()) as u64);
        store.invalidate_paths(&["m/a.cc".to_string()]);
        assert_eq!(store.bytes(), a.to_json().len() as u64);
        store.invalidate_all();
        assert_eq!(store.bytes(), 0);
    }

    #[test]
    fn flush_writes_back_and_disk_promotes() {
        let dir = temp_dir("flush");
        let facts = FileFacts::default();
        let h = content_hash("m/b.cc", "text");
        {
            let store = MemoryFactsStore::open(Some(&dir));
            store.store_entry(h, "m/b.cc", &facts);
            // Lazy write-back: nothing on disk until flush.
            assert!(matches!(FactsCache::open(&dir).load(h, FileId(0)), CacheLookup::Miss));
            assert_eq!(store.flush(), 1);
            assert_eq!(store.flush(), 0, "clean entries are not rewritten");
        }
        // A fresh store (fresh process) promotes the disk entry.
        let store2 = MemoryFactsStore::open(Some(&dir));
        assert!(matches!(store2.load(h, FileId(2)), CacheLookup::Hit(_)));
        assert_eq!(store2.len(), 1, "disk hit was promoted into memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_evicts_the_disk_entry_too() {
        let dir = temp_dir("evict");
        let store = MemoryFactsStore::open(Some(&dir));
        let h = content_hash("m/c.cc", "text");
        store.store_entry(h, "m/c.cc", &FileFacts::default());
        store.flush();
        assert_eq!(store.invalidate_paths(&["m/c.cc".to_string()]), 1);
        assert!(
            matches!(store.load(h, FileId(0)), CacheLookup::Miss),
            "neither memory nor disk may resurrect an invalidated path"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        let facts = FileFacts { recovery_count: 9, ..FileFacts::default() };
        let entry_len = facts.to_json().len() as u64;
        // Room for exactly two entries.
        let store = MemoryFactsStore::open_budgeted(None, 2 * entry_len);
        let (ha, hb, hc) = (
            content_hash("m/a.cc", "a"),
            content_hash("m/b.cc", "b"),
            content_hash("m/c.cc", "c"),
        );
        store.store_entry(ha, "m/a.cc", &facts);
        store.store_entry(hb, "m/b.cc", &facts);
        assert_eq!(store.bytes(), 2 * entry_len);
        assert!(store.take_eviction_fault().is_none(), "within budget: no eviction");
        // Touch `a` so `b` is the LRU entry when `c` forces a sweep.
        assert!(matches!(store.load(ha, FileId(0)), CacheLookup::Hit(_)));
        store.store_entry(hc, "m/c.cc", &facts);
        assert!(store.bytes() <= store.budget(), "sweep must restore the watermark");
        assert!(matches!(store.load(hb, FileId(0)), CacheLookup::Miss), "LRU entry evicted");
        assert!(matches!(store.load(ha, FileId(0)), CacheLookup::Hit(_)), "recently used survives");
        assert!(matches!(store.load(hc, FileId(0)), CacheLookup::Hit(_)), "newest never evicted");
        let fault = store.take_eviction_fault().expect("eviction recorded");
        assert_eq!(fault.severity, FaultSeverity::Info);
        assert_eq!(fault.recovery, Recovery::Noted);
        assert!(matches!(fault.cause, FaultCause::StoreEvicted { entries: 1, .. }));
        assert!(store.take_eviction_fault().is_none(), "tally drains on take");
    }

    #[test]
    fn evicted_dirty_entries_demote_to_the_disk_backing() {
        let dir = temp_dir("demote");
        let facts = FileFacts { recovery_count: 4, ..FileFacts::default() };
        let entry_len = facts.to_json().len() as u64;
        let store = MemoryFactsStore::open_budgeted(Some(&dir), entry_len);
        let (ha, hb) = (content_hash("m/a.cc", "a"), content_hash("m/b.cc", "b"));
        store.store_entry(ha, "m/a.cc", &facts);
        store.store_entry(hb, "m/b.cc", &facts); // evicts dirty `a`
        assert!(store.bytes() <= entry_len);
        // The demoted entry is gone from memory but survives on disk:
        // loading it promotes it back instead of a cold miss.
        assert!(matches!(store.load(ha, FileId(1)), CacheLookup::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_single_oversized_entry_is_kept() {
        let facts = FileFacts { recovery_count: 7, ..FileFacts::default() };
        let store = MemoryFactsStore::open_budgeted(None, 1);
        let h = content_hash("m/big.cc", "x");
        store.store_entry(h, "m/big.cc", &facts);
        // Evicting the only entry would thrash the request being
        // served; the budget is enforced as soon as a second arrives.
        assert!(matches!(store.load(h, FileId(0)), CacheLookup::Hit(_)));
    }

    #[test]
    fn disabled_backing_dir_is_surfaced() {
        let path = temp_dir("disabled");
        std::fs::write(&path, "not a directory").unwrap();
        let store = MemoryFactsStore::open(Some(&path));
        assert!(store.disabled_detail().is_some());
        // Memory side still works.
        let h = content_hash("m/d.cc", "x");
        store.store_entry(h, "m/d.cc", &FileFacts::default());
        assert!(matches!(store.load(h, FileId(0)), CacheLookup::Hit(_)));
        let _ = std::fs::remove_file(&path);
    }
}
