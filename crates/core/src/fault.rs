//! Fault taxonomy, fault log, and the deterministic failpoint registry.
//!
//! An assessment run over an industrial code base must never abort
//! because one input file, one buggy rule, or one runaway analysis
//! phase misbehaves — ISO 26262's own freedom-from-interference
//! principle, applied to the assessor itself. Everything that goes
//! wrong during a run is captured as a [`Fault`]: which phase, which
//! path (file, check, module, or kernel), how bad it was, what caused
//! it, and what the pipeline did to keep going. The complete
//! [`FaultLog`] rides on the report so a degraded assessment is never
//! mistaken for a clean one.
//!
//! The [`failpoints`] registry is the deterministic fault-injection
//! side: tests arm named points with a panic or a delay, and pipeline
//! code calls [`failpoints::hit`] at those points. The registry is
//! thread-local, so concurrently running tests cannot interfere.

use std::fmt;

/// Pipeline phase in which a fault occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultPhase {
    /// File ingestion (before any analysis).
    Ingest,
    /// Parsing a source file.
    Parse,
    /// Running a checker rule.
    Checks,
    /// Computing module metrics.
    Metrics,
    /// Emulated GPU execution.
    Gpu,
    /// Evidence assembly and compliance judgement.
    Assess,
}

impl FaultPhase {
    /// Human-readable phase name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPhase::Ingest => "ingest",
            FaultPhase::Parse => "parse",
            FaultPhase::Checks => "checks",
            FaultPhase::Metrics => "metrics",
            FaultPhase::Gpu => "gpu",
            FaultPhase::Assess => "assess",
        }
    }
}

/// How much evidence the fault cost. Ordered: later variants are worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSeverity {
    /// No evidence lost; recorded for the audit trail.
    Info,
    /// A phase ran past its wall-clock budget *during* an item (the
    /// between-item deadline could not cut it short); all evidence is
    /// complete, but the run missed its timing contract.
    Timeout,
    /// Evidence recovered through a lower tier of the ladder.
    Degraded,
    /// Evidence from this item is gone, the rest of the run is intact.
    Lost,
    /// A whole phase fell back to defaults; treat the report as suspect.
    Critical,
}

impl FaultSeverity {
    /// Human-readable severity name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSeverity::Info => "info",
            FaultSeverity::Timeout => "timeout",
            FaultSeverity::Degraded => "degraded",
            FaultSeverity::Lost => "lost",
            FaultSeverity::Critical => "critical",
        }
    }
}

/// Root cause of a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCause {
    /// A component panicked; payload is the panic message.
    Panic(String),
    /// The parser completed only by skipping opaque regions.
    ParseResync {
        /// Number of opaque regions the parser resynchronised over.
        regions: usize,
    },
    /// Input bytes were not valid UTF-8 and were lossily replaced.
    NonUtf8 {
        /// Number of replacement characters introduced.
        replaced: usize,
    },
    /// A phase ran past its wall-clock deadline.
    DeadlineExceeded {
        /// The configured budget, in milliseconds.
        budget_ms: u64,
    },
    /// A phase finished past its budget without ever being cut short:
    /// the overrun happened inside a single slow item, where the
    /// between-item deadline check cannot intervene.
    DeadlineOverrun {
        /// The configured budget, in milliseconds.
        budget_ms: u64,
        /// What the phase actually took, in milliseconds.
        actual_ms: u64,
    },
    /// An execution budget (steps, phases) ran out.
    BudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
    /// A GPU thread never reached the barrier its block was waiting on.
    BarrierDeadlock {
        /// The phase index at which the deadlock was declared.
        phase: u64,
    },
    /// An on-disk incremental-cache entry was unreadable or failed
    /// validation; the file took the cold path (full re-analysis), so
    /// no evidence was lost.
    CacheCorrupt {
        /// Why the entry was rejected.
        detail: String,
    },
    /// A fault injected through the failpoint registry.
    Injected(String),
    /// A ledger line was torn or unparseable and was skipped; the run
    /// itself is unaffected (no evidence involved at all).
    LedgerTorn {
        /// Why the line was rejected.
        detail: String,
    },
    /// A rule-pack declaration failed to load (parse error, type
    /// error, or id collision) and was skipped; the remaining rules in
    /// the pack still run, and no native evidence is affected.
    RulePackInvalid {
        /// 1-based line in the pack file (0 when not line-anchored).
        line: u32,
        /// Why the declaration was rejected.
        detail: String,
    },
    /// The resident facts store crossed its byte budget and evicted
    /// least-recently-used entries. No evidence is lost — evicted files
    /// re-analyse from source (or promote back from disk) on their next
    /// use — so this never degrades a report; it is the audit trail of
    /// graceful degradation under memory pressure.
    StoreEvicted {
        /// Entries dropped by this eviction sweep.
        entries: usize,
        /// Serialised bytes released.
        bytes: u64,
    },
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::Panic(msg) => write!(f, "panic: {msg}"),
            FaultCause::ParseResync { regions } => {
                write!(f, "parser resynchronised over {regions} opaque region(s)")
            }
            FaultCause::NonUtf8 { replaced } => {
                write!(f, "invalid UTF-8: {replaced} byte sequence(s) replaced")
            }
            FaultCause::DeadlineExceeded { budget_ms } => {
                write!(f, "phase deadline of {budget_ms} ms exceeded")
            }
            FaultCause::DeadlineOverrun { budget_ms, actual_ms } => {
                write!(f, "phase took {actual_ms} ms against a budget of {budget_ms} ms")
            }
            FaultCause::BudgetExhausted { budget } => {
                write!(f, "execution budget of {budget} exhausted")
            }
            FaultCause::BarrierDeadlock { phase } => {
                write!(f, "barrier deadlock detected at phase {phase}")
            }
            FaultCause::CacheCorrupt { detail } => {
                write!(f, "corrupt cache entry ({detail}); re-analysed from source")
            }
            FaultCause::Injected(name) => write!(f, "injected fault at `{name}`"),
            FaultCause::LedgerTorn { detail } => {
                write!(f, "torn ledger line skipped ({detail})")
            }
            FaultCause::RulePackInvalid { line, detail } => {
                if *line == 0 {
                    write!(f, "rule pack invalid: {detail}")
                } else {
                    write!(f, "rule pack invalid at line {line}: {detail}")
                }
            }
            FaultCause::StoreEvicted { entries, bytes } => {
                write!(f, "facts store evicted {entries} entr(ies) ({bytes} bytes) at its byte budget")
            }
        }
    }
}

/// What the pipeline did to contain the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Recovery {
    /// Used the parser's error-tolerant resync parse (ladder tier 2).
    ResyncParse,
    /// Fell back to token-only metric estimation (ladder tier 3).
    TokenMetrics,
    /// Skipped the item (file, check, kernel) and continued.
    SkippedItem,
    /// Substituted a conservative default for the phase's output.
    FallbackDefault,
    /// Nothing could be salvaged for this item.
    Dropped,
    /// Recorded for accounting only; no evidence was affected.
    Noted,
}

impl Recovery {
    /// Human-readable recovery name.
    pub fn name(self) -> &'static str {
        match self {
            Recovery::ResyncParse => "resync-parse",
            Recovery::TokenMetrics => "token-metrics",
            Recovery::SkippedItem => "skipped",
            Recovery::FallbackDefault => "fallback-default",
            Recovery::Dropped => "dropped",
            Recovery::Noted => "noted",
        }
    }
}

/// One contained failure: where, how bad, why, and what happened next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Pipeline phase.
    pub phase: FaultPhase,
    /// The affected item: file path, check id, module or kernel name.
    pub path: String,
    /// Evidence impact.
    pub severity: FaultSeverity,
    /// Root cause.
    pub cause: FaultCause,
    /// Containment action taken.
    pub recovery: Recovery,
    /// Correlation key: the ID of the run that contained this fault.
    /// Empty when the run has no ledger identity (e.g. `--no-ledger`).
    pub run_id: String,
}

impl Fault {
    /// Renders the fault with its run-ID correlation key appended —
    /// the form the CLI fault summary prints. `Display` deliberately
    /// omits the run ID: it feeds the deterministic report, which must
    /// stay byte-identical across runs of the same corpus.
    pub fn correlated(&self) -> String {
        if self.run_id.is_empty() {
            self.to_string()
        } else {
            format!("{self} (run {})", self.run_id)
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} `{}`: {} → {}",
            self.severity.name(),
            self.phase.name(),
            self.path,
            self.cause,
            self.recovery.name()
        )
    }
}

/// Append-only record of every fault contained during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    faults: Vec<Fault>,
    run_id: String,
}

impl FaultLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the run ID stamped onto every fault pushed from now on
    /// (and retroactively onto faults already recorded without one).
    pub fn set_run_id(&mut self, run_id: &str) {
        self.run_id = run_id.to_string();
        for f in &mut self.faults {
            if f.run_id.is_empty() {
                f.run_id = self.run_id.clone();
            }
        }
    }

    /// The run ID faults are stamped with (empty if none was set).
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Records a fault (and counts it in the `faults.<phase>` metric).
    pub fn push(&mut self, mut fault: Fault) {
        adsafe_trace::counter(&format!("faults.{}", fault.phase.name())).incr();
        if fault.run_id.is_empty() {
            fault.run_id = self.run_id.clone();
        }
        self.faults.push(fault);
    }

    /// All faults, in the order they were contained.
    pub fn as_slice(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the run was fault-free.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates the faults.
    pub fn iter(&self) -> impl Iterator<Item = &Fault> {
        self.faults.iter()
    }

    /// The worst severity seen, if any fault was recorded.
    pub fn worst(&self) -> Option<FaultSeverity> {
        self.faults.iter().map(|f| f.severity).max()
    }

    /// Fault counts per phase, ordered by phase.
    pub fn counts_by_phase(&self) -> Vec<(FaultPhase, usize)> {
        let mut counts: Vec<(FaultPhase, usize)> = Vec::new();
        for f in &self.faults {
            match counts.iter_mut().find(|(p, _)| *p == f.phase) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.phase, 1)),
            }
        }
        counts.sort_by_key(|(p, _)| *p);
        counts
    }

    /// Whether any fault cost evidence (severity ≥ degraded).
    pub fn degrades_report(&self) -> bool {
        self.faults.iter().any(|f| f.severity >= FaultSeverity::Degraded)
    }
}

impl<'a> IntoIterator for &'a FaultLog {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Deterministic fault injection: named points in pipeline code that
/// tests can arm with a panic or a delay.
///
/// The registry is **thread-local**: arming a point affects only the
/// current thread, so `cargo test`'s parallel test threads cannot see
/// each other's injections. Assessment runs execute on the calling
/// thread, which is what makes this sound.
pub mod failpoints {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::time::Duration;

    /// What an armed failpoint does when hit.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Action {
        /// Panic with the given message.
        Panic(String),
        /// Sleep for the given duration (for deadline tests).
        Delay(Duration),
    }

    thread_local! {
        static REGISTRY: RefCell<HashMap<String, Action>> = RefCell::new(HashMap::new());
    }

    /// Arms `name` with `action` on this thread.
    pub fn arm(name: &str, action: Action) {
        REGISTRY.with(|r| r.borrow_mut().insert(name.to_string(), action));
    }

    /// Disarms `name` on this thread.
    pub fn clear(name: &str) {
        REGISTRY.with(|r| r.borrow_mut().remove(name));
    }

    /// Disarms every failpoint on this thread.
    pub fn clear_all() {
        REGISTRY.with(|r| r.borrow_mut().clear());
    }

    /// Number of armed failpoints on this thread.
    pub fn armed() -> usize {
        REGISTRY.with(|r| r.borrow().len())
    }

    /// Fires `name` if armed: panics or sleeps according to its action.
    /// A `Panic` action disarms itself first so recovery paths that
    /// retry the same point do not loop forever.
    pub fn hit(name: &str) {
        let action = REGISTRY.with(|r| {
            let mut reg = r.borrow_mut();
            match reg.get(name).cloned() {
                Some(Action::Panic(msg)) => {
                    reg.remove(name);
                    Some(Action::Panic(msg))
                }
                other => other,
            }
        });
        match action {
            Some(Action::Panic(msg)) => panic!("failpoint `{name}`: {msg}"),
            Some(Action::Delay(d)) => std::thread::sleep(d),
            None => {}
        }
    }

    /// RAII guard: arms on construction, disarms on drop (even if the
    /// test body panics).
    #[derive(Debug)]
    pub struct Armed {
        name: String,
    }

    impl Armed {
        /// Arms `name` with `action`, returning the guard.
        pub fn new(name: &str, action: Action) -> Self {
            arm(name, action);
            Armed { name: name.to_string() }
        }
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            clear(&self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    fn fault(phase: FaultPhase, sev: FaultSeverity) -> Fault {
        Fault {
            phase,
            path: "x".into(),
            severity: sev,
            cause: FaultCause::Panic("boom".into()),
            recovery: Recovery::SkippedItem,
            run_id: String::new(),
        }
    }

    #[test]
    fn severity_is_ordered() {
        assert!(FaultSeverity::Info < FaultSeverity::Degraded);
        assert!(FaultSeverity::Degraded < FaultSeverity::Lost);
        assert!(FaultSeverity::Lost < FaultSeverity::Critical);
    }

    #[test]
    fn log_aggregates() {
        let mut log = FaultLog::new();
        assert!(log.is_empty());
        assert_eq!(log.worst(), None);
        log.push(fault(FaultPhase::Parse, FaultSeverity::Degraded));
        log.push(fault(FaultPhase::Parse, FaultSeverity::Lost));
        log.push(fault(FaultPhase::Checks, FaultSeverity::Info));
        assert_eq!(log.len(), 3);
        assert_eq!(log.worst(), Some(FaultSeverity::Lost));
        assert_eq!(
            log.counts_by_phase(),
            vec![(FaultPhase::Parse, 2), (FaultPhase::Checks, 1)]
        );
        assert!(log.degrades_report());
    }

    #[test]
    fn info_only_log_does_not_degrade() {
        let mut log = FaultLog::new();
        log.push(fault(FaultPhase::Ingest, FaultSeverity::Info));
        assert!(!log.degrades_report());
    }

    #[test]
    fn fault_renders_all_fields() {
        let f = fault(FaultPhase::Gpu, FaultSeverity::Critical);
        let s = f.to_string();
        assert!(s.contains("critical"), "{s}");
        assert!(s.contains("gpu"), "{s}");
        assert!(s.contains("boom"), "{s}");
        assert!(s.contains("skipped"), "{s}");
    }

    #[test]
    fn run_id_is_stamped_and_rendered() {
        let mut log = FaultLog::new();
        log.push(fault(FaultPhase::Parse, FaultSeverity::Info));
        log.set_run_id("r000004-1a2b3c4d");
        log.push(fault(FaultPhase::Checks, FaultSeverity::Info));
        // Retroactive stamping covers faults recorded before the ID
        // was known, and new pushes inherit it.
        assert!(log.iter().all(|f| f.run_id == "r000004-1a2b3c4d"));
        let rendered = log.as_slice()[1].correlated();
        assert!(rendered.contains("(run r000004-1a2b3c4d)"), "{rendered}");
        // Display stays run-free (it feeds the deterministic report);
        // correlated() degrades to Display when no ID was set.
        assert!(!log.as_slice()[1].to_string().contains("(run"));
        let bare = fault(FaultPhase::Parse, FaultSeverity::Info);
        assert_eq!(bare.correlated(), bare.to_string());
    }

    #[test]
    fn failpoint_panic_fires_once() {
        failpoints::arm("test::once", failpoints::Action::Panic("injected".into()));
        let r = catch_unwind(AssertUnwindSafe(|| failpoints::hit("test::once")));
        let msg = panic_message(&*r.unwrap_err());
        assert!(msg.contains("injected"), "{msg}");
        // Self-disarmed: second hit is a no-op.
        failpoints::hit("test::once");
    }

    #[test]
    fn failpoint_delay_and_guard() {
        {
            let _g = failpoints::Armed::new(
                "test::slow",
                failpoints::Action::Delay(Duration::from_millis(5)),
            );
            let t0 = std::time::Instant::now();
            failpoints::hit("test::slow");
            assert!(t0.elapsed() >= Duration::from_millis(5));
        }
        // Guard dropped → disarmed.
        let t0 = std::time::Instant::now();
        failpoints::hit("test::slow");
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn panic_message_downcasts() {
        let r = catch_unwind(|| panic!("static str"));
        assert_eq!(panic_message(&*r.unwrap_err()), "static str");
        let r = catch_unwind(|| panic!("formatted {}", 42));
        assert_eq!(panic_message(&*r.unwrap_err()), "formatted 42");
    }
}
