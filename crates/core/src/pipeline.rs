//! The assessment pipeline: source files in, compliance report out.
//!
//! This is the paper's methodology as an API: parse the whole code base,
//! run metrics and checkers, assemble [`Evidence`], judge it against ISO
//! 26262 Part 6 at a target ASIL, and synthesise the observations.
//!
//! The pipeline is *fault-isolated*: every file, every checker rule, and
//! every phase runs under panic containment, and anything that goes
//! wrong is recorded in the report's [`FaultLog`] instead of aborting
//! the run. Files that cannot be parsed cleanly descend a three-tier
//! degradation ladder:
//!
//! 1. **Full parse** — the normal path; no fault recorded.
//! 2. **Resync parse** — the error-tolerant parser skipped opaque
//!    regions (`recovery_count > 0`); the file's evidence is complete
//!    but approximate, recorded as a `ParseResync` fault.
//! 3. **Token-only metrics** — the parser panicked; NLOC and a
//!    cyclomatic estimate are recovered from the token stream alone and
//!    absorbed into the owning module's metrics.
//!
//! A report produced through any tier below 1 carries
//! [`AssessmentReport::degraded`]` == true`.
//!
//! ## Parallelism and incrementality
//!
//! The parse and metrics phases parallelise per file / per module, and
//! the checks phase shards per (rule × file), on the work-stealing
//! [`Pool`] ([`AssessmentOptions::jobs`]; the default of 1 runs
//! everything inline on the caller thread). With
//! [`AssessmentOptions::cache_dir`] set, per-file
//! [`FileFacts`](crate::facts::FileFacts) records are reused across
//! runs keyed by content hash, skipping parse, file-local checks, and
//! metrics extraction for unchanged files. Reports are byte-identical
//! across worker counts and cache states by construction: results merge
//! in stable file order before the canonical diagnostic sort, and every
//! cross-file quantity is recomputed from facts on every run (see
//! [`crate::facts`]).

use crate::cache::{content_hash, CacheLookup, FactsCache, FactsStore};
use crate::facts::{self, FactsRecord, FileFacts};
use crate::store::MemoryFactsStore;
use crate::fault::{
    failpoints, panic_message, Fault, FaultCause, FaultLog, FaultPhase, FaultSeverity, Recovery,
};
use adsafe_checkers::{
    default_checks, run_one_check, CheckContext, CheckScope, Diagnostic, FileEntry,
};
use adsafe_iso26262::{
    assess, observations, Asil, ComplianceReport, Evidence, GpuEvidence, Observation,
};
use adsafe_lang::{CallGraph, FileId, ParsedFile, SourceMap};
use adsafe_metrics::{module_from_estimates, token_estimate, ModuleMetrics, TokenEstimate};
use adsafe_pool::Pool;
use adsafe_trace::TraceSummary;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Wall-clock budgets for the analysis phases.
///
/// A phase that overruns its deadline is cut short between items; the
/// items not reached fall down the degradation ladder (parse, metrics)
/// or are skipped (checks), each recorded as a fault. `None` disables
/// the deadline — the default, since assessment is usually batch work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Deadline applied to each phase (parse, checks, metrics)
    /// independently.
    pub phase_deadline: Option<Duration>,
}

impl Budgets {
    fn budget_ms(&self) -> u64 {
        self.phase_deadline.map_or(0, |d| d.as_millis() as u64)
    }
}

/// One phase's deadline, shareable across workers: a single phase-start
/// [`Instant`] (so every worker measures from the same origin) plus an
/// atomic first-tripper flag, so the `DeadlineExceeded` fault is
/// recorded exactly once per phase no matter how many workers observe
/// the overrun concurrently.
#[derive(Debug)]
struct PhaseDeadline {
    start: Instant,
    limit: Option<Duration>,
    tripped: AtomicBool,
}

impl PhaseDeadline {
    fn new(budgets: &Budgets) -> Self {
        PhaseDeadline {
            start: Instant::now(),
            limit: budgets.phase_deadline,
            tripped: AtomicBool::new(false),
        }
    }

    fn exceeded(&self) -> bool {
        self.limit.is_some_and(|d| self.start.elapsed() > d)
    }

    /// True for exactly one caller: the one that gets to record the
    /// phase's `DeadlineExceeded` fault.
    fn trip_once(&self) -> bool {
        self.exceeded()
            && self
                .tripped
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
    }
}

/// Inputs the analyser cannot derive from source (supplied by the
/// integrator, as in a real assessment).
#[derive(Debug, Clone)]
pub struct AssessmentOptions {
    /// Target ASIL (the paper uses ASIL-D for the whole AD pipeline).
    pub asil: Asil,
    /// Whether the deployment defines scheduling properties.
    pub has_scheduling_policy: bool,
    /// Structural coverage results to fold in, if measured.
    pub coverage: Option<adsafe_iso26262::CoverageEvidence>,
    /// Wall-clock budgets for the analysis phases.
    pub budgets: Budgets,
    /// Worker threads for the parse/checks/metrics phases. `1` (the
    /// default) runs everything inline on the caller thread — exactly
    /// the serial pipeline; `0` means one worker per available core.
    pub jobs: usize,
    /// Directory for the incremental facts cache. `None` (the default)
    /// disables caching. Ignored when [`store`](Self::store) is set.
    pub cache_dir: Option<PathBuf>,
    /// A resident in-memory facts store shared across runs (the
    /// `adsafe serve` daemon's warm state). Takes precedence over
    /// [`cache_dir`](Self::cache_dir); the store decides its own disk
    /// backing and write-back policy.
    pub store: Option<std::sync::Arc<MemoryFactsStore>>,
    /// Ledger run ID for this assessment, threaded into the root span,
    /// every fault record, and the report. Empty (the default) means
    /// the run has no ledger identity; nothing references it.
    pub run_id: String,
    /// Query rules to evaluate alongside the native set. `None` (the
    /// default) skips the query pass entirely. Query diagnostics join
    /// the report but never the facts cache, and never feed compliance
    /// evidence (which counts native ids only).
    pub rules: Option<std::sync::Arc<adsafe_query::RulePack>>,
}

impl Default for AssessmentOptions {
    fn default() -> Self {
        AssessmentOptions {
            asil: Asil::D,
            has_scheduling_policy: false,
            coverage: None,
            budgets: Budgets::default(),
            jobs: 1,
            cache_dir: None,
            store: None,
            run_id: String::new(),
            rules: None,
        }
    }
}

/// The full output of one assessment run.
#[derive(Debug)]
pub struct AssessmentReport {
    /// Assembled quantitative evidence.
    pub evidence: Evidence,
    /// Per-topic verdicts for the three Part-6 tables.
    pub compliance: ComplianceReport,
    /// The fourteen synthesised observations.
    pub observations: Vec<Observation>,
    /// Per-module metrics (Figure 3's data).
    pub modules: Vec<ModuleMetrics>,
    /// Every diagnostic, sorted by check then position.
    pub diagnostics: Vec<Diagnostic>,
    /// Every fault contained during the run.
    pub faults: FaultLog,
    /// Whether any fault cost evidence: the report is still valid but
    /// rests on partially estimated or incomplete measurements.
    pub degraded: bool,
    /// Self-observability: per-phase wall time, slowest files and
    /// rules, counter deltas, and the raw span events of this run.
    pub trace: TraceSummary,
    /// The ledger run ID this report was produced under (empty when
    /// the run was not recorded).
    pub run_id: String,
}

impl AssessmentReport {
    /// Diagnostics of one check.
    pub fn diagnostics_for(&self, check_id: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.check_id == check_id).collect()
    }
}

/// One source file queued for assessment.
#[derive(Debug, Clone)]
struct RawFile {
    module: String,
    path: String,
    text: String,
}

/// Per-file result of the parse phase, produced by one (possibly
/// worker-side) task and merged on the caller thread in file order.
struct ParseOutcome {
    kind: ParseKind,
    faults: Vec<Fault>,
    estimate: Option<TokenEstimate>,
    hash: u64,
    cache_ok: bool,
}

enum ParseKind {
    /// Parsed this run; facts extracted, diagnostics pending.
    Fresh(Box<ParsedFile>, FileFacts),
    /// Served from the facts cache; diagnostics included.
    Cached(FileFacts),
    /// Tier 3: token-only estimate (carried in `estimate`).
    Estimated,
    /// Tier 4: nothing recoverable.
    Dropped,
}

/// A file that survived parsing (fresh or cached) in pipeline position.
struct LoadedFile {
    file_idx: usize,
    id: FileId,
    facts: FileFacts,
    parsed: Option<Box<ParsedFile>>, // `Some` iff fresh
    hash: u64,
    cache_ok: bool,
}

/// One (rule × file) or macro-pass shard of the checks phase.
#[derive(Debug, Clone, Copy)]
enum ShardTask {
    /// `(check index, loaded-file index)`.
    Rule(usize, usize),
    /// Macro-naming pass over one loaded file.
    Macro(usize),
}

enum ShardOut {
    Rule(Result<Vec<Diagnostic>, adsafe_checkers::CheckFailure>),
    Macro(Vec<Diagnostic>),
}

/// The assessment driver. Add files, then [`Assessment::run`].
#[derive(Debug, Default)]
pub struct Assessment {
    files: Vec<RawFile>,
    ingest_faults: Vec<Fault>,
    options: AssessmentOptions,
}

impl Assessment {
    /// Creates an empty assessment with default options (ASIL-D).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the options.
    pub fn with_options(mut self, options: AssessmentOptions) -> Self {
        self.options = options;
        self
    }

    /// Adds one source file under a module.
    pub fn add_file(&mut self, module: &str, path: &str, text: &str) -> &mut Self {
        self.files.push(RawFile {
            module: module.to_string(),
            path: path.to_string(),
            text: text.to_string(),
        });
        self
    }

    /// Adds one source file from raw bytes. Invalid UTF-8 is replaced
    /// lossily and recorded as an ingest fault — the file still flows
    /// through the full ladder rather than being rejected.
    pub fn add_file_bytes(&mut self, module: &str, path: &str, bytes: &[u8]) -> &mut Self {
        let text = String::from_utf8_lossy(bytes);
        if let std::borrow::Cow::Owned(_) = text {
            let replaced = text.chars().filter(|&c| c == '\u{fffd}').count();
            self.ingest_faults.push(Fault {
                phase: FaultPhase::Ingest,
                path: path.to_string(),
                severity: FaultSeverity::Degraded,
                cause: FaultCause::NonUtf8 { replaced },
                recovery: Recovery::ResyncParse,
                run_id: String::new(),
            });
        }
        let owned = text.into_owned();
        self.add_file(module, path, &owned)
    }

    /// Records a fault observed before the pipeline ran (e.g. a torn
    /// ledger line noticed while reserving the run ID). The fault rides
    /// on the report exactly like an ingest fault.
    pub fn add_fault(&mut self, fault: Fault) -> &mut Self {
        self.ingest_faults.push(fault);
        self
    }

    /// Runs metrics, checkers, and the compliance engine with per-item
    /// panic containment. Never panics on any input; every contained
    /// failure is in the returned report's `faults`.
    ///
    /// The whole run executes under an `assessment.run` trace span with
    /// one `phase.*` span per pipeline phase and one `parse.file` span
    /// per input; the drained events become the report's
    /// [`AssessmentReport::trace`] summary. Worker-side spans are
    /// absorbed into the caller's buffer when `jobs > 1`.
    pub fn run(&self) -> AssessmentReport {
        let counters_before = adsafe_trace::counter_snapshot();
        let mem_before = adsafe_trace::alloc::phase_stats();
        let trace_mark = adsafe_trace::mark();
        let run_span = if self.options.run_id.is_empty() {
            adsafe_trace::span("assessment.run", "run")
        } else {
            adsafe_trace::span_with(
                "assessment.run",
                "run",
                vec![("run_id", self.options.run_id.clone())],
            )
        };

        let mut log = FaultLog::new();
        log.set_run_id(&self.options.run_id);
        for f in &self.ingest_faults {
            log.push(f.clone());
        }
        let budgets = self.options.budgets;
        let pool = Pool::new(self.options.jobs);
        adsafe_trace::counter("pool.workers").add(pool.workers() as u64);
        // Facts reuse: a shared resident store when the caller provides
        // one (the serve daemon), else a per-run disk cache.
        let disk_cache = match (&self.options.store, &self.options.cache_dir) {
            (None, Some(dir)) => Some(FactsCache::open(dir)),
            _ => None,
        };
        let cache: Option<&dyn FactsStore> = match &self.options.store {
            Some(s) => Some(s.as_ref()),
            None => disk_cache.as_ref().map(|c| c as &dyn FactsStore),
        };
        // A cache that could not be brought up (unwritable directory,
        // clobbered meta.json, …) is an accelerator loss, not an
        // evidence loss: note it and fall through to cold analysis.
        if let Some(detail) = cache.and_then(|c| c.disabled_detail()) {
            adsafe_trace::counter("cache.disabled").incr();
            log.push(Fault {
                phase: FaultPhase::Ingest,
                path: self
                    .options
                    .cache_dir
                    .as_deref()
                    .map_or_else(|| "facts-store".to_string(), |d| d.display().to_string()),
                severity: FaultSeverity::Info,
                cause: FaultCause::CacheCorrupt { detail },
                recovery: Recovery::Noted,
                run_id: String::new(),
            });
        }

        // Phase 1: parse, descending the ladder per file. File ids are
        // assigned serially (so they are identical run-to-run and
        // across worker counts); the per-file work fans out.
        let phase_span = adsafe_trace::span("phase.parse", "phase");
        let mut sm = SourceMap::new();
        let ids: Vec<FileId> =
            self.files.iter().map(|rf| sm.add_file(&rf.path, &rf.text)).collect();
        let sm = sm;
        let deadline = PhaseDeadline::new(&budgets);
        let outcomes = pool.map((0..self.files.len()).collect(), |_, i| {
            parse_one(&sm, ids[i], &self.files[i], &deadline, &budgets, cache)
        });

        let mut loaded: Vec<LoadedFile> = Vec::new();
        let mut estimates: Vec<(String, TokenEstimate)> = Vec::new();
        for (i, res) in outcomes.into_iter().enumerate() {
            match res {
                Ok(o) => {
                    for f in o.faults {
                        log.push(f);
                    }
                    if let Some(est) = o.estimate {
                        estimates.push((self.files[i].module.clone(), est));
                    }
                    let (facts, parsed) = match o.kind {
                        ParseKind::Fresh(p, facts) => (facts, Some(p)),
                        ParseKind::Cached(facts) => (facts, None),
                        ParseKind::Estimated | ParseKind::Dropped => continue,
                    };
                    loaded.push(LoadedFile {
                        file_idx: i,
                        id: ids[i],
                        facts,
                        parsed,
                        hash: o.hash,
                        cache_ok: o.cache_ok,
                    });
                }
                Err(payload) => {
                    // The task itself panicked outside its internal
                    // containment — treat as an unrecoverable file.
                    adsafe_trace::counter("parse.dropped.files").incr();
                    log.push(Fault {
                        phase: FaultPhase::Parse,
                        path: self.files[i].path.clone(),
                        severity: FaultSeverity::Lost,
                        cause: classify_panic(&panic_message(&*payload)),
                        recovery: Recovery::Dropped,
                        run_id: String::new(),
                    });
                }
            }
        }
        note_phase_overrun(&mut log, FaultPhase::Parse, deadline.start, &budgets);
        drop(phase_span);

        // Facts records in stable file order — the single source for
        // every cross-file assembly below, fresh and cached alike.
        let records: Vec<FactsRecord<'_>> = loaded
            .iter()
            .map(|l| (l.id, self.files[l.file_idx].module.as_str(), &l.facts))
            .collect();

        // Phase 2: checkers, sharded (rule × file) with per-shard
        // isolation. Rule gates (failpoints, deadline) run on the
        // caller thread first so a gated rule is skipped wholesale.
        let phase_span = adsafe_trace::span("phase.checks", "phase");
        // Native/query sub-phases are *always* emitted, pack or no
        // pack: the report's phase set must not depend on options, or
        // `adsafe trace-compare` would flag a missing phase instead of
        // a regression.
        let native_span = adsafe_trace::span("phase.checks.native", "phase");
        let graph = facts::call_graph(&records);
        let globals = facts::global_names(&records);
        let checks = default_checks();
        let deadline = PhaseDeadline::new(&budgets);
        let mut skipped: HashSet<&'static str> = HashSet::new();
        let mut deadline_cut = false;
        for c in &checks {
            if !deadline_cut && deadline.exceeded() {
                deadline_cut = true;
                log.push(Fault {
                    phase: FaultPhase::Checks,
                    path: c.id().to_string(),
                    severity: FaultSeverity::Degraded,
                    cause: FaultCause::DeadlineExceeded { budget_ms: budgets.budget_ms() },
                    recovery: Recovery::SkippedItem,
                    run_id: String::new(),
                });
            }
            if deadline_cut {
                skipped.insert(c.id());
                continue;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                failpoints::hit("pipeline::check");
                failpoints::hit(&format!("pipeline::check::{}", c.id()));
            })) {
                log.push(Fault {
                    phase: FaultPhase::Checks,
                    path: c.id().to_string(),
                    severity: FaultSeverity::Degraded,
                    cause: classify_panic(&panic_message(&*payload)),
                    recovery: Recovery::SkippedItem,
                    run_id: String::new(),
                });
                skipped.insert(c.id());
            }
        }

        // Shard list: file-local rules × fresh files (cached files carry
        // their file-local diagnostics in the facts record), then the
        // macro-naming pass per fresh file.
        let fresh_idx: Vec<usize> = (0..loaded.len())
            .filter(|&li| loaded[li].parsed.is_some())
            .collect();
        let mut tasks: Vec<ShardTask> = Vec::new();
        for (ci, c) in checks.iter().enumerate() {
            if c.scope() != CheckScope::File || skipped.contains(c.id()) {
                continue;
            }
            for &li in &fresh_idx {
                tasks.push(ShardTask::Rule(ci, li));
            }
        }
        for &li in &fresh_idx {
            tasks.push(ShardTask::Macro(li));
        }
        let task_list = tasks.clone();
        let shard_results = pool.map(tasks, |_, t| {
            let li = match t {
                ShardTask::Rule(_, li) | ShardTask::Macro(li) => li,
            };
            let l = &loaded[li];
            let parsed = l.parsed.as_deref().expect("shards only target fresh files");
            match t {
                ShardTask::Rule(ci, _) => {
                    let entry = FileEntry {
                        file: sm.file(l.id),
                        unit: &parsed.unit,
                        module: &self.files[l.file_idx].module,
                    };
                    let cx = CheckContext::file_local(&sm, entry);
                    ShardOut::Rule(run_one_check(checks[ci].as_ref(), &cx))
                }
                ShardTask::Macro(_) => {
                    let _sp = adsafe_trace::span("check.naming-macro", "checks");
                    ShardOut::Macro(adsafe_checkers::naming::check_macros(&parsed.pp))
                }
            }
        });

        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        // Per-file diagnostic buckets for cache write-back, filled in
        // rule-registry order (then macros) — the order cached entries
        // replay them in.
        let mut buckets: HashMap<usize, Vec<Diagnostic>> = HashMap::new();
        let mut checks_ok: Vec<bool> = vec![true; loaded.len()];
        for (t, res) in task_list.iter().zip(shard_results) {
            match (t, res) {
                (ShardTask::Rule(_, li), Ok(ShardOut::Rule(Ok(diags)))) => {
                    buckets.entry(*li).or_default().extend(diags.iter().cloned());
                    diagnostics.extend(diags);
                }
                (ShardTask::Rule(_, li), Ok(ShardOut::Rule(Err(failure)))) => {
                    checks_ok[*li] = false;
                    log.push(Fault {
                        phase: FaultPhase::Checks,
                        path: failure.check_id.to_string(),
                        severity: FaultSeverity::Degraded,
                        cause: FaultCause::Panic(failure.message),
                        recovery: Recovery::SkippedItem,
                        run_id: String::new(),
                    });
                }
                (ShardTask::Macro(li), Ok(ShardOut::Macro(diags))) => {
                    buckets.entry(*li).or_default().extend(diags.iter().cloned());
                    diagnostics.extend(diags);
                }
                (ShardTask::Rule(ci, li), Err(payload)) => {
                    checks_ok[*li] = false;
                    log.push(Fault {
                        phase: FaultPhase::Checks,
                        path: checks[*ci].id().to_string(),
                        severity: FaultSeverity::Degraded,
                        cause: classify_panic(&panic_message(&*payload)),
                        recovery: Recovery::SkippedItem,
                        run_id: String::new(),
                    });
                }
                (ShardTask::Macro(li), Err(payload)) => {
                    checks_ok[*li] = false;
                    log.push(Fault {
                        phase: FaultPhase::Checks,
                        path: self.files[loaded[*li].file_idx].path.clone(),
                        severity: FaultSeverity::Degraded,
                        cause: classify_panic(&panic_message(&*payload)),
                        recovery: Recovery::SkippedItem,
                        run_id: String::new(),
                    });
                }
                // A task cannot return the other variant's output.
                (ShardTask::Rule(..), Ok(ShardOut::Macro(_)))
                | (ShardTask::Macro(_), Ok(ShardOut::Rule(_))) => unreachable!(),
            }
        }

        // Program-scoped rules run once, from facts, on the caller
        // thread — they need the whole program, not a shard. The set is
        // pinned by a test in adsafe-checkers; a future program-scoped
        // rule must be given a facts replay here.
        for c in &checks {
            if c.scope() != CheckScope::Program || skipped.contains(c.id()) {
                continue;
            }
            let id = c.id();
            let _sp = adsafe_trace::span(format!("check.{id}"), "checks");
            let result = catch_unwind(AssertUnwindSafe(|| match id {
                "misra-17.2-recursion" => facts::recursion_diags(&records, &graph),
                "design-global-use" => facts::global_use_diags(&records, &globals),
                _ => Vec::new(),
            }));
            match result {
                Ok(diags) => {
                    adsafe_trace::counter(&format!("checks.rule.{id}.diags"))
                        .add(diags.len() as u64);
                    diagnostics.extend(diags);
                }
                Err(payload) => log.push(Fault {
                    phase: FaultPhase::Checks,
                    path: id.to_string(),
                    severity: FaultSeverity::Degraded,
                    cause: FaultCause::Panic(panic_message(&*payload)),
                    recovery: Recovery::SkippedItem,
                    run_id: String::new(),
                }),
            }
        }

        // Cached files replay their stored file-local diagnostics —
        // filtered by `skipped` so a gated rule stays silent on warm
        // runs too.
        for l in &loaded {
            if l.parsed.is_none() {
                diagnostics.extend(
                    l.facts.diags.iter().filter(|d| !skipped.contains(d.check_id)).cloned(),
                );
            }
        }
        drop(native_span);

        // Query rules, evaluated from facts — fresh and cached files
        // alike, no reparse. File-scope rules shard (rule × file) over
        // the pool exactly like native rules; program-scope rules (the
        // ones touching `recursive`) run once on the caller thread over
        // all records. Query diagnostics join the report but never the
        // cache write-back buckets and never compliance evidence.
        let query_span = adsafe_trace::span("phase.checks.query", "phase");
        if let Some(pack) = self.options.rules.as_deref().filter(|p| !p.rules.is_empty()) {
            let file_rules: Vec<&adsafe_query::CompiledRule> = pack
                .rules
                .iter()
                .filter(|r| r.scope == CheckScope::File)
                .collect();
            let qtasks: Vec<(usize, usize)> = file_rules
                .iter()
                .enumerate()
                .flat_map(|(qi, _)| (0..loaded.len()).map(move |li| (qi, li)))
                .collect();
            let qresults = pool.map(qtasks.clone(), |_, (qi, li)| {
                let rule = file_rules[qi];
                let l = &loaded[li];
                let _sp = adsafe_trace::span(format!("check.{}", rule.id), "checks");
                let t0 = adsafe_trace::now_us();
                let rows = crate::query::rows_from_facts(
                    rule.selector,
                    l.id,
                    &self.files[l.file_idx].module,
                    &l.facts,
                    &[],
                );
                let (diags, steps) = rule.eval_rows(&rows);
                adsafe_trace::counter("query.vm.steps").add(steps);
                adsafe_trace::histogram(&adsafe_trace::labeled(
                    "checks.query",
                    &[("rule", rule.id)],
                ))
                .record(adsafe_trace::now_us().saturating_sub(t0));
                diags
            });
            let mut per_rule: HashMap<&'static str, u64> = HashMap::new();
            for (&(qi, li), res) in qtasks.iter().zip(&qresults) {
                match res {
                    Ok(diags) => {
                        *per_rule.entry(file_rules[qi].id).or_default() += diags.len() as u64;
                        diagnostics.extend(diags.iter().cloned());
                    }
                    Err(payload) => log.push(Fault {
                        phase: FaultPhase::Checks,
                        path: format!(
                            "{} on {}",
                            file_rules[qi].id, self.files[loaded[li].file_idx].path
                        ),
                        severity: FaultSeverity::Degraded,
                        cause: classify_panic(&panic_message(&**payload)),
                        recovery: Recovery::SkippedItem,
                        run_id: String::new(),
                    }),
                }
            }
            for rule in pack.rules.iter().filter(|r| r.scope == CheckScope::Program) {
                let _sp = adsafe_trace::span(format!("check.{}", rule.id), "checks");
                let t0 = adsafe_trace::now_us();
                let recursive = graph.recursive_functions();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut diags = Vec::new();
                    let mut steps = 0u64;
                    for l in &loaded {
                        let rows = crate::query::rows_from_facts(
                            rule.selector,
                            l.id,
                            &self.files[l.file_idx].module,
                            &l.facts,
                            &recursive,
                        );
                        let (d, s) = rule.eval_rows(&rows);
                        diags.extend(d);
                        steps += s;
                    }
                    (diags, steps)
                }));
                match result {
                    Ok((diags, steps)) => {
                        adsafe_trace::counter("query.vm.steps").add(steps);
                        *per_rule.entry(rule.id).or_default() += diags.len() as u64;
                        diagnostics.extend(diags);
                    }
                    Err(payload) => log.push(Fault {
                        phase: FaultPhase::Checks,
                        path: rule.id.to_string(),
                        severity: FaultSeverity::Degraded,
                        cause: classify_panic(&panic_message(&*payload)),
                        recovery: Recovery::SkippedItem,
                        run_id: String::new(),
                    }),
                }
                adsafe_trace::histogram(&adsafe_trace::labeled(
                    "checks.query",
                    &[("rule", rule.id)],
                ))
                .record(adsafe_trace::now_us().saturating_sub(t0));
            }
            for (id, n) in per_rule {
                adsafe_trace::counter(&format!("checks.rule.{id}.diags")).add(n);
            }
        }
        drop(query_span);

        // One canonical order for the *complete* list — shards, macro
        // findings, program-scoped rules, and cached replays — so
        // repeated runs over the same corpus render byte-identical
        // reports regardless of worker count or cache state. The sort
        // is stable, and no two merge sources share a (rule, file)
        // group, so within-group emission order is preserved exactly.
        diagnostics.sort_by_key(|d| (d.check_id, d.span.file, d.span.start));
        adsafe_trace::counter("checks.diagnostics").add(diagnostics.len() as u64);
        note_phase_overrun(&mut log, FaultPhase::Checks, deadline.start, &budgets);
        drop(phase_span);

        // Cache write-back: only fully-clean fresh files (tier-1 parse,
        // no shard fault) from a run where no rule was gated or cut —
        // a cached entry must replay the complete file-local rule set,
        // and recoverable faults (resync, panics) must recur on warm
        // runs rather than being papered over.
        if let Some(c) = cache {
            if skipped.is_empty() {
                for (li, l) in loaded.iter().enumerate() {
                    if l.parsed.is_some() && l.cache_ok && checks_ok[li] {
                        let mut entry = l.facts.clone();
                        entry.diags = buckets.remove(&li).unwrap_or_default();
                        c.store_entry(l.hash, &self.files[l.file_idx].path, &entry);
                    }
                }
            }
        }

        // Phase 3: module metrics from facts, isolated per module, with
        // token-only fallback so a module never vanishes from Figure 3.
        let phase_span = adsafe_trace::span("phase.metrics", "phase");
        let deadline = PhaseDeadline::new(&budgets);
        let mut seen = HashSet::new();
        let mut module_order: Vec<&str> = Vec::new();
        for l in &loaded {
            let m = self.files[l.file_idx].module.as_str();
            if seen.insert(m) {
                module_order.push(m);
            }
        }
        let module_results = pool.map(module_order.clone(), |_, m| {
            if deadline.exceeded() {
                return Err(FaultCause::DeadlineExceeded { budget_ms: budgets.budget_ms() });
            }
            catch_unwind(AssertUnwindSafe(|| {
                failpoints::hit(&format!("pipeline::metrics::{m}"));
                let files: Vec<&FileFacts> = loaded
                    .iter()
                    .filter(|l| self.files[l.file_idx].module == m)
                    .map(|l| &l.facts)
                    .collect();
                facts::module_metrics_from_facts(m, &files)
            }))
            .map_err(|payload| classify_panic(&panic_message(&*payload)))
        });
        let mut modules: Vec<ModuleMetrics> = Vec::new();
        for (m, res) in module_order.iter().zip(module_results) {
            let flat = match res {
                Ok(inner) => inner,
                Err(payload) => Err(classify_panic(&panic_message(&*payload))),
            };
            match flat {
                Ok(mm) => modules.push(mm),
                Err(cause) => {
                    let ests: Vec<TokenEstimate> = loaded
                        .iter()
                        .filter(|l| self.files[l.file_idx].module == *m)
                        .filter_map(|l| {
                            catch_unwind(AssertUnwindSafe(|| {
                                token_estimate(l.id, sm.file(l.id).text())
                            }))
                            .ok()
                        })
                        .collect();
                    modules.push(module_from_estimates(m, &ests));
                    log.push(Fault {
                        phase: FaultPhase::Metrics,
                        path: m.to_string(),
                        severity: FaultSeverity::Degraded,
                        cause,
                        recovery: Recovery::TokenMetrics,
                        run_id: String::new(),
                    });
                }
            }
        }
        // Absorb tier-3 files into their modules' metrics.
        for (module, est) in &estimates {
            match modules.iter_mut().find(|m| &m.name == module) {
                Some(m) => adsafe_metrics::absorb_estimate(m, est),
                None => modules.push(module_from_estimates(module, &[*est])),
            }
        }
        note_phase_overrun(&mut log, FaultPhase::Metrics, deadline.start, &budgets);
        drop(phase_span);

        // Phase 4: evidence assembly and compliance judgement, with a
        // conservative-default fallback (critical fault) if it panics.
        let phase_span = adsafe_trace::span("phase.assess", "phase");
        let unit = catch_unwind(AssertUnwindSafe(|| {
            failpoints::hit("pipeline::assess");
            facts::unit_stats_from_facts(&records, &graph)
        }))
        .unwrap_or_else(|payload| {
            log.push(Fault {
                phase: FaultPhase::Assess,
                path: "unit-design-stats".to_string(),
                severity: FaultSeverity::Critical,
                cause: classify_panic(&panic_message(&*payload)),
                recovery: Recovery::FallbackDefault,
                run_id: String::new(),
            });
            adsafe_checkers::UnitDesignStats::default()
        });
        let evidence = catch_unwind(AssertUnwindSafe(|| {
            self.assemble_evidence(&records, &graph, &modules, &unit, &diagnostics)
        }))
        .unwrap_or_else(|payload| {
            log.push(Fault {
                phase: FaultPhase::Assess,
                path: "evidence".to_string(),
                severity: FaultSeverity::Critical,
                cause: classify_panic(&panic_message(&*payload)),
                recovery: Recovery::FallbackDefault,
                run_id: String::new(),
            });
            Evidence {
                total_loc: modules.iter().map(|m| m.loc.nloc).sum(),
                coverage: self.options.coverage,
                ..Evidence::default()
            }
        });
        let compliance = catch_unwind(AssertUnwindSafe(|| assess(&evidence, self.options.asil)))
            .unwrap_or_else(|payload| {
                log.push(Fault {
                    phase: FaultPhase::Assess,
                    path: "compliance".to_string(),
                    severity: FaultSeverity::Critical,
                    cause: classify_panic(&panic_message(&*payload)),
                    recovery: Recovery::FallbackDefault,
                    run_id: String::new(),
                });
                ComplianceReport { asil: self.options.asil, verdicts: Vec::new() }
            });
        let observations = catch_unwind(AssertUnwindSafe(|| observations(&evidence)))
            .unwrap_or_else(|payload| {
                log.push(Fault {
                    phase: FaultPhase::Assess,
                    path: "observations".to_string(),
                    severity: FaultSeverity::Critical,
                    cause: classify_panic(&panic_message(&*payload)),
                    recovery: Recovery::FallbackDefault,
                    run_id: String::new(),
                });
                Vec::new()
            });

        drop(phase_span);
        drop(run_span);
        let events = adsafe_trace::drain_from(trace_mark);
        let counters_after = adsafe_trace::counter_snapshot();
        let mut trace = TraceSummary::from_events(
            events,
            adsafe_trace::counter_delta(&counters_before, &counters_after),
        );
        // Per-phase allocation delta of this run (empty unless a
        // `CountingAlloc` is installed with profiling on — the phase
        // spans above drove the billing tags).
        trace.phase_mem =
            adsafe_trace::alloc::phase_delta(&mem_before, &adsafe_trace::alloc::phase_stats());

        let degraded = log.degrades_report();
        AssessmentReport {
            evidence,
            compliance,
            observations,
            modules,
            diagnostics,
            faults: log,
            degraded,
            trace,
            run_id: self.options.run_id.clone(),
        }
    }

    fn assemble_evidence(
        &self,
        records: &[FactsRecord<'_>],
        graph: &CallGraph,
        modules: &[ModuleMetrics],
        unit: &adsafe_checkers::UnitDesignStats,
        diagnostics: &[Diagnostic],
    ) -> Evidence {
        let count = |id: &str| diagnostics.iter().filter(|d| d.check_id == id).count();
        let misra_ids = [
            "misra-15.1-goto",
            "misra-15.5-multi-exit",
            "misra-17.2-recursion",
            "misra-21.3-dynamic-memory",
            "misra-12.3-comma",
            "misra-19.2-union",
            "misra-16.4-switch-default",
            "misra-2.1-unreachable",
            "misra-17.1-variadic",
            "misra-7.1-octal",
            "misra-13.5-side-effect",
            "misra-decl-one-per-stmt",
        ];
        let misra_violations: usize = misra_ids.iter().map(|id| count(id)).sum();
        let style_findings = count("style-line")
            + count("style-indent")
            + count("style-brace")
            + count("style-include-guard");
        let naming_findings =
            count("naming-type") + count("naming-variable") + count("naming-macro");

        // GPU evidence from the per-function facts.
        let mut gpu = GpuEvidence {
            language_subset_available: false,
            coverage_tool_available: false,
            ..GpuEvidence::default()
        };
        for (_, _, facts) in records {
            for f in &facts.functions {
                if f.is_kernel {
                    gpu.kernel_count += 1;
                    gpu.kernel_pointer_params += f.ptr_params;
                }
                gpu.device_alloc_sites += f.alloc_calls;
            }
        }
        gpu.closed_source_calls = count("cuda-closed-source-lib");

        // Architecture metrics.
        let mean_cohesion = if modules.is_empty() {
            1.0
        } else {
            modules.iter().map(|m| m.cohesion).sum::<f64>() / modules.len() as f64
        };
        let module_of: HashMap<String, String> = records
            .iter()
            .flat_map(|(_, module, facts)| {
                facts
                    .functions
                    .iter()
                    .map(move |f| (f.metrics.qualified_name.clone(), module.to_string()))
            })
            .collect();
        let coupling_edges: usize =
            adsafe_metrics::coupling(graph, &module_of).values().sum();
        let total_functions: usize = modules.iter().map(|m| m.function_count()).sum();
        let mean_interface_params = if modules.is_empty() {
            0.0
        } else {
            modules.iter().map(|m| m.mean_params * m.function_count() as f64).sum::<f64>()
                / total_functions.max(1) as f64
        };

        Evidence {
            total_loc: modules.iter().map(|m| m.loc.nloc).sum(),
            total_functions,
            functions_over_cc10: modules.iter().map(|m| m.functions_over(10)).sum(),
            functions_over_cc20: modules.iter().map(|m| m.functions_over(20)).sum(),
            functions_over_cc50: modules.iter().map(|m| m.functions_over(50)).sum(),
            module_locs: modules.iter().map(|m| (m.name.clone(), m.loc.nloc)).collect(),
            misra_violations,
            explicit_casts: count("typing-explicit-cast"),
            implicit_conversions: unit.implicit_conversions,
            validation_ratio: facts::validation_ratio_from_facts(records),
            unchecked_calls: count("defensive-unchecked-return"),
            global_definitions: unit.global_definitions,
            style_findings,
            naming_findings,
            mean_cohesion,
            coupling_edges,
            mean_interface_params,
            hierarchical_structure: true,
            has_scheduling_policy: self.options.has_scheduling_policy,
            uses_interrupts: false,
            multi_exit_pct: unit.multi_exit_pct(),
            dynamic_alloc_sites: unit.dynamic_alloc_sites,
            maybe_uninit_reads: unit.maybe_uninit_reads,
            shadowed_declarations: unit.shadowed_declarations,
            pointer_uses: unit.pointer_uses,
            opaque_regions: unit.opaque_regions,
            global_access_functions: count("design-global-use"),
            goto_count: unit.goto_count,
            recursive_functions: unit.recursive_functions,
            gpu,
            coverage: self.options.coverage,
        }
    }
}

/// The per-file parse task: cache lookup, parse + facts extraction
/// under panic containment, degradation ladder on failure. Runs on a
/// worker when `jobs > 1`, inline otherwise; all counters are global,
/// and trace spans are absorbed back into the caller's buffer.
fn parse_one(
    sm: &SourceMap,
    id: FileId,
    rf: &RawFile,
    deadline: &PhaseDeadline,
    budgets: &Budgets,
    cache: Option<&dyn FactsStore>,
) -> ParseOutcome {
    let _file_span =
        adsafe_trace::span_with("parse.file", "parse", vec![("path", rf.path.clone())]);
    let text = sm.file(id).text();
    let mut out = ParseOutcome {
        kind: ParseKind::Dropped,
        faults: Vec::new(),
        estimate: None,
        hash: 0,
        cache_ok: false,
    };
    if deadline.exceeded() {
        if deadline.trip_once() {
            out.faults.push(Fault {
                phase: FaultPhase::Parse,
                path: rf.path.clone(),
                severity: FaultSeverity::Degraded,
                cause: FaultCause::DeadlineExceeded { budget_ms: budgets.budget_ms() },
                recovery: Recovery::TokenMetrics,
                run_id: String::new(),
            });
        }
        // Past the deadline: token-only estimation (cheap, total)
        // keeps every remaining file contributing evidence.
        if let Ok(est) = catch_unwind(AssertUnwindSafe(|| token_estimate(id, text))) {
            adsafe_trace::counter("parse.tier3.files").incr();
            out.estimate = Some(est);
            out.kind = ParseKind::Estimated;
        }
        return out;
    }
    if let Some(c) = cache {
        out.hash = content_hash(&rf.path, text);
        match c.load(out.hash, id) {
            CacheLookup::Hit(facts) => {
                adsafe_trace::counter("parse.cached.files").incr();
                out.kind = ParseKind::Cached(facts);
                return out;
            }
            CacheLookup::Corrupt(detail) => {
                // Cold path from here on; the entry was evicted and a
                // clean one will be written back after checks.
                out.faults.push(Fault {
                    phase: FaultPhase::Parse,
                    path: rf.path.clone(),
                    severity: FaultSeverity::Info,
                    cause: FaultCause::CacheCorrupt { detail },
                    recovery: Recovery::Noted,
                    run_id: String::new(),
                });
            }
            CacheLookup::Miss => {}
        }
    }
    let parsed = catch_unwind(AssertUnwindSafe(|| {
        failpoints::hit("pipeline::parse_file");
        failpoints::hit(&format!("pipeline::parse_file::{}", rf.path));
        let p = adsafe_lang::parse_source(id, text);
        let facts = facts::extract_facts(sm, id, &p);
        (p, facts)
    }));
    match parsed {
        Ok((p, facts)) => {
            let regions = p.unit.recovery_count;
            if regions > 0 {
                adsafe_trace::counter("parse.tier2.files").incr();
                out.faults.push(Fault {
                    phase: FaultPhase::Parse,
                    path: rf.path.clone(),
                    severity: FaultSeverity::Degraded,
                    cause: FaultCause::ParseResync { regions },
                    recovery: Recovery::ResyncParse,
                    run_id: String::new(),
                });
            } else {
                adsafe_trace::counter("parse.tier1.files").incr();
                out.cache_ok = true;
            }
            out.kind = ParseKind::Fresh(Box::new(p), facts);
        }
        Err(payload) => {
            let cause = classify_panic(&panic_message(&*payload));
            match catch_unwind(AssertUnwindSafe(|| token_estimate(id, text))) {
                Ok(est) => {
                    adsafe_trace::counter("parse.tier3.files").incr();
                    out.estimate = Some(est);
                    out.kind = ParseKind::Estimated;
                    out.faults.push(Fault {
                        phase: FaultPhase::Parse,
                        path: rf.path.clone(),
                        severity: FaultSeverity::Degraded,
                        cause,
                        recovery: Recovery::TokenMetrics,
                        run_id: String::new(),
                    });
                }
                Err(payload2) => {
                    let _ = payload2;
                    adsafe_trace::counter("parse.dropped.files").incr();
                    out.faults.push(Fault {
                        phase: FaultPhase::Parse,
                        path: rf.path.clone(),
                        severity: FaultSeverity::Lost,
                        cause,
                        recovery: Recovery::Dropped,
                        run_id: String::new(),
                    });
                }
            }
        }
    }
    out
}

/// Records how far past its budget a phase actually ran.
///
/// Deadlines are only consulted *between* items, so a slow item can
/// carry a phase well past its deadline without any record of the
/// magnitude. This notes the overrun as a `{phase}.budget.overrun_ms`
/// counter and a `Timeout`-severity fault comparing actual against
/// budgeted milliseconds. `Timeout` sits below `Degraded`, so the
/// report's evidence is not marked degraded by the note alone. Always
/// called on the caller thread, once per phase — workers only ever
/// record the `DeadlineExceeded` item fault (at most once, via the
/// shared [`PhaseDeadline`]).
fn note_phase_overrun(
    log: &mut FaultLog,
    phase: FaultPhase,
    phase_start: Instant,
    budgets: &Budgets,
) {
    let Some(deadline) = budgets.phase_deadline else { return };
    let elapsed = phase_start.elapsed();
    if elapsed <= deadline {
        return;
    }
    let budget_ms = deadline.as_millis() as u64;
    let actual_ms = elapsed.as_millis() as u64;
    adsafe_trace::counter(&format!("{}.budget.overrun_ms", phase.name()))
        .add(actual_ms.saturating_sub(budget_ms));
    log.push(Fault {
        phase,
        path: format!("{}-phase-budget", phase.name()),
        severity: FaultSeverity::Timeout,
        cause: FaultCause::DeadlineOverrun { budget_ms, actual_ms },
        recovery: Recovery::Noted,
        run_id: String::new(),
    });
}

/// An injected failpoint panic keeps its identity in the fault log.
fn classify_panic(msg: &str) -> FaultCause {
    if msg.starts_with("failpoint `") {
        FaultCause::Injected(msg.to_string())
    } else {
        FaultCause::Panic(msg.to_string())
    }
}

/// Convenience: assess a generated Apollo-like corpus.
pub fn assess_corpus(
    files: &[adsafe_corpus::GeneratedFile],
    options: AssessmentOptions,
) -> AssessmentReport {
    let mut a = Assessment::new().with_options(options);
    for f in files {
        a.add_file(&f.module, &f.path, &f.text);
    }
    a.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsafe_iso26262::{Status, TableId};

    fn small_report() -> AssessmentReport {
        let mut a = Assessment::new();
        a.add_file(
            "perception",
            "perception/track.cc",
            "int g_tracks;\n\
             int Update(int* state, int delta) {\n\
               if (delta < 0) return -1;\n\
               g_tracks = g_tracks + 1;\n\
               *state = *state + delta;\n\
               return (int)(*state * 1.5f);\n\
             }\n",
        );
        a.add_file(
            "perception",
            "perception/detect.cu",
            adsafe_corpus::yolo::SCALE_BIAS_CU,
        );
        a.run()
    }

    #[test]
    fn evidence_reflects_the_code() {
        let r = small_report();
        assert_eq!(r.evidence.global_definitions, 1);
        assert!(r.evidence.explicit_casts >= 1);
        assert!(r.evidence.multi_exit_pct > 0.0);
        assert_eq!(r.evidence.gpu.kernel_count, 1);
        assert_eq!(r.evidence.gpu.kernel_pointer_params, 2);
        assert!(r.evidence.gpu.device_alloc_sites >= 2);
        assert!(r.evidence.pointer_uses > 0);
        assert_eq!(r.modules.len(), 1);
    }

    #[test]
    fn clean_run_is_fault_free() {
        let r = small_report();
        assert!(r.faults.is_empty(), "{:?}", r.faults);
        assert!(!r.degraded);
    }

    #[test]
    fn compliance_report_has_25_verdicts() {
        let r = small_report();
        assert_eq!(r.compliance.verdicts.len(), 25);
        assert_eq!(r.observations.len(), 14);
        // Dynamic device memory → unit-design row 2 non-compliant with
        // research-class effort (CUDA intrinsic).
        let row2 = &r.compliance.table(TableId::UnitDesign)[1];
        assert_eq!(row2.status, Status::NonCompliant);
        assert_eq!(row2.effort, adsafe_iso26262::Effort::Research);
    }

    #[test]
    fn observation_4_holds_for_cuda_code() {
        let r = small_report();
        let obs4 = &r.observations[3];
        assert!(obs4.holds);
        assert!(obs4.text.contains("CUDA"));
    }

    #[test]
    fn diagnostics_queryable() {
        let r = small_report();
        assert!(!r.diagnostics_for("misra-21.3-dynamic-memory").is_empty());
        assert!(r.diagnostics_for("made-up-check").is_empty());
    }

    #[test]
    fn corpus_assessment_smoke() {
        let spec = adsafe_corpus::ApolloSpec::test_scale();
        let files = adsafe_corpus::generate(&spec);
        let r = assess_corpus(&files, AssessmentOptions::default());
        assert!(r.evidence.total_functions > 100);
        assert!(r.evidence.functions_over_cc10 >= spec.total_over_10());
        assert!(r.compliance.blocking_count() > 0);
    }

    #[test]
    fn resynced_file_degrades_but_contributes() {
        let mut a = Assessment::new();
        a.add_file("m", "good.cc", "int f() { return 1; }\n");
        // Mangled enough that the parser must resynchronise.
        a.add_file("m", "bad.cc", "int ; ] ) } = 5 +;\nint h() { return 2; }\n");
        let r = a.run();
        assert!(r.degraded);
        assert!(r.faults.iter().any(|f| {
            f.path == "bad.cc"
                && matches!(f.cause, FaultCause::ParseResync { .. })
                && f.recovery == Recovery::ResyncParse
        }));
        // Both files are in the module metrics.
        assert_eq!(r.modules.len(), 1);
        assert_eq!(r.modules[0].file_count, 2);
    }

    #[test]
    fn injected_parse_panic_falls_to_token_metrics() {
        let _g = failpoints::Armed::new(
            "pipeline::parse_file::m/a.cc",
            failpoints::Action::Panic("parser bug".into()),
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut a = Assessment::new();
        a.add_file("m", "m/a.cc", "int f() { if (f()) return 1; return 0; }\n");
        a.add_file("m", "m/b.cc", "int g() { return 2; }\n");
        let r = a.run();
        std::panic::set_hook(prev);
        assert!(r.degraded);
        let f = r
            .faults
            .iter()
            .find(|f| f.path == "m/a.cc")
            .expect("fault for panicked file");
        assert_eq!(f.recovery, Recovery::TokenMetrics);
        assert!(matches!(f.cause, FaultCause::Injected(_)));
        // The panicked file still contributes NLOC via tier 3.
        let m = &r.modules[0];
        assert_eq!(m.file_count, 2);
        assert_eq!(m.absorbed_files, 1);
        assert!(m.loc.nloc >= 2);
    }

    #[test]
    fn non_utf8_input_is_ingestible() {
        let mut a = Assessment::new();
        a.add_file_bytes("m", "weird.cc", b"int f() { return 1; }\n\xff\xfe\x00junk\n");
        let r = a.run();
        assert!(r.degraded);
        assert!(r.faults.iter().any(|f| {
            f.phase == FaultPhase::Ingest && matches!(f.cause, FaultCause::NonUtf8 { .. })
        }));
        assert_eq!(r.modules[0].file_count, 1);
    }

    #[test]
    fn parse_deadline_sends_remaining_files_to_tier3() {
        let _g = failpoints::Armed::new(
            "pipeline::parse_file",
            failpoints::Action::Delay(Duration::from_millis(25)),
        );
        let mut a = Assessment::new().with_options(AssessmentOptions {
            budgets: Budgets { phase_deadline: Some(Duration::from_millis(10)) },
            ..AssessmentOptions::default()
        });
        for i in 0..4 {
            a.add_file("m", &format!("f{i}.cc"), "int f() { return 1; }\n");
        }
        let r = a.run();
        assert!(r.degraded);
        assert!(r
            .faults
            .iter()
            .any(|f| matches!(f.cause, FaultCause::DeadlineExceeded { .. })));
        // Every file still contributes evidence.
        assert_eq!(r.modules[0].file_count, 4);
        assert!(r.modules[0].absorbed_files >= 1);
    }
}
