//! The assessment pipeline: source files in, compliance report out.
//!
//! This is the paper's methodology as an API: parse the whole code base,
//! run metrics and checkers, assemble [`Evidence`], judge it against ISO
//! 26262 Part 6 at a target ASIL, and synthesise the observations.
//!
//! The pipeline is *fault-isolated*: every file, every checker rule, and
//! every phase runs under panic containment, and anything that goes
//! wrong is recorded in the report's [`FaultLog`] instead of aborting
//! the run. Files that cannot be parsed cleanly descend a three-tier
//! degradation ladder:
//!
//! 1. **Full parse** — the normal path; no fault recorded.
//! 2. **Resync parse** — the error-tolerant parser skipped opaque
//!    regions (`recovery_count > 0`); the file's evidence is complete
//!    but approximate, recorded as a `ParseResync` fault.
//! 3. **Token-only metrics** — the parser panicked; NLOC and a
//!    cyclomatic estimate are recovered from the token stream alone and
//!    absorbed into the owning module's metrics.
//!
//! A report produced through any tier below 1 carries
//! [`AssessmentReport::degraded`]` == true`.

use crate::fault::{
    failpoints, panic_message, Fault, FaultCause, FaultLog, FaultPhase, FaultSeverity, Recovery,
};
use adsafe_checkers::{
    default_checks, run_one_check, AnalysisSet, CheckContext, Diagnostic,
};
use adsafe_iso26262::{
    assess, observations, Asil, ComplianceReport, Evidence, GpuEvidence, Observation,
};
use adsafe_lang::cuda;
use adsafe_metrics::{
    absorb_estimate, module_from_estimates, module_metrics, token_estimate, ModuleMetrics,
    TokenEstimate,
};
use adsafe_trace::TraceSummary;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Wall-clock budgets for the analysis phases.
///
/// A phase that overruns its deadline is cut short between items; the
/// items not reached fall down the degradation ladder (parse, metrics)
/// or are skipped (checks), each recorded as a fault. `None` disables
/// the deadline — the default, since assessment is usually batch work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Deadline applied to each phase (parse, checks, metrics)
    /// independently.
    pub phase_deadline: Option<Duration>,
}

impl Budgets {
    fn exceeded(&self, phase_start: Instant) -> bool {
        self.phase_deadline.is_some_and(|d| phase_start.elapsed() > d)
    }

    fn budget_ms(&self) -> u64 {
        self.phase_deadline.map_or(0, |d| d.as_millis() as u64)
    }
}

/// Inputs the analyser cannot derive from source (supplied by the
/// integrator, as in a real assessment).
#[derive(Debug, Clone)]
pub struct AssessmentOptions {
    /// Target ASIL (the paper uses ASIL-D for the whole AD pipeline).
    pub asil: Asil,
    /// Whether the deployment defines scheduling properties.
    pub has_scheduling_policy: bool,
    /// Structural coverage results to fold in, if measured.
    pub coverage: Option<adsafe_iso26262::CoverageEvidence>,
    /// Wall-clock budgets for the analysis phases.
    pub budgets: Budgets,
}

impl Default for AssessmentOptions {
    fn default() -> Self {
        AssessmentOptions {
            asil: Asil::D,
            has_scheduling_policy: false,
            coverage: None,
            budgets: Budgets::default(),
        }
    }
}

/// The full output of one assessment run.
#[derive(Debug)]
pub struct AssessmentReport {
    /// Assembled quantitative evidence.
    pub evidence: Evidence,
    /// Per-topic verdicts for the three Part-6 tables.
    pub compliance: ComplianceReport,
    /// The fourteen synthesised observations.
    pub observations: Vec<Observation>,
    /// Per-module metrics (Figure 3's data).
    pub modules: Vec<ModuleMetrics>,
    /// Every diagnostic, sorted by check then position.
    pub diagnostics: Vec<Diagnostic>,
    /// Every fault contained during the run.
    pub faults: FaultLog,
    /// Whether any fault cost evidence: the report is still valid but
    /// rests on partially estimated or incomplete measurements.
    pub degraded: bool,
    /// Self-observability: per-phase wall time, slowest files and
    /// rules, counter deltas, and the raw span events of this run.
    pub trace: TraceSummary,
}

impl AssessmentReport {
    /// Diagnostics of one check.
    pub fn diagnostics_for(&self, check_id: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.check_id == check_id).collect()
    }
}

/// One source file queued for assessment.
#[derive(Debug, Clone)]
struct RawFile {
    module: String,
    path: String,
    text: String,
}

/// The assessment driver. Add files, then [`Assessment::run`].
#[derive(Debug, Default)]
pub struct Assessment {
    files: Vec<RawFile>,
    ingest_faults: Vec<Fault>,
    options: AssessmentOptions,
}

impl Assessment {
    /// Creates an empty assessment with default options (ASIL-D).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the options.
    pub fn with_options(mut self, options: AssessmentOptions) -> Self {
        self.options = options;
        self
    }

    /// Adds one source file under a module.
    pub fn add_file(&mut self, module: &str, path: &str, text: &str) -> &mut Self {
        self.files.push(RawFile {
            module: module.to_string(),
            path: path.to_string(),
            text: text.to_string(),
        });
        self
    }

    /// Adds one source file from raw bytes. Invalid UTF-8 is replaced
    /// lossily and recorded as an ingest fault — the file still flows
    /// through the full ladder rather than being rejected.
    pub fn add_file_bytes(&mut self, module: &str, path: &str, bytes: &[u8]) -> &mut Self {
        let text = String::from_utf8_lossy(bytes);
        if let std::borrow::Cow::Owned(_) = text {
            let replaced = text.chars().filter(|&c| c == '\u{fffd}').count();
            self.ingest_faults.push(Fault {
                phase: FaultPhase::Ingest,
                path: path.to_string(),
                severity: FaultSeverity::Degraded,
                cause: FaultCause::NonUtf8 { replaced },
                recovery: Recovery::ResyncParse,
            });
        }
        let owned = text.into_owned();
        self.add_file(module, path, &owned)
    }

    /// Runs metrics, checkers, and the compliance engine with per-item
    /// panic containment. Never panics on any input; every contained
    /// failure is in the returned report's `faults`.
    ///
    /// The whole run executes under an `assessment.run` trace span with
    /// one `phase.*` span per pipeline phase and one `parse.file` span
    /// per input; the drained events become the report's
    /// [`AssessmentReport::trace`] summary.
    pub fn run(&self) -> AssessmentReport {
        let counters_before = adsafe_trace::counter_snapshot();
        let trace_mark = adsafe_trace::mark();
        let run_span = adsafe_trace::span("assessment.run", "run");

        let mut log = FaultLog::new();
        for f in &self.ingest_faults {
            log.push(f.clone());
        }
        let budgets = self.options.budgets;

        // Phase 1: parse, descending the ladder per file.
        let phase_span = adsafe_trace::span("phase.parse", "phase");
        let mut set = AnalysisSet::new();
        let mut estimates: Vec<(String, TokenEstimate)> = Vec::new();
        let parse_start = Instant::now();
        let mut parse_deadline_hit = false;
        for rf in &self.files {
            let _file_span = adsafe_trace::span_with(
                "parse.file",
                "parse",
                vec![("path", rf.path.clone())],
            );
            let id = set.sm.add_file(&rf.path, &rf.text);
            let text = set.sm.file(id).text().to_string();
            if parse_deadline_hit || budgets.exceeded(parse_start) {
                if !parse_deadline_hit {
                    parse_deadline_hit = true;
                    log.push(Fault {
                        phase: FaultPhase::Parse,
                        path: rf.path.clone(),
                        severity: FaultSeverity::Degraded,
                        cause: FaultCause::DeadlineExceeded { budget_ms: budgets.budget_ms() },
                        recovery: Recovery::TokenMetrics,
                    });
                }
                // Past the deadline: token-only estimation (cheap, total)
                // keeps every remaining file contributing evidence.
                if let Ok(est) =
                    catch_unwind(AssertUnwindSafe(|| token_estimate(id, &text)))
                {
                    estimates.push((rf.module.clone(), est));
                    adsafe_trace::counter("parse.tier3.files").incr();
                }
                continue;
            }
            let parsed = catch_unwind(AssertUnwindSafe(|| {
                failpoints::hit("pipeline::parse_file");
                failpoints::hit(&format!("pipeline::parse_file::{}", rf.path));
                adsafe_lang::parse_source(id, &text)
            }));
            match parsed {
                Ok(p) => {
                    let regions = p.unit.recovery_count;
                    if regions > 0 {
                        adsafe_trace::counter("parse.tier2.files").incr();
                        log.push(Fault {
                            phase: FaultPhase::Parse,
                            path: rf.path.clone(),
                            severity: FaultSeverity::Degraded,
                            cause: FaultCause::ParseResync { regions },
                            recovery: Recovery::ResyncParse,
                        });
                    } else {
                        adsafe_trace::counter("parse.tier1.files").incr();
                    }
                    set.add_parsed(&rf.module, id, p);
                }
                Err(payload) => {
                    let cause = classify_panic(&panic_message(&*payload));
                    match catch_unwind(AssertUnwindSafe(|| token_estimate(id, &text))) {
                        Ok(est) => {
                            estimates.push((rf.module.clone(), est));
                            adsafe_trace::counter("parse.tier3.files").incr();
                            log.push(Fault {
                                phase: FaultPhase::Parse,
                                path: rf.path.clone(),
                                severity: FaultSeverity::Degraded,
                                cause,
                                recovery: Recovery::TokenMetrics,
                            });
                        }
                        Err(payload2) => {
                            let _ = payload2;
                            adsafe_trace::counter("parse.dropped.files").incr();
                            log.push(Fault {
                                phase: FaultPhase::Parse,
                                path: rf.path.clone(),
                                severity: FaultSeverity::Lost,
                                cause,
                                recovery: Recovery::Dropped,
                            });
                        }
                    }
                }
            }
        }
        note_phase_overrun(&mut log, FaultPhase::Parse, parse_start, &budgets);
        drop(phase_span);

        // Phase 2: checkers, isolated per rule.
        let phase_span = adsafe_trace::span("phase.checks", "phase");
        let cx = set.context();
        let checks = default_checks();
        let checks_start = Instant::now();
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        for c in &checks {
            if budgets.exceeded(checks_start) {
                log.push(Fault {
                    phase: FaultPhase::Checks,
                    path: c.id().to_string(),
                    severity: FaultSeverity::Degraded,
                    cause: FaultCause::DeadlineExceeded { budget_ms: budgets.budget_ms() },
                    recovery: Recovery::SkippedItem,
                });
                break;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                failpoints::hit("pipeline::check");
                failpoints::hit(&format!("pipeline::check::{}", c.id()));
            })) {
                log.push(Fault {
                    phase: FaultPhase::Checks,
                    path: c.id().to_string(),
                    severity: FaultSeverity::Degraded,
                    cause: classify_panic(&panic_message(&*payload)),
                    recovery: Recovery::SkippedItem,
                });
                continue;
            }
            match run_one_check(c.as_ref(), &cx) {
                Ok(diags) => diagnostics.extend(diags),
                Err(failure) => log.push(Fault {
                    phase: FaultPhase::Checks,
                    path: failure.check_id.to_string(),
                    severity: FaultSeverity::Degraded,
                    cause: FaultCause::Panic(failure.message),
                    recovery: Recovery::SkippedItem,
                }),
            }
        }
        // Macro naming runs from PpInfo (outside the Check trait),
        // isolated per file.
        for (id, _, parsed) in set.parsed() {
            match catch_unwind(AssertUnwindSafe(|| {
                let _sp = adsafe_trace::span("check.naming-macro", "checks");
                adsafe_checkers::naming::check_macros(&parsed.pp)
            })) {
                Ok(diags) => diagnostics.extend(diags),
                Err(payload) => log.push(Fault {
                    phase: FaultPhase::Checks,
                    path: set.sm.file(*id).path().to_string(),
                    severity: FaultSeverity::Degraded,
                    cause: classify_panic(&panic_message(&*payload)),
                    recovery: Recovery::SkippedItem,
                }),
            }
        }
        // One canonical order for the *complete* list — including the
        // macro findings appended above — so repeated runs over the
        // same corpus render byte-identical reports.
        diagnostics.sort_by_key(|d| (d.check_id, d.span.file, d.span.start));
        adsafe_trace::counter("checks.diagnostics").add(diagnostics.len() as u64);
        note_phase_overrun(&mut log, FaultPhase::Checks, checks_start, &budgets);
        drop(phase_span);

        // Phase 3: module metrics, isolated per module, with token-only
        // fallback so a module never vanishes from Figure 3.
        let phase_span = adsafe_trace::span("phase.metrics", "phase");
        let metrics_start = Instant::now();
        let mut modules: Vec<ModuleMetrics> = Vec::new();
        for m in cx.modules() {
            let entries = cx.module_entries(m);
            let deadline_hit = budgets.exceeded(metrics_start);
            let result = if deadline_hit {
                Err(FaultCause::DeadlineExceeded { budget_ms: budgets.budget_ms() })
            } else {
                catch_unwind(AssertUnwindSafe(|| {
                    failpoints::hit(&format!("pipeline::metrics::{m}"));
                    let files: Vec<_> =
                        entries.iter().map(|e| (e.file, e.unit)).collect();
                    module_metrics(m, &files)
                }))
                .map_err(|payload| classify_panic(&panic_message(&*payload)))
            };
            match result {
                Ok(mm) => modules.push(mm),
                Err(cause) => {
                    let ests: Vec<TokenEstimate> = entries
                        .iter()
                        .filter_map(|e| {
                            catch_unwind(AssertUnwindSafe(|| {
                                token_estimate(e.file.id(), e.file.text())
                            }))
                            .ok()
                        })
                        .collect();
                    modules.push(module_from_estimates(m, &ests));
                    log.push(Fault {
                        phase: FaultPhase::Metrics,
                        path: m.to_string(),
                        severity: FaultSeverity::Degraded,
                        cause,
                        recovery: Recovery::TokenMetrics,
                    });
                }
            }
        }
        // Absorb tier-3 files into their modules' metrics.
        for (module, est) in &estimates {
            match modules.iter_mut().find(|m| &m.name == module) {
                Some(m) => absorb_estimate(m, est),
                None => modules.push(module_from_estimates(module, &[*est])),
            }
        }

        note_phase_overrun(&mut log, FaultPhase::Metrics, metrics_start, &budgets);
        drop(phase_span);

        // Phase 4: evidence assembly and compliance judgement, with a
        // conservative-default fallback (critical fault) if it panics.
        let phase_span = adsafe_trace::span("phase.assess", "phase");
        let unit = catch_unwind(AssertUnwindSafe(|| {
            failpoints::hit("pipeline::assess");
            adsafe_checkers::unit_design_stats(&cx)
        }))
        .unwrap_or_else(|payload| {
            log.push(Fault {
                phase: FaultPhase::Assess,
                path: "unit-design-stats".to_string(),
                severity: FaultSeverity::Critical,
                cause: classify_panic(&panic_message(&*payload)),
                recovery: Recovery::FallbackDefault,
            });
            adsafe_checkers::UnitDesignStats::default()
        });
        let evidence = catch_unwind(AssertUnwindSafe(|| {
            self.assemble_evidence(&cx, &modules, &unit, &diagnostics)
        }))
        .unwrap_or_else(|payload| {
            log.push(Fault {
                phase: FaultPhase::Assess,
                path: "evidence".to_string(),
                severity: FaultSeverity::Critical,
                cause: classify_panic(&panic_message(&*payload)),
                recovery: Recovery::FallbackDefault,
            });
            Evidence {
                total_loc: modules.iter().map(|m| m.loc.nloc).sum(),
                coverage: self.options.coverage,
                ..Evidence::default()
            }
        });
        let compliance = catch_unwind(AssertUnwindSafe(|| assess(&evidence, self.options.asil)))
            .unwrap_or_else(|payload| {
                log.push(Fault {
                    phase: FaultPhase::Assess,
                    path: "compliance".to_string(),
                    severity: FaultSeverity::Critical,
                    cause: classify_panic(&panic_message(&*payload)),
                    recovery: Recovery::FallbackDefault,
                });
                ComplianceReport { asil: self.options.asil, verdicts: Vec::new() }
            });
        let observations = catch_unwind(AssertUnwindSafe(|| observations(&evidence)))
            .unwrap_or_else(|payload| {
                log.push(Fault {
                    phase: FaultPhase::Assess,
                    path: "observations".to_string(),
                    severity: FaultSeverity::Critical,
                    cause: classify_panic(&panic_message(&*payload)),
                    recovery: Recovery::FallbackDefault,
                });
                Vec::new()
            });

        drop(phase_span);
        drop(run_span);
        let events = adsafe_trace::drain_from(trace_mark);
        let counters_after = adsafe_trace::counter_snapshot();
        let trace = TraceSummary::from_events(
            events,
            adsafe_trace::counter_delta(&counters_before, &counters_after),
        );

        let degraded = log.degrades_report();
        AssessmentReport {
            evidence,
            compliance,
            observations,
            modules,
            diagnostics,
            faults: log,
            degraded,
            trace,
        }
    }

    fn assemble_evidence(
        &self,
        cx: &CheckContext<'_>,
        modules: &[ModuleMetrics],
        unit: &adsafe_checkers::UnitDesignStats,
        diagnostics: &[Diagnostic],
    ) -> Evidence {
        let count = |id: &str| diagnostics.iter().filter(|d| d.check_id == id).count();
        let misra_ids = [
            "misra-15.1-goto",
            "misra-15.5-multi-exit",
            "misra-17.2-recursion",
            "misra-21.3-dynamic-memory",
            "misra-12.3-comma",
            "misra-19.2-union",
            "misra-16.4-switch-default",
            "misra-2.1-unreachable",
            "misra-17.1-variadic",
            "misra-7.1-octal",
            "misra-13.5-side-effect",
            "misra-decl-one-per-stmt",
        ];
        let misra_violations: usize = misra_ids.iter().map(|id| count(id)).sum();
        let style_findings = count("style-line")
            + count("style-indent")
            + count("style-brace")
            + count("style-include-guard");
        let naming_findings =
            count("naming-type") + count("naming-variable") + count("naming-macro");

        // GPU evidence from the CUDA profiles.
        let mut gpu = GpuEvidence {
            language_subset_available: false,
            coverage_tool_available: false,
            ..GpuEvidence::default()
        };
        for e in &cx.entries {
            for k in cuda::kernels(e.unit) {
                gpu.kernel_count += 1;
                gpu.kernel_pointer_params +=
                    k.sig.params.iter().filter(|p| p.ty.is_pointer_like()).count();
            }
            for f in e.unit.functions() {
                let prof = cuda::profile_function(f);
                gpu.device_alloc_sites += prof.alloc_calls();
            }
        }
        gpu.closed_source_calls = count("cuda-closed-source-lib");

        // Architecture metrics.
        let mean_cohesion = if modules.is_empty() {
            1.0
        } else {
            modules.iter().map(|m| m.cohesion).sum::<f64>() / modules.len() as f64
        };
        let module_of: HashMap<String, String> = cx
            .entries
            .iter()
            .flat_map(|e| {
                e.unit
                    .functions()
                    .into_iter()
                    .map(move |f| (f.sig.qualified_name.clone(), e.module.to_string()))
            })
            .collect();
        let coupling_edges: usize =
            adsafe_metrics::coupling(&cx.graph, &module_of).values().sum();
        let total_functions: usize = modules.iter().map(|m| m.function_count()).sum();
        let mean_interface_params = if modules.is_empty() {
            0.0
        } else {
            modules.iter().map(|m| m.mean_params * m.function_count() as f64).sum::<f64>()
                / total_functions.max(1) as f64
        };

        Evidence {
            total_loc: modules.iter().map(|m| m.loc.nloc).sum(),
            total_functions,
            functions_over_cc10: modules.iter().map(|m| m.functions_over(10)).sum(),
            functions_over_cc20: modules.iter().map(|m| m.functions_over(20)).sum(),
            functions_over_cc50: modules.iter().map(|m| m.functions_over(50)).sum(),
            module_locs: modules.iter().map(|m| (m.name.clone(), m.loc.nloc)).collect(),
            misra_violations,
            explicit_casts: count("typing-explicit-cast"),
            implicit_conversions: unit.implicit_conversions,
            validation_ratio: adsafe_checkers::defensive::validation_ratio(cx),
            unchecked_calls: count("defensive-unchecked-return"),
            global_definitions: unit.global_definitions,
            style_findings,
            naming_findings,
            mean_cohesion,
            coupling_edges,
            mean_interface_params,
            hierarchical_structure: true,
            has_scheduling_policy: self.options.has_scheduling_policy,
            uses_interrupts: false,
            multi_exit_pct: unit.multi_exit_pct(),
            dynamic_alloc_sites: unit.dynamic_alloc_sites,
            maybe_uninit_reads: unit.maybe_uninit_reads,
            shadowed_declarations: unit.shadowed_declarations,
            pointer_uses: unit.pointer_uses,
            opaque_regions: unit.opaque_regions,
            global_access_functions: count("design-global-use"),
            goto_count: unit.goto_count,
            recursive_functions: unit.recursive_functions,
            gpu,
            coverage: self.options.coverage,
        }
    }
}

/// Records how far past its budget a phase actually ran.
///
/// `Budgets::exceeded` is only consulted *between* items, so a slow
/// item can carry a phase well past its deadline without any record of
/// the magnitude. This notes the overrun as a `{phase}.budget.overrun_ms`
/// counter and a `Timeout`-severity fault comparing actual against
/// budgeted milliseconds. `Timeout` sits below `Degraded`, so the
/// report's evidence is not marked degraded by the note alone.
fn note_phase_overrun(
    log: &mut FaultLog,
    phase: FaultPhase,
    phase_start: Instant,
    budgets: &Budgets,
) {
    let Some(deadline) = budgets.phase_deadline else { return };
    let elapsed = phase_start.elapsed();
    if elapsed <= deadline {
        return;
    }
    let budget_ms = deadline.as_millis() as u64;
    let actual_ms = elapsed.as_millis() as u64;
    adsafe_trace::counter(&format!("{}.budget.overrun_ms", phase.name()))
        .add(actual_ms.saturating_sub(budget_ms));
    log.push(Fault {
        phase,
        path: format!("{}-phase-budget", phase.name()),
        severity: FaultSeverity::Timeout,
        cause: FaultCause::DeadlineOverrun { budget_ms, actual_ms },
        recovery: Recovery::Noted,
    });
}

/// An injected failpoint panic keeps its identity in the fault log.
fn classify_panic(msg: &str) -> FaultCause {
    if msg.starts_with("failpoint `") {
        FaultCause::Injected(msg.to_string())
    } else {
        FaultCause::Panic(msg.to_string())
    }
}

/// Convenience: assess a generated Apollo-like corpus.
pub fn assess_corpus(
    files: &[adsafe_corpus::GeneratedFile],
    options: AssessmentOptions,
) -> AssessmentReport {
    let mut a = Assessment::new().with_options(options);
    for f in files {
        a.add_file(&f.module, &f.path, &f.text);
    }
    a.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsafe_iso26262::{Status, TableId};

    fn small_report() -> AssessmentReport {
        let mut a = Assessment::new();
        a.add_file(
            "perception",
            "perception/track.cc",
            "int g_tracks;\n\
             int Update(int* state, int delta) {\n\
               if (delta < 0) return -1;\n\
               g_tracks = g_tracks + 1;\n\
               *state = *state + delta;\n\
               return (int)(*state * 1.5f);\n\
             }\n",
        );
        a.add_file(
            "perception",
            "perception/detect.cu",
            adsafe_corpus::yolo::SCALE_BIAS_CU,
        );
        a.run()
    }

    #[test]
    fn evidence_reflects_the_code() {
        let r = small_report();
        assert_eq!(r.evidence.global_definitions, 1);
        assert!(r.evidence.explicit_casts >= 1);
        assert!(r.evidence.multi_exit_pct > 0.0);
        assert_eq!(r.evidence.gpu.kernel_count, 1);
        assert_eq!(r.evidence.gpu.kernel_pointer_params, 2);
        assert!(r.evidence.gpu.device_alloc_sites >= 2);
        assert!(r.evidence.pointer_uses > 0);
        assert_eq!(r.modules.len(), 1);
    }

    #[test]
    fn clean_run_is_fault_free() {
        let r = small_report();
        assert!(r.faults.is_empty(), "{:?}", r.faults);
        assert!(!r.degraded);
    }

    #[test]
    fn compliance_report_has_25_verdicts() {
        let r = small_report();
        assert_eq!(r.compliance.verdicts.len(), 25);
        assert_eq!(r.observations.len(), 14);
        // Dynamic device memory → unit-design row 2 non-compliant with
        // research-class effort (CUDA intrinsic).
        let row2 = &r.compliance.table(TableId::UnitDesign)[1];
        assert_eq!(row2.status, Status::NonCompliant);
        assert_eq!(row2.effort, adsafe_iso26262::Effort::Research);
    }

    #[test]
    fn observation_4_holds_for_cuda_code() {
        let r = small_report();
        let obs4 = &r.observations[3];
        assert!(obs4.holds);
        assert!(obs4.text.contains("CUDA"));
    }

    #[test]
    fn diagnostics_queryable() {
        let r = small_report();
        assert!(!r.diagnostics_for("misra-21.3-dynamic-memory").is_empty());
        assert!(r.diagnostics_for("made-up-check").is_empty());
    }

    #[test]
    fn corpus_assessment_smoke() {
        let spec = adsafe_corpus::ApolloSpec::test_scale();
        let files = adsafe_corpus::generate(&spec);
        let r = assess_corpus(&files, AssessmentOptions::default());
        assert_eq!(r.evidence.total_functions > 100, true);
        assert!(r.evidence.functions_over_cc10 >= spec.total_over_10());
        assert!(r.compliance.blocking_count() > 0);
    }

    #[test]
    fn resynced_file_degrades_but_contributes() {
        let mut a = Assessment::new();
        a.add_file("m", "good.cc", "int f() { return 1; }\n");
        // Mangled enough that the parser must resynchronise.
        a.add_file("m", "bad.cc", "int ; ] ) } = 5 +;\nint h() { return 2; }\n");
        let r = a.run();
        assert!(r.degraded);
        assert!(r.faults.iter().any(|f| {
            f.path == "bad.cc"
                && matches!(f.cause, FaultCause::ParseResync { .. })
                && f.recovery == Recovery::ResyncParse
        }));
        // Both files are in the module metrics.
        assert_eq!(r.modules.len(), 1);
        assert_eq!(r.modules[0].file_count, 2);
    }

    #[test]
    fn injected_parse_panic_falls_to_token_metrics() {
        let _g = failpoints::Armed::new(
            "pipeline::parse_file::m/a.cc",
            failpoints::Action::Panic("parser bug".into()),
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut a = Assessment::new();
        a.add_file("m", "m/a.cc", "int f() { if (f()) return 1; return 0; }\n");
        a.add_file("m", "m/b.cc", "int g() { return 2; }\n");
        let r = a.run();
        std::panic::set_hook(prev);
        assert!(r.degraded);
        let f = r
            .faults
            .iter()
            .find(|f| f.path == "m/a.cc")
            .expect("fault for panicked file");
        assert_eq!(f.recovery, Recovery::TokenMetrics);
        assert!(matches!(f.cause, FaultCause::Injected(_)));
        // The panicked file still contributes NLOC via tier 3.
        let m = &r.modules[0];
        assert_eq!(m.file_count, 2);
        assert_eq!(m.absorbed_files, 1);
        assert!(m.loc.nloc >= 2);
    }

    #[test]
    fn non_utf8_input_is_ingestible() {
        let mut a = Assessment::new();
        a.add_file_bytes("m", "weird.cc", b"int f() { return 1; }\n\xff\xfe\x00junk\n");
        let r = a.run();
        assert!(r.degraded);
        assert!(r.faults.iter().any(|f| {
            f.phase == FaultPhase::Ingest && matches!(f.cause, FaultCause::NonUtf8 { .. })
        }));
        assert_eq!(r.modules[0].file_count, 1);
    }

    #[test]
    fn parse_deadline_sends_remaining_files_to_tier3() {
        let _g = failpoints::Armed::new(
            "pipeline::parse_file",
            failpoints::Action::Delay(Duration::from_millis(25)),
        );
        let mut a = Assessment::new().with_options(AssessmentOptions {
            budgets: Budgets { phase_deadline: Some(Duration::from_millis(10)) },
            ..AssessmentOptions::default()
        });
        for i in 0..4 {
            a.add_file("m", &format!("f{i}.cc"), "int f() { return 1; }\n");
        }
        let r = a.run();
        assert!(r.degraded);
        assert!(r
            .faults
            .iter()
            .any(|f| matches!(f.cause, FaultCause::DeadlineExceeded { .. })));
        // Every file still contributes evidence.
        assert_eq!(r.modules[0].file_count, 4);
        assert!(r.modules[0].absorbed_files >= 1);
    }
}
