//! The assessment pipeline: source files in, compliance report out.
//!
//! This is the paper's methodology as an API: parse the whole code base,
//! run metrics and checkers, assemble [`Evidence`], judge it against ISO
//! 26262 Part 6 at a target ASIL, and synthesise the observations.

use adsafe_checkers::{
    default_checks, run_checks, AnalysisSet, CheckContext, Diagnostic,
};
use adsafe_iso26262::{
    assess, observations, Asil, ComplianceReport, Evidence, GpuEvidence, Observation,
};
use adsafe_lang::cuda;
use adsafe_metrics::{module_metrics, ModuleMetrics};
use std::collections::HashMap;

/// Inputs the analyser cannot derive from source (supplied by the
/// integrator, as in a real assessment).
#[derive(Debug, Clone)]
pub struct AssessmentOptions {
    /// Target ASIL (the paper uses ASIL-D for the whole AD pipeline).
    pub asil: Asil,
    /// Whether the deployment defines scheduling properties.
    pub has_scheduling_policy: bool,
    /// Structural coverage results to fold in, if measured.
    pub coverage: Option<adsafe_iso26262::CoverageEvidence>,
}

impl Default for AssessmentOptions {
    fn default() -> Self {
        AssessmentOptions { asil: Asil::D, has_scheduling_policy: false, coverage: None }
    }
}

/// The full output of one assessment run.
#[derive(Debug)]
pub struct AssessmentReport {
    /// Assembled quantitative evidence.
    pub evidence: Evidence,
    /// Per-topic verdicts for the three Part-6 tables.
    pub compliance: ComplianceReport,
    /// The fourteen synthesised observations.
    pub observations: Vec<Observation>,
    /// Per-module metrics (Figure 3's data).
    pub modules: Vec<ModuleMetrics>,
    /// Every diagnostic, sorted by check then position.
    pub diagnostics: Vec<Diagnostic>,
}

impl AssessmentReport {
    /// Diagnostics of one check.
    pub fn diagnostics_for(&self, check_id: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.check_id == check_id).collect()
    }
}

/// The assessment driver. Add files, then [`Assessment::run`].
#[derive(Debug, Default)]
pub struct Assessment {
    set: AnalysisSet,
    options: AssessmentOptions,
}

impl Assessment {
    /// Creates an empty assessment with default options (ASIL-D).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the options.
    pub fn with_options(mut self, options: AssessmentOptions) -> Self {
        self.options = options;
        self
    }

    /// Adds one source file under a module.
    pub fn add_file(&mut self, module: &str, path: &str, text: &str) -> &mut Self {
        self.set.add(module, path, text);
        self
    }

    /// Runs metrics, checkers, and the compliance engine.
    pub fn run(&self) -> AssessmentReport {
        let cx = self.set.context();
        let checks = default_checks();
        let mut diagnostics = run_checks(&checks, &cx);
        // Macro naming runs from PpInfo (outside the Check trait).
        for (_, _, parsed) in self.set.parsed() {
            diagnostics.extend(adsafe_checkers::naming::check_macros(&parsed.pp));
        }

        let modules = self.module_metrics(&cx);
        let unit = adsafe_checkers::unit_design_stats(&cx);
        let evidence = self.assemble_evidence(&cx, &modules, &unit, &diagnostics);
        let compliance = assess(&evidence, self.options.asil);
        let observations = observations(&evidence);
        AssessmentReport { evidence, compliance, observations, modules, diagnostics }
    }

    fn module_metrics(&self, cx: &CheckContext<'_>) -> Vec<ModuleMetrics> {
        cx.modules()
            .into_iter()
            .map(|m| {
                let files: Vec<_> = cx
                    .module_entries(m)
                    .into_iter()
                    .map(|e| (e.file, e.unit))
                    .collect();
                module_metrics(m, &files)
            })
            .collect()
    }

    fn assemble_evidence(
        &self,
        cx: &CheckContext<'_>,
        modules: &[ModuleMetrics],
        unit: &adsafe_checkers::UnitDesignStats,
        diagnostics: &[Diagnostic],
    ) -> Evidence {
        let count = |id: &str| diagnostics.iter().filter(|d| d.check_id == id).count();
        let misra_ids = [
            "misra-15.1-goto",
            "misra-15.5-multi-exit",
            "misra-17.2-recursion",
            "misra-21.3-dynamic-memory",
            "misra-12.3-comma",
            "misra-19.2-union",
            "misra-16.4-switch-default",
            "misra-2.1-unreachable",
            "misra-17.1-variadic",
            "misra-7.1-octal",
            "misra-13.5-side-effect",
            "misra-decl-one-per-stmt",
        ];
        let misra_violations: usize = misra_ids.iter().map(|id| count(id)).sum();
        let style_findings = count("style-line")
            + count("style-indent")
            + count("style-brace")
            + count("style-include-guard");
        let naming_findings =
            count("naming-type") + count("naming-variable") + count("naming-macro");

        // GPU evidence from the CUDA profiles.
        let mut gpu = GpuEvidence {
            language_subset_available: false,
            coverage_tool_available: false,
            ..GpuEvidence::default()
        };
        for e in &cx.entries {
            for k in cuda::kernels(e.unit) {
                gpu.kernel_count += 1;
                gpu.kernel_pointer_params +=
                    k.sig.params.iter().filter(|p| p.ty.is_pointer_like()).count();
            }
            for f in e.unit.functions() {
                let prof = cuda::profile_function(f);
                gpu.device_alloc_sites += prof.alloc_calls();
            }
        }
        gpu.closed_source_calls = count("cuda-closed-source-lib");

        // Architecture metrics.
        let mean_cohesion = if modules.is_empty() {
            1.0
        } else {
            modules.iter().map(|m| m.cohesion).sum::<f64>() / modules.len() as f64
        };
        let module_of: HashMap<String, String> = cx
            .entries
            .iter()
            .flat_map(|e| {
                e.unit
                    .functions()
                    .into_iter()
                    .map(move |f| (f.sig.qualified_name.clone(), e.module.to_string()))
            })
            .collect();
        let coupling_edges: usize =
            adsafe_metrics::coupling(&cx.graph, &module_of).values().sum();
        let total_functions: usize = modules.iter().map(|m| m.function_count()).sum();
        let mean_interface_params = if modules.is_empty() {
            0.0
        } else {
            modules.iter().map(|m| m.mean_params * m.function_count() as f64).sum::<f64>()
                / total_functions.max(1) as f64
        };

        Evidence {
            total_loc: modules.iter().map(|m| m.loc.nloc).sum(),
            total_functions,
            functions_over_cc10: modules.iter().map(|m| m.functions_over(10)).sum(),
            functions_over_cc20: modules.iter().map(|m| m.functions_over(20)).sum(),
            functions_over_cc50: modules.iter().map(|m| m.functions_over(50)).sum(),
            module_locs: modules.iter().map(|m| (m.name.clone(), m.loc.nloc)).collect(),
            misra_violations,
            explicit_casts: count("typing-explicit-cast"),
            implicit_conversions: unit.implicit_conversions,
            validation_ratio: adsafe_checkers::defensive::validation_ratio(cx),
            unchecked_calls: count("defensive-unchecked-return"),
            global_definitions: unit.global_definitions,
            style_findings,
            naming_findings,
            mean_cohesion,
            coupling_edges,
            mean_interface_params,
            hierarchical_structure: true,
            has_scheduling_policy: self.options.has_scheduling_policy,
            uses_interrupts: false,
            multi_exit_pct: unit.multi_exit_pct(),
            dynamic_alloc_sites: unit.dynamic_alloc_sites,
            maybe_uninit_reads: unit.maybe_uninit_reads,
            shadowed_declarations: unit.shadowed_declarations,
            pointer_uses: unit.pointer_uses,
            opaque_regions: unit.opaque_regions,
            global_access_functions: count("design-global-use"),
            goto_count: unit.goto_count,
            recursive_functions: unit.recursive_functions,
            gpu,
            coverage: self.options.coverage,
        }
    }
}

/// Convenience: assess a generated Apollo-like corpus.
pub fn assess_corpus(
    files: &[adsafe_corpus::GeneratedFile],
    options: AssessmentOptions,
) -> AssessmentReport {
    let mut a = Assessment::new().with_options(options);
    for f in files {
        a.add_file(&f.module, &f.path, &f.text);
    }
    a.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsafe_iso26262::{Status, TableId};

    fn small_report() -> AssessmentReport {
        let mut a = Assessment::new();
        a.add_file(
            "perception",
            "perception/track.cc",
            "int g_tracks;\n\
             int Update(int* state, int delta) {\n\
               if (delta < 0) return -1;\n\
               g_tracks = g_tracks + 1;\n\
               *state = *state + delta;\n\
               return (int)(*state * 1.5f);\n\
             }\n",
        );
        a.add_file(
            "perception",
            "perception/detect.cu",
            adsafe_corpus::yolo::SCALE_BIAS_CU,
        );
        a.run()
    }

    #[test]
    fn evidence_reflects_the_code() {
        let r = small_report();
        assert_eq!(r.evidence.global_definitions, 1);
        assert!(r.evidence.explicit_casts >= 1);
        assert!(r.evidence.multi_exit_pct > 0.0);
        assert_eq!(r.evidence.gpu.kernel_count, 1);
        assert_eq!(r.evidence.gpu.kernel_pointer_params, 2);
        assert!(r.evidence.gpu.device_alloc_sites >= 2);
        assert!(r.evidence.pointer_uses > 0);
        assert_eq!(r.modules.len(), 1);
    }

    #[test]
    fn compliance_report_has_25_verdicts() {
        let r = small_report();
        assert_eq!(r.compliance.verdicts.len(), 25);
        assert_eq!(r.observations.len(), 14);
        // Dynamic device memory → unit-design row 2 non-compliant with
        // research-class effort (CUDA intrinsic).
        let row2 = &r.compliance.table(TableId::UnitDesign)[1];
        assert_eq!(row2.status, Status::NonCompliant);
        assert_eq!(row2.effort, adsafe_iso26262::Effort::Research);
    }

    #[test]
    fn observation_4_holds_for_cuda_code() {
        let r = small_report();
        let obs4 = &r.observations[3];
        assert!(obs4.holds);
        assert!(obs4.text.contains("CUDA"));
    }

    #[test]
    fn diagnostics_queryable() {
        let r = small_report();
        assert!(!r.diagnostics_for("misra-21.3-dynamic-memory").is_empty());
        assert!(r.diagnostics_for("made-up-check").is_empty());
    }

    #[test]
    fn corpus_assessment_smoke() {
        let spec = adsafe_corpus::ApolloSpec::test_scale();
        let files = adsafe_corpus::generate(&spec);
        let r = assess_corpus(&files, AssessmentOptions::default());
        assert_eq!(r.evidence.total_functions > 100, true);
        assert!(r.evidence.functions_over_cc10 >= spec.total_over_10());
        assert!(r.compliance.blocking_count() > 0);
    }
}
