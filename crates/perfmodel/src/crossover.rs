//! Crossover analysis: at what problem size does the GPU overtake the
//! CPU? The paper's Figure 7 shows the CPU two orders of magnitude
//! behind *on DNN-scale kernels*; the full picture the roofline model
//! exposes is that below a certain size, kernel-launch overhead makes
//! the CPU the faster device — the reason AD frameworks batch small
//! operators before offloading them.

use crate::library::{GemmShape, Library};

/// One crossover sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossoverPoint {
    /// Square GEMM dimension.
    pub size: usize,
    /// GPU (cuBLAS) time in microseconds.
    pub gpu_us: f64,
    /// CPU (OpenBLAS) time in microseconds.
    pub cpu_us: f64,
}

impl CrossoverPoint {
    /// Whether the GPU wins at this size.
    pub fn gpu_wins(&self) -> bool {
        self.gpu_us < self.cpu_us
    }
}

/// Sweeps square GEMMs from `lo` to `hi` (doubling) and reports the
/// GPU/CPU times at each size.
pub fn gemm_crossover_sweep(lo: usize, hi: usize) -> Vec<CrossoverPoint> {
    let mut out = Vec::new();
    let mut s = lo.max(1);
    while s <= hi {
        let shape = GemmShape::square(s);
        out.push(CrossoverPoint {
            size: s,
            gpu_us: Library::CuBlas.gemm_time_s(&shape) * 1e6,
            cpu_us: Library::OpenBlas.gemm_time_s(&shape) * 1e6,
        });
        s *= 2;
    }
    out
}

/// The smallest swept size at which the GPU wins, if any.
pub fn gpu_break_even(points: &[CrossoverPoint]) -> Option<usize> {
    points.iter().find(|p| p.gpu_wins()).map(|p| p.size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_wins_tiny_gpu_wins_large() {
        let sweep = gemm_crossover_sweep(4, 4096);
        assert!(!sweep.first().unwrap().gpu_wins(), "launch overhead dominates at 4x4");
        assert!(sweep.last().unwrap().gpu_wins(), "GPU must win at 4096");
    }

    #[test]
    fn break_even_exists_and_is_plausible() {
        let sweep = gemm_crossover_sweep(4, 4096);
        let be = gpu_break_even(&sweep).expect("crossover exists");
        assert!(
            (16..=1024).contains(&be),
            "break-even at {be} is outside the plausible band"
        );
    }

    #[test]
    fn sweep_is_monotone_in_size() {
        let sweep = gemm_crossover_sweep(8, 2048);
        for w in sweep.windows(2) {
            assert!(w[1].size == w[0].size * 2);
            assert!(w[1].gpu_us >= w[0].gpu_us);
            assert!(w[1].cpu_us >= w[0].cpu_us);
        }
    }
}
