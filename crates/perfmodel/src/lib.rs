//! # adsafe-perfmodel — GPU/CPU library performance models
//!
//! Roofline-style analytic models of the closed-source (cuBLAS, cuDNN,
//! TensorRT) and open-source (CUTLASS, ISAAC, ATLAS, OpenBLAS) libraries
//! the paper compares in Figures 7 and 8. The authors ran these on an
//! NVIDIA testbed; this crate substitutes calibrated models that
//! reproduce the published *relative* behaviour — who wins, by what
//! factor, and where the crossovers fall — deterministically on any
//! machine. The real-kernel counterpart lives in `adsafe-gpu`, whose
//! Criterion benches measure the same naive/tiled/autotuned contrasts.
//!
//! ```
//! use adsafe_perfmodel::{GemmShape, Library};
//!
//! let shape = GemmShape::square(1024);
//! let rel = Library::CuBlas.gemm_time_s(&shape) / Library::Cutlass.gemm_time_s(&shape);
//! assert!(rel > 0.75 && rel < 1.2); // Figure 8a: comparable performance
//! ```

#![warn(missing_docs)]

pub mod crossover;
pub mod device;
pub mod figures;
pub mod library;
pub mod workloads;

pub use crossover::{gemm_crossover_sweep, gpu_break_even, CrossoverPoint};
pub use device::DeviceModel;
pub use figures::{
    fig7_detection_times, fig8a_cutlass_vs_cublas, fig8b_isaac_vs_cudnn, summarize, Point,
    SeriesSummary,
};
pub use library::{GemmShape, Library};
pub use workloads::{conv_suites, gemm_dnn_shapes, gemm_sweep, yolo_layers, ConvWorkload};
