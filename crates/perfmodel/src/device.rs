//! Device models: the hardware half of the roofline estimate.

/// A compute device characterised for roofline modeling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Display name.
    pub name: &'static str,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Sustained memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Fixed per-call overhead in microseconds (kernel launch / dispatch).
    pub overhead_us: f64,
}

impl DeviceModel {
    /// A Volta-class discrete GPU, the kind of hardware the paper's
    /// NVIDIA testbed used.
    pub const fn datacenter_gpu() -> Self {
        DeviceModel {
            name: "datacenter GPU (Volta-class)",
            peak_gflops: 14_000.0,
            mem_bw_gbs: 900.0,
            overhead_us: 8.0,
        }
    }

    /// A desktop-class CPU with a good vector unit: the ATLAS/OpenBLAS
    /// target. Roughly two orders of magnitude below the GPU on
    /// compute-bound DNN kernels, matching the paper's Figure 7 note.
    pub const fn desktop_cpu() -> Self {
        DeviceModel {
            name: "desktop CPU (AVX2-class)",
            peak_gflops: 150.0,
            mem_bw_gbs: 40.0,
            overhead_us: 0.5,
        }
    }

    /// Roofline execution-time estimate in seconds for a kernel with the
    /// given work, at the given fraction of peak (`efficiency` ∈ (0,1]).
    pub fn time_s(&self, flops: u64, bytes: u64, efficiency: f64) -> f64 {
        let eff = efficiency.clamp(1e-3, 1.0);
        let compute = flops as f64 / (self.peak_gflops * 1e9 * eff);
        let memory = bytes as f64 / (self.mem_bw_gbs * 1e9);
        compute.max(memory) + self.overhead_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_vs_cpu_peak_ratio_is_about_100x() {
        let gpu = DeviceModel::datacenter_gpu();
        let cpu = DeviceModel::desktop_cpu();
        let ratio = gpu.peak_gflops / cpu.peak_gflops;
        assert!((50.0..200.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn roofline_compute_bound() {
        let gpu = DeviceModel::datacenter_gpu();
        // Huge flops, tiny bytes → compute-bound.
        let t = gpu.time_s(10_u64.pow(12), 1_000, 1.0);
        let expected = 1e12 / (14_000.0 * 1e9) + 8e-6;
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn roofline_memory_bound() {
        let gpu = DeviceModel::datacenter_gpu();
        // Tiny flops, huge bytes → memory-bound.
        let t = gpu.time_s(1_000, 9 * 10_u64.pow(11), 1.0);
        let expected = 9e11 / (900.0 * 1e9) + 8e-6;
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn lower_efficiency_is_slower() {
        let gpu = DeviceModel::datacenter_gpu();
        let fast = gpu.time_s(10_u64.pow(12), 0, 1.0);
        let slow = gpu.time_s(10_u64.pow(12), 0, 0.5);
        assert!(slow > fast * 1.9);
    }

    #[test]
    fn efficiency_is_clamped() {
        let gpu = DeviceModel::datacenter_gpu();
        let t1 = gpu.time_s(1_000_000, 0, 5.0); // clamped to 1.0
        let t2 = gpu.time_s(1_000_000, 0, 1.0);
        assert_eq!(t1, t2);
    }
}
