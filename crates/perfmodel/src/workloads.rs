//! Workload suites: the GEMM shapes and convolution layers behind the
//! paper's Figures 7 and 8 (YOLO layers, a square GEMM sweep, and
//! DeepBench-style named suites from several application domains).

use crate::library::GemmShape;

/// A named convolution workload, already lowered to its im2col GEMM.
#[derive(Debug, Clone)]
pub struct ConvWorkload {
    /// Workload name (e.g. `"vision/resnet-conv3"`).
    pub name: String,
    /// Lowered GEMM shape (`out_c × (out_h·out_w) × (in_c·k·k)`).
    pub gemm: GemmShape,
    /// Whether the shape is irregular (skinny/odd — favours autotuning).
    pub irregular: bool,
}

/// The YOLOv2-like layer stack the paper's object-detection case study
/// exercises, as im2col GEMMs for a 416×416 input.
pub fn yolo_layers() -> Vec<ConvWorkload> {
    // (out_c, out_hw, in_c, k)
    let layers: [(usize, usize, usize, usize); 9] = [
        (32, 416, 3, 3),
        (64, 208, 32, 3),
        (128, 104, 64, 3),
        (64, 104, 128, 1),
        (128, 104, 64, 3),
        (256, 52, 128, 3),
        (512, 26, 256, 3),
        (1024, 13, 512, 3),
        (425, 13, 1024, 1),
    ];
    layers
        .iter()
        .enumerate()
        .map(|(i, &(oc, hw, ic, k))| ConvWorkload {
            name: format!("yolo/conv{}", i + 1),
            gemm: GemmShape { m: oc, n: hw * hw, k: ic * k * k },
            irregular: k == 1 || oc % 32 != 0,
        })
        .collect()
}

/// Square GEMM sweep for Figure 8a.
pub fn gemm_sweep() -> Vec<GemmShape> {
    [128, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096]
        .iter()
        .map(|&s| GemmShape::square(s))
        .collect()
}

/// Rectangular GEMM shapes common in DNN inference (skinny/tall cases
/// where input-aware tuning matters), also part of Figure 8a's sweep.
pub fn gemm_dnn_shapes() -> Vec<GemmShape> {
    vec![
        GemmShape { m: 64, n: 173_056, k: 27 },
        GemmShape { m: 512, n: 676, k: 4608 },
        GemmShape { m: 1024, n: 169, k: 9216 },
        GemmShape { m: 35, n: 8457, k: 4096 },
        GemmShape { m: 3072, n: 128, k: 1024 },
        GemmShape { m: 5124, n: 9124, k: 2048 },
    ]
}

/// DeepBench-style conv suites by domain, for Figure 8b's x-axis.
pub fn conv_suites() -> Vec<ConvWorkload> {
    let mut out = Vec::new();
    let mut add = |name: &str, m: usize, n: usize, k: usize, irregular: bool| {
        out.push(ConvWorkload { name: name.to_string(), gemm: GemmShape { m, n, k }, irregular });
    };
    // vision
    add("vision/vgg-conv1", 64, 50_176, 27, false);
    add("vision/vgg-conv3", 256, 3_136, 1_152, false);
    add("vision/resnet-conv2", 64, 3_136, 576, false);
    add("vision/resnet-conv5", 512, 49, 4_608, true);
    // speech
    add("speech/ds2-conv1", 32, 79_200, 410, true);
    add("speech/ds2-conv2", 32, 39_600, 800, true);
    // ocr / seq
    add("ocr/crnn-conv4", 512, 6_400, 2_304, false);
    add("ocr/crnn-conv6", 512, 1_536, 4_608, true);
    // scientific / generic
    add("sci/stencil-gemm", 96, 16_384, 147, true);
    add("sci/spectral", 384, 4_096, 768, false);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yolo_stack_shapes() {
        let layers = yolo_layers();
        assert_eq!(layers.len(), 9);
        // First layer: 32 filters over 3×3×3 patches of a 416×416 map.
        assert_eq!(layers[0].gemm, GemmShape { m: 32, n: 416 * 416, k: 27 });
        // Head is 1×1 conv → k = in_c.
        assert_eq!(layers[8].gemm.k, 1024);
        assert!(layers[3].irregular, "1x1 conv counts as irregular");
        // Total workload is in the GFLOP range (real YOLO scale).
        let total: u64 = layers.iter().map(|l| l.gemm.flops()).sum();
        assert!(total > 5_000_000_000, "total = {total}");
    }

    #[test]
    fn sweeps_are_sorted_and_nonempty() {
        let sweep = gemm_sweep();
        assert_eq!(sweep.len(), 10);
        assert!(sweep.windows(2).all(|w| w[0].m < w[1].m));
        assert!(!gemm_dnn_shapes().is_empty());
    }

    #[test]
    fn conv_suites_cover_domains() {
        let suites = conv_suites();
        assert!(suites.len() >= 10);
        for prefix in ["vision/", "speech/", "ocr/", "sci/"] {
            assert!(suites.iter().any(|w| w.name.starts_with(prefix)), "missing {prefix}");
        }
        assert!(suites.iter().any(|w| w.irregular));
        assert!(suites.iter().any(|w| !w.irregular));
    }
}
