//! Library models: shape-dependent efficiency curves for the closed- and
//! open-source GEMM/convolution libraries the paper compares.
//!
//! Calibration targets come from the published relative-performance
//! results the paper cites: CUTLASS sustains a large fraction of cuBLAS
//! across GEMM shapes (Figure 8a), ISAAC is competitive with — and on
//! some input shapes faster than — cuDNN (Figure 8b, per Tillet & Cox
//! SC'17), and CPU BLAS trails the GPU libraries by two orders of
//! magnitude on DNN workloads (Figure 7).

use crate::device::DeviceModel;

/// A GEMM problem: `C(m×n) = A(m×k) · B(k×n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of A/C.
    pub m: usize,
    /// Columns of B/C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmShape {
    /// Square shape.
    pub fn square(s: usize) -> Self {
        GemmShape { m: s, n: s, k: s }
    }

    /// Multiply-accumulate FLOPs.
    pub fn flops(&self) -> u64 {
        2 * (self.m as u64) * (self.n as u64) * (self.k as u64)
    }

    /// Bytes moved (A + B + C, single precision, one pass).
    pub fn bytes(&self) -> u64 {
        4 * ((self.m * self.k) as u64 + (self.k * self.n) as u64 + (self.m * self.n) as u64)
    }

    /// Smallest dimension (drives tiling efficiency).
    pub fn min_dim(&self) -> usize {
        self.m.min(self.n).min(self.k)
    }
}

/// Deterministic per-shape jitter in `[-1, 1]` so curves have the
/// benchmark-to-benchmark variation real measurements show.
fn jitter(seed: u64) -> f64 {
    let x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0xD1B54A32D192ED03);
    let y = (x ^ (x >> 31)).wrapping_mul(0xBF58476D1CE4E5B9);
    ((y >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// The libraries of the paper's Figure 7/8 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Library {
    /// NVIDIA cuBLAS (closed source).
    CuBlas,
    /// NVIDIA CUTLASS (open source).
    Cutlass,
    /// NVIDIA cuDNN (closed source).
    CuDnn,
    /// ISAAC input-aware autotuner (open source).
    Isaac,
    /// NVIDIA TensorRT (closed source).
    TensorRt,
    /// ATLAS CPU BLAS (open source).
    Atlas,
    /// OpenBLAS CPU BLAS (open source).
    OpenBlas,
}

impl Library {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Library::CuBlas => "cuBLAS",
            Library::Cutlass => "CUTLASS",
            Library::CuDnn => "cuDNN",
            Library::Isaac => "ISAAC",
            Library::TensorRt => "TensorRT",
            Library::Atlas => "ATLAS",
            Library::OpenBlas => "OpenBLAS",
        }
    }

    /// Whether the library ships source (Observation 12 hinges on this).
    pub fn is_open_source(&self) -> bool {
        matches!(self, Library::Cutlass | Library::Isaac | Library::Atlas | Library::OpenBlas)
    }

    /// The device this library runs on.
    pub fn device(&self) -> DeviceModel {
        match self {
            Library::Atlas | Library::OpenBlas => DeviceModel::desktop_cpu(),
            _ => DeviceModel::datacenter_gpu(),
        }
    }

    /// Fraction of device peak sustained on a GEMM of `shape`.
    pub fn gemm_efficiency(&self, shape: &GemmShape) -> f64 {
        // Size factor: small problems underutilise every library.
        let size = shape.min_dim() as f64;
        let util = (size / (size + 192.0)).min(1.0);
        let seed = (shape.m as u64) << 40 | (shape.n as u64) << 20 | shape.k as u64;
        let base = match self {
            Library::CuBlas => 0.92,
            // CUTLASS: "performance comparable to cuBLAS" — slightly
            // below on average, occasionally ahead on odd shapes.
            Library::Cutlass => 0.87 + 0.06 * jitter(seed),
            Library::CuDnn => 0.90,
            // ISAAC is input-aware: better on skinny/odd shapes where
            // fixed-tile libraries fall off.
            Library::Isaac => {
                let skinny = if shape.min_dim() * 4 < shape.m.max(shape.n).max(shape.k) {
                    0.08
                } else {
                    0.0
                };
                0.86 + skinny + 0.05 * jitter(seed ^ 0xABCD)
            }
            Library::TensorRt => 0.94,
            Library::Atlas => 0.55 + 0.04 * jitter(seed ^ 0x11),
            Library::OpenBlas => 0.65 + 0.04 * jitter(seed ^ 0x22),
        };
        (base * util).clamp(0.01, 1.0)
    }

    /// Modeled GEMM execution time in seconds.
    pub fn gemm_time_s(&self, shape: &GemmShape) -> f64 {
        let dev = self.device();
        dev.time_s(shape.flops(), shape.bytes(), self.gemm_efficiency(shape))
    }

    /// Fraction of device peak sustained on a convolution (modeled via
    /// its im2col GEMM shape plus a lowering overhead factor).
    pub fn conv_efficiency(&self, gemm: &GemmShape, irregular: bool) -> f64 {
        let mut eff = self.gemm_efficiency(gemm);
        match self {
            // cuDNN has specialised conv kernels: small bonus on regular
            // shapes, less so on irregular ones.
            Library::CuDnn => {
                eff *= if irregular { 0.92 } else { 1.05 };
            }
            // ISAAC's autotuning pays off most on irregular shapes.
            Library::Isaac => {
                eff *= if irregular { 1.12 } else { 0.97 };
            }
            _ => {
                eff *= 0.95; // generic im2col lowering cost
            }
        }
        eff.clamp(0.01, 1.0)
    }

    /// Modeled convolution time in seconds for the given lowered GEMM.
    pub fn conv_time_s(&self, gemm: &GemmShape, irregular: bool) -> f64 {
        let dev = self.device();
        dev.time_s(gemm.flops(), gemm.bytes(), self.conv_efficiency(gemm, irregular))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_source_classification_matches_paper_taxonomy() {
        assert!(!Library::CuBlas.is_open_source());
        assert!(!Library::CuDnn.is_open_source());
        assert!(!Library::TensorRt.is_open_source());
        assert!(Library::Cutlass.is_open_source());
        assert!(Library::Isaac.is_open_source());
        assert!(Library::OpenBlas.is_open_source());
    }

    #[test]
    fn cutlass_competitive_with_cublas_fig8a() {
        // Across a GEMM sweep, CUTLASS/cuBLAS relative perf stays in a
        // tight band around 1 (the Figure 8a shape).
        for s in [256, 512, 1024, 2048, 4096] {
            let shape = GemmShape::square(s);
            let rel = Library::CuBlas.gemm_time_s(&shape) / Library::Cutlass.gemm_time_s(&shape);
            assert!((0.75..=1.15).contains(&rel), "size {s}: rel = {rel}");
        }
    }

    #[test]
    fn isaac_competitive_with_cudnn_fig8b() {
        let mut wins = 0;
        let shapes = [
            (GemmShape { m: 64, n: 12544, k: 576 }, false),
            (GemmShape { m: 256, n: 784, k: 2304 }, false),
            (GemmShape { m: 32, n: 100_000, k: 128 }, true),
            (GemmShape { m: 512, n: 196, k: 4608 }, true),
            (GemmShape { m: 16, n: 50_000, k: 64 }, true),
        ];
        for (g, irregular) in &shapes {
            let rel = Library::CuDnn.conv_time_s(g, *irregular)
                / Library::Isaac.conv_time_s(g, *irregular);
            assert!((0.7..=1.4).contains(&rel), "rel = {rel}");
            if rel > 1.0 {
                wins += 1;
            }
        }
        assert!(wins >= 1, "ISAAC should win some shapes (input-aware)");
        assert!(wins < shapes.len(), "cuDNN should win some shapes too");
    }

    #[test]
    fn cpu_is_orders_of_magnitude_slower_fig7() {
        let shape = GemmShape { m: 256, n: 12544, k: 1152 }; // a YOLO layer
        let gpu = Library::CuBlas.gemm_time_s(&shape);
        let cpu = Library::OpenBlas.gemm_time_s(&shape);
        let ratio = cpu / gpu;
        assert!(ratio > 30.0, "CPU/GPU ratio = {ratio}");
    }

    #[test]
    fn small_problems_underutilise() {
        let small = GemmShape::square(32);
        let big = GemmShape::square(4096);
        assert!(Library::CuBlas.gemm_efficiency(&small) < Library::CuBlas.gemm_efficiency(&big));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for s in 0..200u64 {
            let j = jitter(s);
            assert!((-1.0..=1.0).contains(&j));
            assert_eq!(j, jitter(s));
        }
    }

    #[test]
    fn flops_and_bytes() {
        let s = GemmShape { m: 2, n: 3, k: 4 };
        assert_eq!(s.flops(), 48);
        assert_eq!(s.bytes(), 4 * (8 + 12 + 6));
        assert_eq!(s.min_dim(), 2);
    }
}
