//! Series generators for the paper's performance figures.

use crate::library::{GemmShape, Library};
use crate::workloads::{conv_suites, gemm_dnn_shapes, gemm_sweep, yolo_layers, ConvWorkload};

/// One named series point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// X label (shape or workload name).
    pub label: String,
    /// Y value.
    pub value: f64,
}

/// Figure 7: end-to-end object-detection time per implementation, in
/// milliseconds, summed over the YOLO layer stack.
pub fn fig7_detection_times() -> Vec<Point> {
    let layers = yolo_layers();
    let impls: [(&str, Library, bool); 6] = [
        ("cuBLAS (closed, GPU)", Library::CuBlas, false),
        ("cuDNN (closed, GPU)", Library::CuDnn, true),
        ("CUTLASS (open, GPU)", Library::Cutlass, false),
        ("ISAAC (open, GPU)", Library::Isaac, true),
        ("ATLAS (open, CPU)", Library::Atlas, false),
        ("OpenBLAS (open, CPU)", Library::OpenBlas, false),
    ];
    impls
        .iter()
        .map(|(name, lib, conv_path)| {
            let total_s: f64 = layers
                .iter()
                .map(|l| {
                    if *conv_path {
                        lib.conv_time_s(&l.gemm, l.irregular)
                    } else {
                        lib.gemm_time_s(&l.gemm)
                    }
                })
                .sum();
            Point { label: name.to_string(), value: total_s * 1e3 }
        })
        .collect()
}

/// Figure 8a: CUTLASS performance relative to cuBLAS (1.0 = parity) over
/// the square sweep plus DNN shapes.
pub fn fig8a_cutlass_vs_cublas() -> Vec<Point> {
    let mut shapes: Vec<(String, GemmShape)> = gemm_sweep()
        .into_iter()
        .map(|s| (format!("sgemm-{}", s.m), s))
        .collect();
    shapes.extend(
        gemm_dnn_shapes()
            .into_iter()
            .map(|s| (format!("dnn-{}x{}x{}", s.m, s.n, s.k), s)),
    );
    shapes
        .into_iter()
        .map(|(label, s)| Point {
            label,
            value: Library::CuBlas.gemm_time_s(&s) / Library::Cutlass.gemm_time_s(&s),
        })
        .collect()
}

/// Figure 8b: ISAAC performance relative to cuDNN (1.0 = parity) over
/// the domain conv suites.
pub fn fig8b_isaac_vs_cudnn() -> Vec<Point> {
    conv_suites()
        .into_iter()
        .map(|ConvWorkload { name, gemm, irregular }| Point {
            label: name,
            value: Library::CuDnn.conv_time_s(&gemm, irregular)
                / Library::Isaac.conv_time_s(&gemm, irregular),
        })
        .collect()
}

/// Summary statistics of a relative-performance series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Geometric mean of values.
    pub geomean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

/// Summarises a series (empty series → all 1.0).
pub fn summarize(points: &[Point]) -> SeriesSummary {
    if points.is_empty() {
        return SeriesSummary { geomean: 1.0, min: 1.0, max: 1.0 };
    }
    let log_sum: f64 = points.iter().map(|p| p.value.max(1e-12).ln()).sum();
    SeriesSummary {
        geomean: (log_sum / points.len() as f64).exp(),
        min: points.iter().map(|p| p.value).fold(f64::MAX, f64::min),
        max: points.iter().map(|p| p.value).fold(f64::MIN, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_open_matches_closed_cpu_far_behind() {
        let pts = fig7_detection_times();
        assert_eq!(pts.len(), 6);
        let get = |needle: &str| {
            pts.iter()
                .find(|p| p.label.contains(needle))
                .unwrap_or_else(|| panic!("{needle} missing"))
                .value
        };
        let cublas = get("cuBLAS");
        let cutlass = get("CUTLASS");
        let cudnn = get("cuDNN");
        let isaac = get("ISAAC");
        let atlas = get("ATLAS");
        let openblas = get("OpenBLAS");
        // Open GPU libraries competitive with closed ones (within ~35%).
        assert!(cutlass / cublas < 1.35, "CUTLASS {cutlass} vs cuBLAS {cublas}");
        assert!(isaac / cudnn < 1.35, "ISAAC {isaac} vs cuDNN {cudnn}");
        // CPU BLAS about two orders of magnitude slower.
        assert!(atlas / cublas > 30.0, "ATLAS {atlas}");
        assert!(openblas / cublas > 30.0, "OpenBLAS {openblas}");
        assert!(openblas < atlas, "OpenBLAS beats ATLAS on modern CPUs");
    }

    #[test]
    fn fig8a_band_holds() {
        let pts = fig8a_cutlass_vs_cublas();
        assert!(pts.len() >= 16);
        let s = summarize(&pts);
        assert!((0.8..=1.1).contains(&s.geomean), "geomean = {}", s.geomean);
        assert!(s.min >= 0.7, "min = {}", s.min);
        assert!(s.max <= 1.25, "max = {}", s.max);
    }

    #[test]
    fn fig8b_isaac_wins_some_loses_some() {
        let pts = fig8b_isaac_vs_cudnn();
        assert!(pts.len() >= 10);
        let wins = pts.iter().filter(|p| p.value > 1.0).count();
        assert!(wins >= 2, "ISAAC should win somewhere, wins = {wins}");
        assert!(wins < pts.len(), "cuDNN should win somewhere");
        let s = summarize(&pts);
        assert!((0.85..=1.15).contains(&s.geomean), "geomean = {}", s.geomean);
    }

    #[test]
    fn series_are_deterministic() {
        assert_eq!(fig7_detection_times(), fig7_detection_times());
        assert_eq!(fig8a_cutlass_vs_cublas(), fig8a_cutlass_vs_cublas());
        assert_eq!(fig8b_isaac_vs_cudnn(), fig8b_isaac_vs_cudnn());
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[]);
        assert_eq!(s.geomean, 1.0);
    }
}
