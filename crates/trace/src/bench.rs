//! `BENCH_pipeline.json`: the perf baseline format and regression gate.
//!
//! `adsafe-bench`'s `pipeline_trace` bench distils a [`TraceSummary`]
//! into a small JSON document of per-phase wall times. The document is
//! committed as the repository's perf baseline; CI re-runs the bench
//! and fails when any phase regresses beyond a factor (2× by default)
//! via [`BenchBaseline::regressions`] / `adsafe trace-compare`.

use crate::json::{write_escaped, Json};
use crate::summary::TraceSummary;
use std::fmt::Write as _;

/// Schema tag written into every baseline document.
pub const SCHEMA: &str = "adsafe-bench-pipeline/1";

/// Phases faster than this are noise, not signal: they are never
/// flagged as regressions (a 0.2 ms phase doubling is jitter).
pub const NOISE_FLOOR_MS: f64 = 1.0;

/// Per-phase wall times of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchBaseline {
    /// (phase name, wall ms), in execution order.
    pub phases: Vec<(String, f64)>,
    /// Whole-run wall ms.
    pub total_ms: f64,
    /// Counters worth tracking alongside timings (files, diagnostics…).
    pub counters: Vec<(String, u64)>,
}

/// One phase that slowed beyond the allowed factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Phase name.
    pub phase: String,
    /// Baseline wall ms.
    pub baseline_ms: f64,
    /// Current wall ms.
    pub current_ms: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase `{}` regressed {:.1}x: {:.2} ms -> {:.2} ms",
            self.phase,
            self.current_ms / self.baseline_ms.max(f64::MIN_POSITIVE),
            self.baseline_ms,
            self.current_ms
        )
    }
}

impl BenchBaseline {
    /// Distils a run's [`TraceSummary`] into a baseline.
    pub fn from_summary(s: &TraceSummary) -> Self {
        BenchBaseline {
            phases: s
                .phases
                .iter()
                .map(|p| (p.name.clone(), p.wall_us as f64 / 1000.0))
                .collect(),
            total_ms: s.total_us as f64 / 1000.0,
            counters: s.counters.clone(),
        }
    }

    /// Serialises the baseline as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\n  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"total_ms\": {:.3},", self.total_ms);
        out.push_str("  \"phases\": {");
        for (i, (name, ms)) in self.phases.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_escaped(&mut out, name);
            let _ = write!(out, ": {ms:.3}");
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_escaped(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a baseline document, checking the schema tag.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!("unsupported baseline schema `{schema}` (want `{SCHEMA}`)"));
        }
        let total_ms = doc
            .get("total_ms")
            .and_then(Json::as_f64)
            .ok_or("missing `total_ms`")?;
        let phases = doc
            .get("phases")
            .and_then(Json::as_obj)
            .ok_or("missing `phases` object")?
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|ms| (k.clone(), ms))
                    .ok_or_else(|| format!("phase `{k}` is not a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let counters = doc
            .get("counters")
            .and_then(Json::as_obj)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n as u64)))
                    .collect()
            })
            .unwrap_or_default();
        Ok(BenchBaseline { phases, total_ms, counters })
    }

    /// Phases present in exactly one of `self` (the baseline) and
    /// `current`, each reported as a named difference. A phase that
    /// disappears from the run (or appears out of nowhere) used to be
    /// silently skipped by [`regressions`](Self::regressions); callers
    /// like `adsafe trace-compare` surface these by name so a renamed
    /// or dropped phase is a visible, deliberate baseline update.
    /// Counters are deliberately *not* compared — new instrumentation
    /// (e.g. `pool.*`/`cache.*`) must not fail the gate.
    pub fn phase_differences(&self, current: &Self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, ms) in &self.phases {
            if !current.phases.iter().any(|(n, _)| n == name) {
                out.push(format!(
                    "phase `{name}` ({ms:.2} ms in baseline) is missing from the current run"
                ));
            }
        }
        for (name, ms) in &current.phases {
            if !self.phases.iter().any(|(n, _)| n == name) {
                out.push(format!(
                    "phase `{name}` ({ms:.2} ms in current run) is missing from the baseline"
                ));
            }
        }
        out
    }

    /// Phases of `current` that run more than `factor`× slower than in
    /// `self`. Phases under [`NOISE_FLOOR_MS`] in the baseline are held
    /// to the floor×factor bar instead, so microsecond phases cannot
    /// produce spurious failures. Phases missing on either side are
    /// not regressions — [`phase_differences`](Self::phase_differences)
    /// reports those by name.
    pub fn regressions(&self, current: &Self, factor: f64) -> Vec<Regression> {
        let mut out = Vec::new();
        for (name, cur_ms) in &current.phases {
            let Some((_, base_ms)) =
                self.phases.iter().find(|(n, _)| n == name)
            else {
                continue;
            };
            let bar = base_ms.max(NOISE_FLOOR_MS) * factor;
            if *cur_ms > bar {
                out.push(Regression {
                    phase: name.clone(),
                    baseline_ms: *base_ms,
                    current_ms: *cur_ms,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::PhaseTime;

    fn baseline(pairs: &[(&str, f64)]) -> BenchBaseline {
        BenchBaseline {
            phases: pairs.iter().map(|(n, ms)| (n.to_string(), *ms)).collect(),
            total_ms: pairs.iter().map(|(_, ms)| ms).sum(),
            counters: vec![("parse.files".to_string(), 42)],
        }
    }

    #[test]
    fn json_round_trips() {
        let b = baseline(&[("parse", 12.5), ("checks", 3.25)]);
        let parsed = BenchBaseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed.phases.len(), 2);
        assert!((parsed.total_ms - b.total_ms).abs() < 1e-6);
        assert_eq!(parsed.counters, b.counters);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(BenchBaseline::parse(r#"{"schema":"other/9","total_ms":1,"phases":{}}"#)
            .is_err());
    }

    #[test]
    fn regression_gate_fires_beyond_factor() {
        let base = baseline(&[("parse", 10.0), ("checks", 5.0), ("tiny", 0.01)]);
        let ok = baseline(&[("parse", 18.0), ("checks", 9.9), ("tiny", 0.5)]);
        assert!(base.regressions(&ok, 2.0).is_empty());
        let bad = baseline(&[("parse", 25.0), ("checks", 4.0)]);
        let r = base.regressions(&bad, 2.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].phase, "parse");
        assert!(r[0].to_string().contains("2.5x"), "{}", r[0]);
    }

    #[test]
    fn phase_set_differences_are_reported_by_name() {
        let base = baseline(&[("parse", 10.0), ("checks", 5.0)]);
        let cur = baseline(&[("parse", 10.0), ("metrics", 2.0)]);
        let diffs = base.phase_differences(&cur);
        assert_eq!(diffs.len(), 2);
        assert!(diffs[0].contains("`checks`") && diffs[0].contains("missing from the current run"));
        assert!(diffs[1].contains("`metrics`") && diffs[1].contains("missing from the baseline"));
        assert!(base.phase_differences(&base).is_empty());
    }

    #[test]
    fn new_counters_do_not_affect_comparison() {
        let base = baseline(&[("parse", 10.0)]);
        let mut cur = baseline(&[("parse", 10.0)]);
        cur.counters.push(("pool.steals".to_string(), 7));
        cur.counters.push(("cache.hits".to_string(), 11));
        assert!(base.regressions(&cur, 2.0).is_empty());
        assert!(base.phase_differences(&cur).is_empty());
    }

    #[test]
    fn noise_floor_suppresses_microsecond_phases() {
        let base = baseline(&[("tiny", 0.05)]);
        // 0.05 ms -> 1.5 ms is 30x, but under the 2 ms (floor×factor) bar.
        let cur = baseline(&[("tiny", 1.5)]);
        assert!(base.regressions(&cur, 2.0).is_empty());
        let really_bad = baseline(&[("tiny", 2.5)]);
        assert_eq!(base.regressions(&really_bad, 2.0).len(), 1);
    }

    #[test]
    fn from_summary_converts_units() {
        let s = TraceSummary {
            total_us: 1500,
            phases: vec![PhaseTime { name: "parse".into(), wall_us: 1000 }],
            ..TraceSummary::default()
        };
        let b = BenchBaseline::from_summary(&s);
        assert_eq!(b.phases, vec![("parse".to_string(), 1.0)]);
        assert!((b.total_ms - 1.5).abs() < 1e-9);
    }
}
