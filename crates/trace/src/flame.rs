//! In-terminal flame summary: aggregated span tree with wall time.
//!
//! Reconstructs the nesting of one run's [`SpanEvent`]s from their
//! intervals, merges spans with the same name under the same parent
//! path (so 500 `parse.file` spans render as one line with a count),
//! and prints an indented tree with milliseconds, share of total, and
//! a proportional bar.

use crate::alloc::PhaseMem;
use crate::span::SpanEvent;
use std::collections::HashMap;

/// One aggregated node of the flame tree.
#[derive(Debug, Clone)]
struct Node {
    path: Vec<String>,
    total_us: u64,
    count: u64,
    first_start: u64,
}

/// Aggregates events into path → (time, count) nodes.
///
/// Events must come from one [`crate::drain_from`] (same thread);
/// nesting is recovered from interval containment per tid.
fn aggregate(events: &[SpanEvent]) -> Vec<Node> {
    let mut nodes: HashMap<Vec<String>, Node> = HashMap::new();
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut evs: Vec<&SpanEvent> = events.iter().filter(|e| e.tid == tid).collect();
        // Parents start no later than their children; at equal start the
        // smaller depth is the parent.
        evs.sort_by_key(|e| (e.start_us, e.depth));
        let mut stack: Vec<(u64, Vec<String>)> = Vec::new(); // (end_us, path)
        for e in evs {
            while let Some((end, _)) = stack.last() {
                if e.start_us >= *end {
                    stack.pop();
                } else {
                    break;
                }
            }
            let mut path =
                stack.last().map(|(_, p)| p.clone()).unwrap_or_default();
            path.push(e.name.clone());
            let node = nodes.entry(path.clone()).or_insert_with(|| Node {
                path: path.clone(),
                total_us: 0,
                count: 0,
                first_start: e.start_us,
            });
            node.total_us += e.dur_us;
            node.count += 1;
            node.first_start = node.first_start.min(e.start_us);
            stack.push((e.end_us(), path));
        }
    }
    let mut out: Vec<Node> = nodes.into_values().collect();
    out.sort_by(|a, b| (a.first_start, &a.path).cmp(&(b.first_start, &b.path)));
    out
}

/// Renders the flame summary. `max_children` bounds the lines printed
/// per nesting level (the rest are folded into an `… (+N more)` line).
pub fn flame_summary(events: &[SpanEvent], max_children: usize) -> String {
    flame_summary_with_mem(events, max_children, &[])
}

/// [`flame_summary`] plus a memory column: a `phase.*` frame whose
/// stripped name appears in `mem` (the run's per-phase allocation
/// delta, see `crate::alloc`) gains a `Σ<bytes> alloc` annotation.
/// With `mem` empty the output is byte-identical to [`flame_summary`].
pub fn flame_summary_with_mem(
    events: &[SpanEvent],
    max_children: usize,
    mem: &[PhaseMem],
) -> String {
    let nodes = aggregate(events);
    let total_us: u64 = nodes.iter().filter(|n| n.path.len() == 1).map(|n| n.total_us).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "flame summary — {:.1} ms total, {} span(s)\n",
        total_us as f64 / 1000.0,
        events.len()
    ));
    if nodes.is_empty() {
        return out;
    }
    render_level(&nodes, &[], total_us.max(1), max_children, mem, &mut out);
    out
}

/// Rounds a byte count to a short human unit for the flame column.
pub(crate) fn fmt_bytes(b: u64) -> String {
    match b {
        0..=1023 => format!("{b} B"),
        1024..=1048575 => format!("{:.1} KiB", b as f64 / 1024.0),
        1048576..=1073741823 => format!("{:.1} MiB", b as f64 / 1048576.0),
        _ => format!("{:.2} GiB", b as f64 / 1073741824.0),
    }
}

fn render_level(
    nodes: &[Node],
    prefix: &[String],
    total_us: u64,
    max_children: usize,
    mem: &[PhaseMem],
    out: &mut String,
) {
    let mut children: Vec<&Node> = nodes
        .iter()
        .filter(|n| n.path.len() == prefix.len() + 1 && n.path.starts_with(prefix))
        .collect();
    children.sort_by_key(|n| std::cmp::Reverse(n.total_us));
    let shown = children.len().min(max_children);
    let folded: u64 = children[shown..].iter().map(|n| n.total_us).sum();
    let mut displayed: Vec<&Node> = children[..shown].to_vec();
    // Chronological reads better than time-sorted within a level.
    displayed.sort_by_key(|n| n.first_start);
    for node in displayed {
        let pct = node.total_us as f64 * 100.0 / total_us as f64;
        let bar_len = ((pct / 5.0).round() as usize).min(20);
        let name = node.path.last().expect("non-root node");
        let label = if node.count > 1 {
            format!("{name} (×{})", node.count)
        } else {
            name.clone()
        };
        let mem_col = name
            .strip_prefix("phase.")
            .and_then(|p| mem.iter().find(|m| m.name == p))
            .map(|m| format!("  Σ{} alloc", fmt_bytes(m.bytes)))
            .unwrap_or_default();
        out.push_str(&format!(
            "  {:indent$}{label:<width$} {:>9.2} ms {pct:>5.1}% {bar}{mem_col}\n",
            "",
            node.total_us as f64 / 1000.0,
            indent = 2 * prefix.len(),
            width = 44usize.saturating_sub(2 * prefix.len()),
            bar = "#".repeat(bar_len),
        ));
        render_level(nodes, &node.path, total_us, max_children, mem, out);
    }
    if folded > 0 {
        out.push_str(&format!(
            "  {:indent$}… (+{} more, {:.2} ms)\n",
            "",
            children.len() - shown,
            folded as f64 / 1000.0,
            indent = 2 * prefix.len(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, start: u64, dur: u64, depth: usize) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            cat: "t",
            start_us: start,
            dur_us: dur,
            depth,
            tid: 1,
            args: Vec::new(),
        }
    }

    #[test]
    fn nesting_and_merging() {
        let events = vec![
            ev("run", 0, 1000, 0),
            ev("phase.parse", 0, 600, 1),
            ev("parse.file", 10, 200, 2),
            ev("parse.file", 220, 300, 2),
            ev("phase.checks", 600, 400, 1),
        ];
        let s = flame_summary(&events, 10);
        assert!(s.contains("run"), "{s}");
        assert!(s.contains("parse.file (×2)"), "{s}");
        assert!(s.contains("phase.checks"), "{s}");
        // Merged child time: 0.5 ms.
        assert!(s.contains("0.50 ms"), "{s}");
    }

    #[test]
    fn folding_beyond_max_children() {
        let mut events = vec![ev("run", 0, 1000, 0)];
        for i in 0..8 {
            events.push(ev(&format!("child{i}"), i * 100, 50, 1));
        }
        let s = flame_summary(&events, 3);
        assert!(s.contains("(+5 more"), "{s}");
    }

    #[test]
    fn empty_events_render() {
        let s = flame_summary(&[], 10);
        assert!(s.contains("0 span(s)"), "{s}");
    }

    #[test]
    fn memory_column_annotates_matching_phases_only() {
        let events = vec![
            ev("run", 0, 1000, 0),
            ev("phase.parse", 0, 600, 1),
            ev("parse.file", 10, 200, 2),
            ev("phase.checks", 600, 400, 1),
        ];
        let mem = vec![PhaseMem {
            name: "parse".to_string(),
            allocs: 12,
            bytes: 3 * 1024 * 1024,
            peak_live: 4 * 1024 * 1024,
        }];
        let s = flame_summary_with_mem(&events, 10, &mem);
        let parse_line = s.lines().find(|l| l.contains("phase.parse")).unwrap();
        assert!(parse_line.contains("Σ3.0 MiB alloc"), "{s}");
        let checks_line = s.lines().find(|l| l.contains("phase.checks")).unwrap();
        assert!(!checks_line.contains("alloc"), "unprofiled phases stay clean: {s}");
        let file_line = s.lines().find(|l| l.contains("parse.file")).unwrap();
        assert!(!file_line.contains("alloc"), "non-phase frames stay clean: {s}");
        // No memory data → byte-identical to the plain renderer.
        assert_eq!(flame_summary_with_mem(&events, 10, &[]), flame_summary(&events, 10));
    }

    #[test]
    fn byte_formatting_rounds_to_short_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(1023), "1023 B");
        assert_eq!(fmt_bytes(1536), "1.5 KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.0 MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }
}
