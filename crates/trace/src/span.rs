//! Hierarchical wall-clock spans with RAII guards.
//!
//! Each thread carries its own span stack and event buffer, so
//! concurrent assessment runs (e.g. parallel tests) never interleave
//! events. A [`SpanGuard`] records its span when dropped — including
//! during panic unwinding, which is what keeps the stack well-formed
//! when a checker panics under `catch_unwind`: the inner guards drop
//! first, so every exit matches the innermost open span.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Global on/off switch (default: on). Disabled spans cost one atomic
/// load and record nothing.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Process-wide trace epoch: all timestamps are microseconds since the
/// first span of the process.
static EPOCH: OnceLock<Instant> = OnceLock::new();

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Cap on buffered events per thread; beyond it events are counted in
/// the `trace.events.dropped` counter instead of buffered, so a
/// long-lived thread that never drains cannot grow without bound.
const EVENT_CAP: usize = 1 << 20;

/// Enables or disables span recording process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process trace epoch.
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name, e.g. `"phase.parse"` or `"check.misra-15.1-goto"`.
    pub name: String,
    /// Category (Chrome trace `cat` field), e.g. `"phase"`, `"checks"`.
    pub cat: &'static str,
    /// Start, µs since the process trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Nesting depth at which the span ran (0 = top level).
    pub depth: usize,
    /// Small per-process thread id (not the OS tid).
    pub tid: u64,
    /// Key/value annotations (Chrome trace `args`).
    pub args: Vec<(&'static str, String)>,
}

impl SpanEvent {
    /// End timestamp, µs since the epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

struct OpenSpan {
    name: String,
    cat: &'static str,
    start_us: u64,
    args: Vec<(&'static str, String)>,
    /// Allocation-billing tag this span displaced (`cat == "phase"`
    /// spans only): restored when the span closes, so nested phases
    /// bill to the innermost one and panics/leaked guards repair the
    /// tag along with the stack.
    prev_phase: Option<usize>,
}

struct ThreadTrace {
    tid: u64,
    stack: Vec<OpenSpan>,
    events: Vec<SpanEvent>,
}

thread_local! {
    static TRACE: RefCell<ThreadTrace> = RefCell::new(ThreadTrace {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        events: Vec::new(),
    });
}

/// RAII guard for one open span; records the span when dropped.
///
/// Guards are expected to drop in LIFO order (Rust scoping guarantees
/// this unless a guard is deliberately leaked). If inner guards *were*
/// leaked, dropping an outer guard closes the leaked spans too, so the
/// recorded stream is always well-formed.
#[must_use = "a span guard records its span when dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    /// Stack length right after this span was pushed; 0 = not armed.
    token: usize,
}

/// Opens a span. Prefer stable, dot-separated names
/// (`phase.component`, `check.<rule-id>`).
pub fn span(name: impl Into<String>, cat: &'static str) -> SpanGuard {
    span_with(name, cat, Vec::new())
}

/// Opens a span with key/value annotations.
pub fn span_with(
    name: impl Into<String>,
    cat: &'static str,
    args: Vec<(&'static str, String)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { token: 0 };
    }
    let start_us = now_us();
    let name = name.into();
    // Phase spans double as allocation-billing scopes: the profiler's
    // thread-local tag points at this phase until the span closes.
    // Registration is idempotent and cheap relative to opening a
    // phase (a handful per run).
    let prev_phase = (cat == "phase").then(|| {
        let stripped = name.strip_prefix("phase.").unwrap_or(&name);
        crate::alloc::set_current_phase(crate::alloc::phase_index(stripped))
    });
    let token = TRACE.with(|t| {
        let mut t = t.borrow_mut();
        t.stack.push(OpenSpan { name, cat, start_us, args, prev_phase });
        t.stack.len()
    });
    SpanGuard { token }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.token == 0 {
            return;
        }
        let end = now_us();
        TRACE.with(|t| {
            let t = &mut *t.borrow_mut();
            // Close leaked inner spans (if any), then this span. After
            // this loop the stack is exactly as it was before we opened.
            while t.stack.len() >= self.token {
                let open = t.stack.pop().expect("stack length checked");
                if let Some(prev) = open.prev_phase {
                    // Unwinds in LIFO order even when inner guards
                    // leaked: each pop restores the tag its push saved.
                    crate::alloc::set_current_phase(prev);
                }
                let depth = t.stack.len();
                if t.events.len() < EVENT_CAP {
                    t.events.push(SpanEvent {
                        name: open.name,
                        cat: open.cat,
                        start_us: open.start_us,
                        dur_us: end.saturating_sub(open.start_us),
                        depth,
                        tid: t.tid,
                        args: open.args,
                    });
                } else {
                    crate::metrics::counter("trace.events.dropped").incr();
                }
            }
        });
    }
}

/// Current position in this thread's event buffer. Pass to
/// [`drain_from`] to collect only the events recorded in between.
pub fn mark() -> usize {
    TRACE.with(|t| t.borrow().events.len())
}

/// Removes and returns this thread's events recorded since `mark`.
///
/// If an earlier drain already consumed past `mark` (e.g. nested
/// collection scopes), everything still buffered is returned.
pub fn drain_from(mark: usize) -> Vec<SpanEvent> {
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        let at = mark.min(t.events.len());
        t.events.split_off(at)
    })
}

/// Number of spans currently open on this thread.
pub fn open_depth() -> usize {
    TRACE.with(|t| t.borrow().stack.len())
}

/// Appends events drained on another thread into this thread's buffer.
///
/// Worker threads in `adsafe-pool` drain their own events after their
/// task loop and hand them to the spawning thread, which absorbs them
/// so a single [`drain_from`] on the caller sees the whole run. Events
/// keep their original `tid`, so per-thread nesting invariants still
/// hold. The per-thread [`EVENT_CAP`] applies; overflow is counted in
/// `trace.events.dropped` like locally recorded events.
pub fn absorb(events: Vec<SpanEvent>) {
    if events.is_empty() {
        return;
    }
    TRACE.with(|t| {
        let t = &mut *t.borrow_mut();
        for ev in events {
            if t.events.len() < EVENT_CAP {
                t.events.push(ev);
            } else {
                crate::metrics::counter("trace.events.dropped").incr();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that depend on the global `ENABLED` flag.
    static ENABLED_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_record_in_close_order() {
        let _l = ENABLED_LOCK.lock().unwrap();
        let m = mark();
        {
            let _a = span("a", "t");
            {
                let _b = span("b", "t");
            }
            let _c = span("c", "t");
        }
        let ev = drain_from(m);
        let names: Vec<&str> = ev.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b", "c", "a"]);
        assert_eq!(ev[0].depth, 1);
        assert_eq!(ev[2].depth, 0);
        // Children are contained in the parent's interval.
        assert!(ev[0].start_us >= ev[2].start_us);
        assert!(ev[0].end_us() <= ev[2].end_us());
    }

    #[test]
    fn panic_unwinding_closes_inner_spans() {
        let _l = ENABLED_LOCK.lock().unwrap();
        let m = mark();
        let depth_before = open_depth();
        let r = std::panic::catch_unwind(|| {
            let _outer = span("outer", "t");
            let _inner = span("inner", "t");
            panic!("checker bug");
        });
        assert!(r.is_err());
        assert_eq!(open_depth(), depth_before, "unwinding left spans open");
        let ev = drain_from(m);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "inner");
        assert_eq!(ev[1].name, "outer");
    }

    #[test]
    fn leaked_inner_guard_is_repaired_by_outer_drop() {
        let _l = ENABLED_LOCK.lock().unwrap();
        let m = mark();
        {
            let _outer = span("outer", "t");
            let inner = span("leaked", "t");
            std::mem::forget(inner);
        }
        assert_eq!(open_depth(), 0);
        let ev = drain_from(m);
        assert_eq!(ev.len(), 2);
        assert!(ev.iter().any(|e| e.name == "leaked"));
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = ENABLED_LOCK.lock().unwrap();
        set_enabled(false);
        let m = mark();
        {
            let _s = span("ghost", "t");
        }
        set_enabled(true);
        assert!(drain_from(m).is_empty());
    }

    #[test]
    fn absorbed_events_keep_their_tid_and_join_the_local_buffer() {
        let _l = ENABLED_LOCK.lock().unwrap();
        let m = mark();
        {
            let _local = span("local", "t");
        }
        let worker_events = std::thread::scope(|s| {
            s.spawn(|| {
                let wm = mark();
                {
                    let _w = span("worker", "t");
                }
                drain_from(wm)
            })
            .join()
            .unwrap()
        });
        let worker_tid = worker_events[0].tid;
        absorb(worker_events);
        let ev = drain_from(m);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "local");
        assert_eq!(ev[1].name, "worker");
        assert_eq!(ev[1].tid, worker_tid);
        assert_ne!(ev[0].tid, ev[1].tid);
    }

    #[test]
    fn phase_spans_drive_the_allocation_billing_tag() {
        let _l = ENABLED_LOCK.lock().unwrap();
        let m = mark();
        let outside = crate::alloc::current_phase();
        let parse_idx;
        let native_idx;
        {
            let _p = span("phase.test_span_parse", "phase");
            parse_idx = crate::alloc::current_phase();
            assert_eq!(parse_idx, crate::alloc::phase_index("test_span_parse"));
            assert_ne!(parse_idx, outside);
            {
                // Nested phases bill to the innermost.
                let _q = span("phase.test_span_parse.inner", "phase");
                native_idx = crate::alloc::current_phase();
                assert_ne!(native_idx, parse_idx);
                // Non-phase spans leave the tag alone.
                let _r = span("file.x", "parse");
                assert_eq!(crate::alloc::current_phase(), native_idx);
            }
            assert_eq!(crate::alloc::current_phase(), parse_idx, "inner close restores");
        }
        assert_eq!(crate::alloc::current_phase(), outside, "outer close restores");
        drain_from(m);
    }

    #[test]
    fn panic_unwinding_restores_the_billing_tag() {
        let _l = ENABLED_LOCK.lock().unwrap();
        let m = mark();
        let outside = crate::alloc::current_phase();
        let r = std::panic::catch_unwind(|| {
            let _p = span("phase.test_span_panic", "phase");
            let _inner = span("phase.test_span_panic.inner", "phase");
            panic!("checker bug");
        });
        assert!(r.is_err());
        assert_eq!(crate::alloc::current_phase(), outside, "unwinding left a stale tag");
        drain_from(m);
    }

    #[test]
    fn args_ride_on_the_event() {
        let _l = ENABLED_LOCK.lock().unwrap();
        let m = mark();
        {
            let _s = span_with("f", "t", vec![("path", "a.cc".to_string())]);
        }
        let ev = drain_from(m);
        assert_eq!(ev[0].args, vec![("path", "a.cc".to_string())]);
    }
}
