//! Minimal JSON value model, parser, and string escaping.
//!
//! Just enough JSON for this crate's two formats — Chrome trace-event
//! files and `BENCH_pipeline.json` baselines — without external
//! dependencies. The parser is strict about structure (it rejects
//! trailing garbage and malformed literals) and lenient about
//! whitespace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is not preserved (sorted by key).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` as a single JSON value (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Appends `s` JSON-escaped (including the surrounding quotes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                out.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(out));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut out = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                out.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(out));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our formats;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let s = &b[*pos..];
                let text = unsafe { std::str::from_utf8_unchecked(s) };
                let c = text.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 45").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f — µs";
        let mut out = String::new();
        write_escaped(&mut out, nasty);
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }
}
