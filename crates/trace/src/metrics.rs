//! Global registry of named counters, gauges, and log₂-scale histograms.
//!
//! Counters are monotonic `AtomicU64`s: increments from any number of
//! worker threads are lock-free and never lose updates. Gauges are
//! settable `AtomicU64`s for instantaneous levels (queue depths, open
//! connections). The registry itself is a mutex-guarded map consulted
//! only on first lookup of a name; callers on hot paths hold the
//! returned [`Counter`]/[`Gauge`] handle.
//!
//! Metric names follow the `phase.component.metric` convention
//! (`parse.lexer.tokens`, `gpu.launch.barrier_phases`, …); snapshots
//! are returned sorted by name so rendered output is deterministic.
//! [`render_text`] exports the whole registry in a stable line-oriented
//! text format (the `adsafe serve` `/metrics` endpoint's body).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, resident entries, open
/// connections): settable, unlike the monotonic [`Counter`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` to the level.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the level (saturating at zero under races).
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: values up to 2⁶³ land in a bucket.
const BUCKETS: usize = 64;

/// A histogram with log₂-scale buckets (bucket *b* counts values whose
/// bit length is *b*, i.e. `2^(b-1) ≤ v < 2^b`; bucket 0 counts zeros).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. `const` so a histogram can live in a
    /// `static` without lazy initialisation — the allocation profiler
    /// (`alloc.rs`) records into one from inside the global allocator,
    /// where a lazily-initialised cell could recurse.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize; // bit length; 0 for v == 0
        self.buckets[b.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (bucket *b* ⇔ bit length *b*).
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum as f64 / self.count as f64 }
    }

    /// Upper bound of the bucket holding the `q`-quantile (`q` in 0..=1).
    /// Log-scale resolution: the answer is exact to within 2×. The
    /// last bucket also absorbs values of bit length > 63, so its
    /// honest bound is `u64::MAX` — which keeps the documented
    /// `quantile_estimate ≤ quantile_bound` invariant when every
    /// sample saturates into it.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b == 0 {
                    0
                } else if b >= BUCKETS - 1 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
            }
        }
        u64::MAX
    }

    /// The `q`-quantile estimated by linear interpolation *inside* the
    /// log₂ bucket holding it. [`quantile_bound`](Self::quantile_bound)
    /// answers with the bucket's upper bound, which overstates tail
    /// quantiles by up to 2×; this interpolates between the bucket's
    /// bounds by the quantile's rank within the bucket, assuming the
    /// recorded values spread uniformly across it — the estimate every
    /// reported quantile (`/metrics`, `adsafe top`, the load bench)
    /// uses. Always ≥ the bucket's lower bound and ≤ `quantile_bound`.
    pub fn quantile_estimate(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen;
            seen += n;
            if seen >= target {
                if b == 0 {
                    return 0;
                }
                let lo = 1u64 << (b - 1);
                // The last bucket also absorbs values of bit length
                // > 63, so its honest upper bound is u64::MAX.
                let hi =
                    if b >= BUCKETS - 1 { u64::MAX } else { (1u64 << b) - 1 };
                // Rank of the target within this bucket, in (0, 1].
                // Saturate: the top bucket's width rounds up to 2⁶³
                // in f64, which would overflow a plain add.
                let frac = (target - before) as f64 / n as f64;
                return lo.saturating_add(((hi - lo) as f64 * frac) as u64).min(hi);
            }
        }
        u64::MAX
    }
}

/// Canonical registry key for a labeled metric: `name{k="v",k2="v2"}`
/// with labels sorted by key and values escaped (`\` → `\\`, `"` →
/// `\"`, newline → `\n` — the Prometheus label-value escapes, so the
/// label block can be re-emitted verbatim in the exposition format).
/// Labeled series live in the same registry as unlabeled ones; the key
/// is the identity, so the same `(name, labels)` always resolves to
/// the same handle. [`render_text`] prints the key verbatim;
/// [`render_prometheus`] splits it back into `name{labels}` samples.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    let mut labels: Vec<(&str, &str)> = labels.to_vec();
    labels.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::with_capacity(name.len() + labels.len() * 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter named `name`, creating it on first use. Hold the handle
/// on hot paths rather than re-looking it up per increment.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry().counters.lock().expect("counter registry poisoned");
    match map.get(name) {
        Some(c) => Arc::clone(c),
        None => {
            let c = Arc::new(Counter::default());
            map.insert(name.to_string(), Arc::clone(&c));
            c
        }
    }
}

/// The gauge named `name`, creating it on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = registry().gauges.lock().expect("gauge registry poisoned");
    match map.get(name) {
        Some(g) => Arc::clone(g),
        None => {
            let g = Arc::new(Gauge::default());
            map.insert(name.to_string(), Arc::clone(&g));
            g
        }
    }
}

/// The histogram named `name`, creating it on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry().histograms.lock().expect("histogram registry poisoned");
    match map.get(name) {
        Some(h) => Arc::clone(h),
        None => {
            let h = Arc::new(Histogram::default());
            map.insert(name.to_string(), Arc::clone(&h));
            h
        }
    }
}

/// All counters and their current values, sorted by name.
pub fn counter_snapshot() -> BTreeMap<String, u64> {
    let map = registry().counters.lock().expect("counter registry poisoned");
    map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
}

/// Counters whose name starts with `prefix`, sorted by name. Dynamic
/// metric families — dotted (`chaos.injected.*`) or labeled
/// (`serve.status{code="..."}`, see [`labeled`]) — are created on
/// first touch, so consumers — the chaos harness tallying injected
/// faults, a dashboard summing HTTP status classes — enumerate them by
/// prefix rather than by a hardcoded list.
pub fn counters_with_prefix(prefix: &str) -> Vec<(String, u64)> {
    let map = registry().counters.lock().expect("counter registry poisoned");
    map.range(prefix.to_string()..)
        .take_while(|(k, _)| k.starts_with(prefix))
        .map(|(k, v)| (k.clone(), v.get()))
        .collect()
}

/// All gauges and their current levels, sorted by name.
pub fn gauge_snapshot() -> BTreeMap<String, u64> {
    let map = registry().gauges.lock().expect("gauge registry poisoned");
    map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
}

/// All histograms' snapshots, sorted by name.
pub fn histogram_snapshot() -> BTreeMap<String, HistogramSnapshot> {
    let map = registry().histograms.lock().expect("histogram registry poisoned");
    map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
}

/// Renders the whole registry in a stable text format: one
/// space-separated line per metric, sorted by kind then name, so two
/// snapshots of the same state are byte-identical. Histograms render
/// their count, sum, and interpolated p50/p99/p999 estimates
/// ([`HistogramSnapshot::quantile_estimate`]). Labeled series print
/// their full registry key (`name{k="v"}`) verbatim; unlabeled lines
/// are unchanged from earlier format revisions.
///
/// ```text
/// # adsafe-metrics/1
/// counter cache.hits 12
/// counter serve.status{code="200"} 9
/// gauge pool.queue_depth 3
/// hist serve.request_us count 4 sum 81236 p50 14210 p99 29833 p999 31460
/// ```
pub fn render_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# adsafe-metrics/1\n");
    for (name, v) in counter_snapshot() {
        let _ = writeln!(out, "counter {name} {v}");
    }
    for (name, v) in gauge_snapshot() {
        let _ = writeln!(out, "gauge {name} {v}");
    }
    for (name, h) in histogram_snapshot() {
        let _ = writeln!(
            out,
            "hist {name} count {} sum {} p50 {} p99 {} p999 {}",
            h.count,
            h.sum,
            h.quantile_estimate(0.5),
            h.quantile_estimate(0.99),
            h.quantile_estimate(0.999)
        );
    }
    out
}

/// Splits a registry key into its base name and optional label block
/// (the inner `k="v",…` text, braces stripped). Keys without `{` are
/// fully the base name.
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (key, None),
    }
}

/// Groups registry entries by base metric name so every labeled series
/// of a family emits under a single `# TYPE` line (Prometheus requires
/// a metric's samples to be contiguous and typed once).
fn group_by_base<V>(entries: BTreeMap<String, V>) -> BTreeMap<String, Vec<(Option<String>, V)>> {
    let mut grouped: BTreeMap<String, Vec<(Option<String>, V)>> = BTreeMap::new();
    for (key, v) in entries {
        let (base, labels) = split_key(&key);
        grouped.entry(base.to_string()).or_default().push((labels.map(str::to_string), v));
    }
    grouped
}

/// Renders the whole registry in the Prometheus text exposition format
/// (version 0.0.4). Metric names map `phase.component.metric` →
/// `adsafe_phase_component_metric` (every character outside
/// `[a-zA-Z0-9_]` becomes `_`, and everything gains the `adsafe_`
/// prefix). Registry keys built with [`labeled`] re-emit their label
/// block verbatim — only the base name is sanitised — and every series
/// of a family shares one `# TYPE` line. Counters and gauges emit one
/// sample per series; log₂ histograms emit the standard cumulative
/// `_bucket` series (one `le` per non-empty bit-length bucket, upper
/// bound `2^b − 1`, plus `le="+Inf"`), `_sum`, and `_count`, with any
/// series labels ahead of `le`. Output for unlabeled registries is
/// byte-identical to earlier revisions.
pub fn render_prometheus() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (base, series) in group_by_base(counter_snapshot()) {
        let n = prometheus_name(&base);
        let _ = writeln!(out, "# TYPE {n} counter");
        for (labels, v) in series {
            match labels {
                Some(l) => { let _ = writeln!(out, "{n}{{{l}}} {v}"); }
                None => { let _ = writeln!(out, "{n} {v}"); }
            }
        }
    }
    for (base, series) in group_by_base(gauge_snapshot()) {
        let n = prometheus_name(&base);
        let _ = writeln!(out, "# TYPE {n} gauge");
        for (labels, v) in series {
            match labels {
                Some(l) => { let _ = writeln!(out, "{n}{{{l}}} {v}"); }
                None => { let _ = writeln!(out, "{n} {v}"); }
            }
        }
    }
    for (base, series) in group_by_base(histogram_snapshot()) {
        let n = prometheus_name(&base);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (labels, h) in series {
            // A labeled series prefixes its labels ahead of `le`:
            // `name_bucket{endpoint="assess",le="1023"}`.
            let pre = labels.as_deref().map(|l| format!("{l},")).unwrap_or_default();
            let suffix = labels.as_deref().map(|l| format!("{{{l}}}")).unwrap_or_default();
            let mut cumulative = 0u64;
            for (b, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                // Bucket b holds values of bit length b: upper bound 2^b−1
                // (bucket 0 holds only zeros, bound 0).
                let le = if b == 0 { 0 } else { (1u64 << b) - 1 };
                let _ = writeln!(out, "{n}_bucket{{{pre}le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{{pre}le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum{suffix} {}", h.sum);
            let _ = writeln!(out, "{n}_count{suffix} {}", h.count);
        }
    }
    out
}

/// Maps a registry metric name onto the Prometheus grammar.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("adsafe_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Per-counter increase from `before` to `after` (new counters count
/// from zero); zero deltas are omitted. Counters are global, so in a
/// multi-threaded process the delta attributes concurrent increments
/// from other runs to this window — treat it as best-effort.
pub fn counter_delta(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> Vec<(String, u64)> {
    after
        .iter()
        .filter_map(|(k, &v)| {
            let delta = v.saturating_sub(before.get(k).copied().unwrap_or(0));
            (delta > 0).then(|| (k.clone(), delta))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = counter("test.metrics.counter_a");
        let base = c.get();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), base + 4);
        // Same name → same counter.
        assert_eq!(counter("test.metrics.counter_a").get(), base + 4);
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        let name = "test.metrics.concurrent";
        let base = counter(name).get();
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(move || {
                    let c = counter(name);
                    for _ in 0..per_thread {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter(name).get(), base + threads as u64 * per_thread);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[11], 1); // 1024
        assert!(s.mean() > 200.0);
        assert_eq!(s.quantile_bound(0.5), 3);
        assert_eq!(s.quantile_bound(1.0), 2047);
    }

    #[test]
    fn gauges_are_settable_and_saturate() {
        let g = gauge("test.metrics.gauge_a");
        g.set(5);
        assert_eq!(g.get(), 5);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 6);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        // Same name → same gauge.
        assert_eq!(gauge("test.metrics.gauge_a").get(), 0);
    }

    #[test]
    fn render_text_is_stable_and_complete() {
        counter("test.metrics.render_c").add(2);
        gauge("test.metrics.render_g").set(7);
        histogram("test.metrics.render_h").record(100);
        let a = render_text();
        let b = render_text();
        assert_eq!(a, b, "same state renders byte-identically");
        assert!(a.starts_with("# adsafe-metrics/1\n"), "{a}");
        assert!(a.contains("counter test.metrics.render_c 2"), "{a}");
        assert!(a.contains("gauge test.metrics.render_g 7"), "{a}");
        assert!(a.lines().any(|l| l.starts_with("hist test.metrics.render_h count ")), "{a}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        counter("test.metrics.prom-c").add(4);
        gauge("test.metrics.prom_g").set(9);
        let h = histogram("test.metrics.prom_h");
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(1000);
        let text = render_prometheus();
        assert_eq!(text, render_prometheus(), "stable across renders");
        // Dots and dashes both map to underscores, with the adsafe_ prefix.
        assert!(text.contains("# TYPE adsafe_test_metrics_prom_c counter"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_c 4"), "{text}");
        assert!(text.contains("# TYPE adsafe_test_metrics_prom_g gauge"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_g 9"), "{text}");
        // Histogram: cumulative buckets at bit-length bounds.
        assert!(text.contains("# TYPE adsafe_test_metrics_prom_h histogram"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_bucket{le=\"1023\"} 4"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_sum 1006"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_count 4"), "{text}");
        // Cumulative monotonicity across every histogram in the dump.
        let mut last: Option<(String, u64)> = None;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let (metric, rest) = line.split_once("_bucket{").unwrap();
            let v: u64 = rest.split(' ').nth(1).unwrap().parse().unwrap();
            if let Some((m, prev)) = &last {
                if m == metric {
                    assert!(v >= *prev, "cumulative counts must not decrease: {line}");
                }
            }
            last = Some((metric.to_string(), v));
        }
    }

    #[test]
    fn quantile_estimate_interpolates_within_bucket() {
        let h = Histogram::default();
        // 100 values spread across bucket 11 ([1024, 2047]).
        for i in 0..100 {
            h.record(1024 + i * 10);
        }
        let s = h.snapshot();
        let p50 = s.quantile_estimate(0.5);
        let p999 = s.quantile_estimate(0.999);
        // The bound answer collapses everything to 2047; the estimate
        // must sit inside the bucket and order its quantiles.
        assert_eq!(s.quantile_bound(0.5), 2047);
        assert!((1024..=2047).contains(&p50), "p50 = {p50}");
        assert!((1024..=2047).contains(&p999), "p999 = {p999}");
        assert!(p50 < p999, "p50 {p50} must undercut p999 {p999}");
        // Uniform spread: p50 lands near the bucket midpoint.
        assert!((1400..=1700).contains(&p50), "p50 = {p50}");
        // Estimates never exceed the bound.
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert!(s.quantile_estimate(q) <= s.quantile_bound(q), "q = {q}");
        }
    }

    #[test]
    fn quantile_estimate_edge_buckets() {
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile_estimate(0.99), 0);
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        assert_eq!(h.snapshot().quantile_estimate(0.99), 0, "zeros stay zero");
        let top = Histogram::default();
        top.record(u64::MAX);
        let est = top.snapshot().quantile_estimate(1.0);
        assert!(est >= 1u64 << 62, "top bucket reaches the u64 range: {est}");
    }

    #[test]
    fn quantile_estimate_single_sample_stays_in_its_bucket() {
        let h = Histogram::default();
        h.record(100); // bucket 7: [64, 127]
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = s.quantile_estimate(q);
            assert!((64..=127).contains(&est), "q = {q}: {est}");
            assert!(est <= s.quantile_bound(q), "q = {q}");
        }
    }

    #[test]
    fn quantile_estimate_saturated_top_bucket_never_overflows() {
        // Every sample in the open-ended top bucket: interpolation must
        // saturate at u64::MAX rather than wrap (the bucket's f64 width
        // rounds up to 2⁶³).
        let h = Histogram::default();
        for _ in 0..50 {
            h.record(u64::MAX);
        }
        let s = h.snapshot();
        let p50 = s.quantile_estimate(0.5);
        let p999 = s.quantile_estimate(0.999);
        assert!(p50 >= 1u64 << 62, "p50 inside the top bucket: {p50}");
        assert!(p50 <= p999, "quantiles stay ordered: {p50} vs {p999}");
        assert_eq!(s.quantile_estimate(1.0), u64::MAX);
        assert_eq!(s.quantile_bound(1.0), u64::MAX);
    }

    #[test]
    fn quantile_estimate_empty_is_zero_for_all_q() {
        let empty = Histogram::default().snapshot();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile_estimate(q), 0);
            assert_eq!(empty.quantile_bound(q), 0);
        }
    }

    /// Inverse of [`labeled`]'s value escaping, for the round-trip
    /// property below: parses an `k="v",k2="v2"` block back into pairs.
    fn parse_label_block(block: &str) -> Option<Vec<(String, String)>> {
        let mut out = Vec::new();
        let mut chars = block.chars();
        loop {
            let mut key = String::new();
            loop {
                match chars.next()? {
                    '=' => break,
                    c => key.push(c),
                }
            }
            if chars.next()? != '"' {
                return None;
            }
            let mut val = String::new();
            loop {
                match chars.next()? {
                    '\\' => match chars.next()? {
                        '\\' => val.push('\\'),
                        '"' => val.push('"'),
                        'n' => val.push('\n'),
                        _ => return None, // bare escape: not a valid encoding
                    },
                    '"' => break,
                    c => val.push(c),
                }
            }
            out.push((key, val));
            match chars.next() {
                Some(',') => continue,
                None => return Some(out),
                _ => return None,
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(96))]

        /// Registry keys must decode back to exactly the label values
        /// they were built from — quotes, backslashes, newlines, and
        /// `{`/`}`/`=`/`,` inside values included — and must not
        /// depend on the caller's label order. A failure here means
        /// the Prometheus exposition emits a corrupt label block.
        #[test]
        fn labeled_round_trips_hostile_values(
            a in "[ -~\n]{0,24}",
            b in r#"["\\x,}]{0,12}"#,
        ) {
            let key = labeled("m", &[("ka", a.as_str()), ("kb", b.as_str())]);
            proptest::prop_assert_eq!(
                labeled("m", &[("kb", b.as_str()), ("ka", a.as_str())]),
                key.clone(),
                "label order must not matter"
            );
            let (base, block) = split_key(&key);
            proptest::prop_assert_eq!(base, "m");
            let parsed = parse_label_block(block.expect("labeled always writes a block"));
            proptest::prop_assert_eq!(
                parsed,
                Some(vec![("ka".to_string(), a), ("kb".to_string(), b)])
            );
        }
    }

    #[test]
    fn labeled_keys_are_canonical_and_escaped() {
        assert_eq!(
            labeled("serve.latency", &[("status", "200"), ("endpoint", "assess")]),
            "serve.latency{endpoint=\"assess\",status=\"200\"}",
            "labels sort by key"
        );
        assert_eq!(
            labeled("m", &[("k", "a\"b\\c\nd")]),
            "m{k=\"a\\\"b\\\\c\\nd\"}",
            "values escape quote, backslash, newline"
        );
        // Same labels in any order → same registry handle.
        let a = counter(&labeled("test.metrics.lbl", &[("x", "1"), ("y", "2")]));
        a.add(5);
        let b = counter(&labeled("test.metrics.lbl", &[("y", "2"), ("x", "1")]));
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn prometheus_renders_labeled_series_under_one_type_line() {
        counter(&labeled("test.metrics.plabel", &[("endpoint", "assess")])).add(3);
        counter(&labeled("test.metrics.plabel", &[("endpoint", "healthz")])).add(1);
        let h = histogram(&labeled("test.metrics.plabelh", &[("endpoint", "assess")]));
        h.record(100);
        h.record(900);
        let text = render_prometheus();
        assert_eq!(
            text.matches("# TYPE adsafe_test_metrics_plabel counter").count(),
            1,
            "one TYPE line for the family: {text}"
        );
        assert!(text.contains("adsafe_test_metrics_plabel{endpoint=\"assess\"} 3"), "{text}");
        assert!(text.contains("adsafe_test_metrics_plabel{endpoint=\"healthz\"} 1"), "{text}");
        // Histogram series carry their labels ahead of `le`.
        assert!(
            text.contains("adsafe_test_metrics_plabelh_bucket{endpoint=\"assess\",le=\"127\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("adsafe_test_metrics_plabelh_bucket{endpoint=\"assess\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("adsafe_test_metrics_plabelh_sum{endpoint=\"assess\"} 1000"), "{text}");
        assert!(text.contains("adsafe_test_metrics_plabelh_count{endpoint=\"assess\"} 2"), "{text}");
    }

    #[test]
    fn render_text_prints_labeled_keys_verbatim() {
        counter(&labeled("test.metrics.tlabel", &[("code", "200")])).add(2);
        let text = render_text();
        assert!(text.contains("counter test.metrics.tlabel{code=\"200\"} 2"), "{text}");
    }

    #[test]
    fn delta_reports_only_changes() {
        let before = counter_snapshot();
        counter("test.metrics.delta").add(7);
        let after = counter_snapshot();
        let d = counter_delta(&before, &after);
        assert!(d.iter().any(|(k, v)| k == "test.metrics.delta" && *v >= 7));
    }
}
