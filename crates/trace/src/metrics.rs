//! Global registry of named counters, gauges, and log₂-scale histograms.
//!
//! Counters are monotonic `AtomicU64`s: increments from any number of
//! worker threads are lock-free and never lose updates. Gauges are
//! settable `AtomicU64`s for instantaneous levels (queue depths, open
//! connections). The registry itself is a mutex-guarded map consulted
//! only on first lookup of a name; callers on hot paths hold the
//! returned [`Counter`]/[`Gauge`] handle.
//!
//! Metric names follow the `phase.component.metric` convention
//! (`parse.lexer.tokens`, `gpu.launch.barrier_phases`, …); snapshots
//! are returned sorted by name so rendered output is deterministic.
//! [`render_text`] exports the whole registry in a stable line-oriented
//! text format (the `adsafe serve` `/metrics` endpoint's body).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, resident entries, open
/// connections): settable, unlike the monotonic [`Counter`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` to the level.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the level (saturating at zero under races).
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: values up to 2⁶³ land in a bucket.
const BUCKETS: usize = 64;

/// A histogram with log₂-scale buckets (bucket *b* counts values whose
/// bit length is *b*, i.e. `2^(b-1) ≤ v < 2^b`; bucket 0 counts zeros).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize; // bit length; 0 for v == 0
        self.buckets[b.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (bucket *b* ⇔ bit length *b*).
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum as f64 / self.count as f64 }
    }

    /// Upper bound of the bucket holding the `q`-quantile (`q` in 0..=1).
    /// Log-scale resolution: the answer is exact to within 2×.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b == 0 { 0 } else { (1u64 << b).saturating_sub(1) };
            }
        }
        u64::MAX
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter named `name`, creating it on first use. Hold the handle
/// on hot paths rather than re-looking it up per increment.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry().counters.lock().expect("counter registry poisoned");
    match map.get(name) {
        Some(c) => Arc::clone(c),
        None => {
            let c = Arc::new(Counter::default());
            map.insert(name.to_string(), Arc::clone(&c));
            c
        }
    }
}

/// The gauge named `name`, creating it on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = registry().gauges.lock().expect("gauge registry poisoned");
    match map.get(name) {
        Some(g) => Arc::clone(g),
        None => {
            let g = Arc::new(Gauge::default());
            map.insert(name.to_string(), Arc::clone(&g));
            g
        }
    }
}

/// The histogram named `name`, creating it on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry().histograms.lock().expect("histogram registry poisoned");
    match map.get(name) {
        Some(h) => Arc::clone(h),
        None => {
            let h = Arc::new(Histogram::default());
            map.insert(name.to_string(), Arc::clone(&h));
            h
        }
    }
}

/// All counters and their current values, sorted by name.
pub fn counter_snapshot() -> BTreeMap<String, u64> {
    let map = registry().counters.lock().expect("counter registry poisoned");
    map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
}

/// Counters whose name starts with `prefix`, sorted by name. Dotted
/// metric families (`serve.status.*`, `chaos.injected.*`) are created
/// dynamically, so consumers — the chaos harness tallying injected
/// faults, a dashboard summing HTTP status classes — enumerate them by
/// prefix rather than by a hardcoded list.
pub fn counters_with_prefix(prefix: &str) -> Vec<(String, u64)> {
    let map = registry().counters.lock().expect("counter registry poisoned");
    map.range(prefix.to_string()..)
        .take_while(|(k, _)| k.starts_with(prefix))
        .map(|(k, v)| (k.clone(), v.get()))
        .collect()
}

/// All gauges and their current levels, sorted by name.
pub fn gauge_snapshot() -> BTreeMap<String, u64> {
    let map = registry().gauges.lock().expect("gauge registry poisoned");
    map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
}

/// All histograms' snapshots, sorted by name.
pub fn histogram_snapshot() -> BTreeMap<String, HistogramSnapshot> {
    let map = registry().histograms.lock().expect("histogram registry poisoned");
    map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
}

/// Renders the whole registry in a stable text format: one
/// space-separated line per metric, sorted by kind then name, so two
/// snapshots of the same state are byte-identical. Histograms render
/// their count, sum, and log₂-resolution p50/p99 bucket bounds.
///
/// ```text
/// # adsafe-metrics/1
/// counter cache.hits 12
/// gauge pool.queue_depth 3
/// hist serve.request_us count 4 sum 81236 p50 16383 p99 32767
/// ```
pub fn render_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# adsafe-metrics/1\n");
    for (name, v) in counter_snapshot() {
        let _ = writeln!(out, "counter {name} {v}");
    }
    for (name, v) in gauge_snapshot() {
        let _ = writeln!(out, "gauge {name} {v}");
    }
    for (name, h) in histogram_snapshot() {
        let _ = writeln!(
            out,
            "hist {name} count {} sum {} p50 {} p99 {}",
            h.count,
            h.sum,
            h.quantile_bound(0.5),
            h.quantile_bound(0.99)
        );
    }
    out
}

/// Renders the whole registry in the Prometheus text exposition format
/// (version 0.0.4). Metric names map `phase.component.metric` →
/// `adsafe_phase_component_metric` (every character outside
/// `[a-zA-Z0-9_]` becomes `_`, and everything gains the `adsafe_`
/// prefix). Counters and gauges emit a `# TYPE` line and one sample;
/// log₂ histograms emit the standard cumulative `_bucket` series (one
/// `le` per non-empty bit-length bucket, upper bound `2^b − 1`, plus
/// `le="+Inf"`), `_sum`, and `_count`.
pub fn render_prometheus() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, v) in counter_snapshot() {
        let n = prometheus_name(&name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in gauge_snapshot() {
        let n = prometheus_name(&name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
    }
    for (name, h) in histogram_snapshot() {
        let n = prometheus_name(&name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (b, &count) in h.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            // Bucket b holds values of bit length b: upper bound 2^b−1
            // (bucket 0 holds only zeros, bound 0).
            let le = if b == 0 { 0 } else { (1u64 << b) - 1 };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// Maps a registry metric name onto the Prometheus grammar.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("adsafe_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Per-counter increase from `before` to `after` (new counters count
/// from zero); zero deltas are omitted. Counters are global, so in a
/// multi-threaded process the delta attributes concurrent increments
/// from other runs to this window — treat it as best-effort.
pub fn counter_delta(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> Vec<(String, u64)> {
    after
        .iter()
        .filter_map(|(k, &v)| {
            let delta = v.saturating_sub(before.get(k).copied().unwrap_or(0));
            (delta > 0).then(|| (k.clone(), delta))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = counter("test.metrics.counter_a");
        let base = c.get();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), base + 4);
        // Same name → same counter.
        assert_eq!(counter("test.metrics.counter_a").get(), base + 4);
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        let name = "test.metrics.concurrent";
        let base = counter(name).get();
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(move || {
                    let c = counter(name);
                    for _ in 0..per_thread {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter(name).get(), base + threads as u64 * per_thread);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[11], 1); // 1024
        assert!(s.mean() > 200.0);
        assert_eq!(s.quantile_bound(0.5), 3);
        assert_eq!(s.quantile_bound(1.0), 2047);
    }

    #[test]
    fn gauges_are_settable_and_saturate() {
        let g = gauge("test.metrics.gauge_a");
        g.set(5);
        assert_eq!(g.get(), 5);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 6);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        // Same name → same gauge.
        assert_eq!(gauge("test.metrics.gauge_a").get(), 0);
    }

    #[test]
    fn render_text_is_stable_and_complete() {
        counter("test.metrics.render_c").add(2);
        gauge("test.metrics.render_g").set(7);
        histogram("test.metrics.render_h").record(100);
        let a = render_text();
        let b = render_text();
        assert_eq!(a, b, "same state renders byte-identically");
        assert!(a.starts_with("# adsafe-metrics/1\n"), "{a}");
        assert!(a.contains("counter test.metrics.render_c 2"), "{a}");
        assert!(a.contains("gauge test.metrics.render_g 7"), "{a}");
        assert!(a.lines().any(|l| l.starts_with("hist test.metrics.render_h count ")), "{a}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        counter("test.metrics.prom-c").add(4);
        gauge("test.metrics.prom_g").set(9);
        let h = histogram("test.metrics.prom_h");
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(1000);
        let text = render_prometheus();
        assert_eq!(text, render_prometheus(), "stable across renders");
        // Dots and dashes both map to underscores, with the adsafe_ prefix.
        assert!(text.contains("# TYPE adsafe_test_metrics_prom_c counter"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_c 4"), "{text}");
        assert!(text.contains("# TYPE adsafe_test_metrics_prom_g gauge"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_g 9"), "{text}");
        // Histogram: cumulative buckets at bit-length bounds.
        assert!(text.contains("# TYPE adsafe_test_metrics_prom_h histogram"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_bucket{le=\"1023\"} 4"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_sum 1006"), "{text}");
        assert!(text.contains("adsafe_test_metrics_prom_h_count 4"), "{text}");
        // Cumulative monotonicity across every histogram in the dump.
        let mut last: Option<(String, u64)> = None;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let (metric, rest) = line.split_once("_bucket{").unwrap();
            let v: u64 = rest.split(' ').nth(1).unwrap().parse().unwrap();
            if let Some((m, prev)) = &last {
                if m == metric {
                    assert!(v >= *prev, "cumulative counts must not decrease: {line}");
                }
            }
            last = Some((metric.to_string(), v));
        }
    }

    #[test]
    fn delta_reports_only_changes() {
        let before = counter_snapshot();
        counter("test.metrics.delta").add(7);
        let after = counter_snapshot();
        let d = counter_delta(&before, &after);
        assert!(d.iter().any(|(k, v)| k == "test.metrics.delta" && *v >= 7));
    }
}
