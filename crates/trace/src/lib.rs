//! # adsafe-trace — self-observability for the assessment toolchain
//!
//! The paper's assessment is a measurement exercise (Lizard metrics,
//! RapiCover coverage, cuda4cpu timing); this crate lets the toolchain
//! measure *itself*. Zero dependencies, std only.
//!
//! Three layers:
//!
//! * **Spans** ([`span`], [`span_with`]) — hierarchical wall-clock spans
//!   with RAII guards over thread-local span stacks. Closed spans are
//!   buffered per thread; [`mark`]/[`drain_from`] scope collection to
//!   one run. Exportable as Chrome trace-event JSON ([`chrome`]) —
//!   loadable in `chrome://tracing` / Perfetto — or as an in-terminal
//!   flame summary ([`flame`]).
//! * **Metrics** ([`counter`], [`histogram`]) — a global registry of
//!   named monotonic counters (lock-free increments) and log₂-scale
//!   histograms. Names follow the `phase.component.metric` convention
//!   (see DESIGN.md §7).
//! * **Summaries** ([`TraceSummary`]) — per-phase wall time, slowest
//!   files and rules, and counter deltas distilled from one run's
//!   events; [`bench`] serialises phase timings as the
//!   `BENCH_pipeline.json` perf baseline CI regresses against.
//! * **Allocation profiling** ([`alloc`]) — an opt-in
//!   `#[global_allocator]` wrapper ([`CountingAlloc`]) billing every
//!   heap allocation to the phase span active on the allocating
//!   thread: totals, live/peak gauges, a size-class histogram, and
//!   per-phase tables for `--mem-profile`, `/metrics`, and the
//!   frontend benchmark (see DESIGN.md §14).
//!
//! ```
//! let m = adsafe_trace::mark();
//! {
//!     let _outer = adsafe_trace::span("phase.parse", "phase");
//!     let _inner = adsafe_trace::span("parse.file", "parse");
//! }
//! let events = adsafe_trace::drain_from(m);
//! assert_eq!(events.len(), 2);
//! // Inner spans close (and are recorded) first.
//! assert_eq!(events[0].name, "parse.file");
//! assert_eq!(events[1].depth, 0);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod bench;
pub mod chrome;
pub mod flame;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod summary;

pub use alloc::{CountingAlloc, MemStats, PhaseMem};
pub use metrics::{
    counter, counter_delta, counter_snapshot, counters_with_prefix, gauge, gauge_snapshot,
    histogram, histogram_snapshot, labeled, render_prometheus, render_text, Counter, Gauge,
    Histogram, HistogramSnapshot,
};
pub use recorder::{FlightRecorder, PhaseTiming, RequestRecord};
pub use span::{
    absorb, drain_from, enabled, mark, now_us, set_enabled, span, span_with, SpanEvent, SpanGuard,
};
pub use summary::{PhaseTime, TraceSummary};
