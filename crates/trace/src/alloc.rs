//! Phase-attributed allocation profiling: a `#[global_allocator]`
//! wrapper over [`std::alloc::System`] that bills every heap
//! allocation to the pipeline phase that made it.
//!
//! The workspace deliberately vendors no allocator or profiler crates,
//! so the instrument is built from the same primitives the rest of the
//! trace plane uses: lock-free `AtomicU64`s for the global totals
//! (bytes allocated/freed, live bytes, peak live, allocation count), a
//! const-initialised [`Histogram`] for the log₂ size-class
//! distribution, and a fixed table of per-phase slots indexed by a
//! thread-local tag the span stack maintains (see `span.rs`:
//! `cat == "phase"` spans push their stripped name — `parse`,
//! `checks.native`, `render`, … — and restore the previous tag on
//! drop, including during panic unwinding). `adsafe-pool` workers
//! inherit the spawning thread's tag at task start, so allocations
//! made inside `pool.map` are billed to the phase that fanned out.
//!
//! # The hooks allocate nothing
//!
//! Everything touched on the alloc/dealloc path is a static with a
//! `const` constructor: a heap allocation inside the hooks would
//! recurse into the allocator. This is why the metrics *registry*
//! (mutex + `BTreeMap`) is never consulted from the hot path — phase
//! *names* live in a mutex-guarded table touched only when a phase
//! span opens (rare, and on normal code), while the hooks see only a
//! `usize` slot index read via `try_with` (safe during thread-local
//! teardown, when allocations still occur).
//!
//! # Cost when off, and the determinism contract
//!
//! Profiling defaults **off**: each hook then costs a single relaxed
//! atomic load (the ≤5% overhead budget in CI's pipeline-bench gate is
//! measured in this state, since nothing in the bench enables it).
//! When enabled (`--mem-profile`, the daemon, the frontend bench), the
//! numbers feed only observability surfaces — `--mem-profile` tables,
//! the flame view, `/metrics`, `/healthz`, the flight recorder, and
//! `adsafe top`. They never enter the deterministic report, which must
//! stay byte-identical with profiling on or off and at any `--jobs`
//! (see DESIGN.md §14 and the determinism matrix in
//! `tests/parallel_pipeline.rs`).

use crate::metrics::{gauge, labeled, Histogram, HistogramSnapshot};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The instrumented allocator. Declare it as the global allocator in a
/// binary (or an integration-test crate) to activate the hooks:
///
/// ```text
/// #[global_allocator]
/// static ALLOC: adsafe_trace::alloc::CountingAlloc = adsafe_trace::alloc::CountingAlloc;
/// ```
///
/// Until [`set_profiling`]`(true)` is called the wrapper forwards to
/// [`System`] with one relaxed load of overhead per call.
pub struct CountingAlloc;

/// Master switch; default off so un-instrumented runs pay one relaxed
/// load per allocator call and nothing else.
static PROFILING: AtomicBool = AtomicBool::new(false);

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Log₂ size-class distribution of allocation request sizes.
static SIZE_HIST: Histogram = Histogram::new();

/// Fixed capacity of the per-phase slot table. Slot 0 is the untagged
/// catch-all ("other"); a run registers ~6 phases, so 32 is generous.
/// Registration past the capacity falls back to slot 0 rather than
/// allocating — the hooks must stay allocation-free.
const MAX_PHASES: usize = 32;

/// One phase's accumulators. `peak_live` is the highest *global* live
/// level observed while an allocation was billed to this phase — a
/// "peak RSS during phase" reading, not a per-phase live ledger (frees
/// are not phase-attributed; the thread freeing a buffer often isn't
/// the phase that allocated it).
struct PhaseSlot {
    allocs: AtomicU64,
    bytes: AtomicU64,
    peak_live: AtomicU64,
}

impl PhaseSlot {
    const fn new() -> Self {
        PhaseSlot {
            allocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
        }
    }
}

static PHASE_SLOTS: [PhaseSlot; MAX_PHASES] = [const { PhaseSlot::new() }; MAX_PHASES];

/// Registered phase names; index `i` owns slot `i + 1`. Locked only
/// when a phase span opens or a snapshot is taken — never in the
/// allocator hooks.
static PHASE_NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

thread_local! {
    /// The slot every allocation on this thread is billed to. Const
    /// init keeps first touch allocation-free, and `Cell<usize>` has
    /// no destructor to register.
    static CURRENT_PHASE: Cell<usize> = const { Cell::new(0) };
}

/// Enables or disables allocation profiling process-wide; returns the
/// previous state. Counts accumulate monotonically while enabled —
/// read deltas of [`stats`]/[`phase_stats`] to scope a window.
pub fn set_profiling(on: bool) -> bool {
    PROFILING.swap(on, Ordering::Relaxed)
}

/// Whether allocation profiling is currently enabled.
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Registers `name` (idempotently) and returns its slot index for
/// [`set_current_phase`]. Returns slot 0 once the fixed table is full.
pub fn phase_index(name: &str) -> usize {
    let mut names = PHASE_NAMES.lock().expect("phase name table poisoned");
    if let Some(i) = names.iter().position(|n| n == name) {
        return i + 1;
    }
    if names.len() + 1 >= MAX_PHASES {
        return 0;
    }
    names.push(name.to_string());
    names.len()
}

/// This thread's current billing slot (0 = untagged).
pub fn current_phase() -> usize {
    CURRENT_PHASE.try_with(Cell::get).unwrap_or(0)
}

/// Sets this thread's billing slot and returns the previous one, so
/// callers (the span stack, pool workers) can restore it.
pub fn set_current_phase(slot: usize) -> usize {
    CURRENT_PHASE
        .try_with(|c| c.replace(if slot < MAX_PHASES { slot } else { 0 }))
        .unwrap_or(0)
}

/// Point-in-time totals from the instrumented allocator. All zeros
/// unless a [`CountingAlloc`] is installed *and* profiling is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemStats {
    /// Total bytes requested from the allocator while profiling.
    pub allocated_bytes: u64,
    /// Total bytes returned to the allocator while profiling.
    pub freed_bytes: u64,
    /// Currently live (allocated − freed) bytes.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_live_bytes: u64,
    /// Number of allocation calls (reallocs count once).
    pub alloc_count: u64,
    /// Log₂ size-class distribution of allocation sizes.
    pub size_classes: HistogramSnapshot,
}

/// Snapshot of the global allocator totals.
pub fn stats() -> MemStats {
    MemStats {
        allocated_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_live_bytes: PEAK.load(Ordering::Relaxed),
        alloc_count: ALLOC_COUNT.load(Ordering::Relaxed),
        size_classes: SIZE_HIST.snapshot(),
    }
}

/// Total bytes allocated so far (monotonic while profiling); the
/// cheap single-value read the per-request delta in `adsafe-serve`
/// uses.
pub fn total_allocated() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

/// Currently live bytes.
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live bytes.
pub fn peak_live_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak-live high-water mark to the current live level, so
/// a long-lived process (or a bench run) can scope the peak to a
/// window. Totals are never reset.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// One phase's allocation totals, as reported by [`phase_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseMem {
    /// Phase name as the span stack registered it (`parse`,
    /// `checks.native`, …); `other` is the untagged catch-all.
    pub name: String,
    /// Allocation calls billed to the phase.
    pub allocs: u64,
    /// Bytes billed to the phase.
    pub bytes: u64,
    /// Highest global live level observed during the phase.
    pub peak_live: u64,
}

/// Per-phase totals, untagged catch-all first, then phases in
/// registration order. Monotonic while profiling; callers wanting a
/// single run's bill diff two snapshots (`peak_live` maxes rather
/// than adds, so the delta keeps the later snapshot's value).
pub fn phase_stats() -> Vec<PhaseMem> {
    let names = PHASE_NAMES.lock().expect("phase name table poisoned");
    let mut out = Vec::with_capacity(names.len() + 1);
    for (slot, name) in
        std::iter::once("other").chain(names.iter().map(String::as_str)).enumerate()
    {
        let s = &PHASE_SLOTS[slot];
        out.push(PhaseMem {
            name: name.to_string(),
            allocs: s.allocs.load(Ordering::Relaxed),
            bytes: s.bytes.load(Ordering::Relaxed),
            peak_live: s.peak_live.load(Ordering::Relaxed),
        });
    }
    out
}

/// The increase from `before` to `after` per phase (new phases count
/// from zero); phases with no allocations in the window are omitted.
/// `peak_live` is not additive — the delta carries `after`'s value.
pub fn phase_delta(before: &[PhaseMem], after: &[PhaseMem]) -> Vec<PhaseMem> {
    after
        .iter()
        .filter_map(|a| {
            let b = before.iter().find(|b| b.name == a.name);
            let allocs = a.allocs - b.map_or(0, |b| b.allocs);
            let bytes = a.bytes - b.map_or(0, |b| b.bytes);
            (allocs > 0).then(|| PhaseMem {
                name: a.name.clone(),
                allocs,
                bytes,
                peak_live: a.peak_live,
            })
        })
        .collect()
}

/// Publishes the allocator totals into the metrics registry —
/// `mem.live_bytes` / `mem.peak_bytes` gauges plus one
/// `mem.phase{phase="…"}` bytes gauge per registered phase — so
/// `/metrics` exports them in both the text and Prometheus formats.
/// Call before rendering; gauges, not counters, because the registry
/// mirrors a level the allocator owns.
pub fn publish_metrics() {
    gauge("mem.live_bytes").set(live_bytes());
    gauge("mem.peak_bytes").set(peak_live_bytes());
    for p in phase_stats() {
        gauge(&labeled("mem.phase", &[("phase", &p.name)])).set(p.bytes);
    }
}

/// Billing hook for one successful allocation of `size` bytes.
#[inline]
fn on_alloc(size: usize) {
    if !PROFILING.load(Ordering::Relaxed) {
        return;
    }
    let size = size as u64;
    ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
    SIZE_HIST.record(size);
    let slot = CURRENT_PHASE.try_with(Cell::get).unwrap_or(0);
    let s = &PHASE_SLOTS[slot.min(MAX_PHASES - 1)];
    s.allocs.fetch_add(1, Ordering::Relaxed);
    s.bytes.fetch_add(size, Ordering::Relaxed);
    s.peak_live.fetch_max(live, Ordering::Relaxed);
}

/// Billing hook for one deallocation of `size` bytes. Saturating: a
/// block allocated before profiling was enabled must not wrap the
/// live gauge when freed after.
#[inline]
fn on_dealloc(size: usize) {
    if !PROFILING.load(Ordering::Relaxed) {
        return;
    }
    let size = size as u64;
    FREED_BYTES.fetch_add(size, Ordering::Relaxed);
    let mut cur = LIVE.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(size);
        match LIVE.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

// SAFETY: every method forwards verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the hooks touch only static atomics and
// a const-initialised thread-local, so they cannot allocate, panic, or
// otherwise re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit tests exercise the bookkeeping by calling the hooks
    // directly: the test binary does not install `CountingAlloc` (the
    // workspace-level integration tests do), so real allocations are
    // invisible here and the arithmetic can be asserted exactly.

    /// Serialises tests that flip the global `PROFILING` switch.
    static PROFILING_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn hooks_are_inert_until_enabled() {
        let _l = PROFILING_LOCK.lock().unwrap();
        let before = stats();
        on_alloc(4096);
        on_dealloc(4096);
        assert_eq!(stats(), before, "disabled hooks must not count");
    }

    #[test]
    fn totals_live_and_peak_track_alloc_free_pairs() {
        let _l = PROFILING_LOCK.lock().unwrap();
        let prev = set_profiling(true);
        let before = stats();
        on_alloc(1000);
        on_alloc(24);
        on_dealloc(1000);
        let after = stats();
        set_profiling(prev);
        assert_eq!(after.allocated_bytes - before.allocated_bytes, 1024);
        assert_eq!(after.freed_bytes - before.freed_bytes, 1000);
        assert_eq!(after.alloc_count - before.alloc_count, 2);
        assert!(after.peak_live_bytes >= before.live_bytes + 1024);
        assert!(after.size_classes.count > before.size_classes.count);
    }

    #[test]
    fn dealloc_saturates_instead_of_wrapping() {
        let _l = PROFILING_LOCK.lock().unwrap();
        let prev = set_profiling(true);
        // Free a block "allocated before profiling was enabled": far
        // larger than anything the sibling tests leave live.
        on_dealloc(1 << 40);
        let live = live_bytes();
        set_profiling(prev);
        assert_eq!(live, 0, "live gauge must saturate at zero");
    }

    #[test]
    fn phase_attribution_bills_the_current_tag() {
        let _l = PROFILING_LOCK.lock().unwrap();
        let idx = phase_index("test.alloc.phase_a");
        assert!(idx > 0, "registration must find a free slot");
        assert_eq!(phase_index("test.alloc.phase_a"), idx, "idempotent");
        let prev_phase = set_current_phase(idx);
        let prev = set_profiling(true);
        let before = phase_stats();
        on_alloc(512);
        let after = phase_stats();
        set_profiling(prev);
        set_current_phase(prev_phase);
        let d = phase_delta(&before, &after);
        assert_eq!(d.len(), 1, "only the tagged phase changed: {d:?}");
        assert_eq!(d[0].name, "test.alloc.phase_a");
        assert_eq!(d[0].allocs, 1);
        assert_eq!(d[0].bytes, 512);
        assert!(d[0].peak_live > 0);
    }

    #[test]
    fn untagged_allocations_land_in_other() {
        let _l = PROFILING_LOCK.lock().unwrap();
        let prev_phase = set_current_phase(0);
        let prev = set_profiling(true);
        let before = phase_stats();
        on_alloc(64);
        let after = phase_stats();
        set_profiling(prev);
        set_current_phase(prev_phase);
        let d = phase_delta(&before, &after);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].name, "other");
    }

    #[test]
    fn publish_metrics_exports_gauges() {
        let _l = PROFILING_LOCK.lock().unwrap();
        let idx = phase_index("test.alloc.publish");
        let prev_phase = set_current_phase(idx);
        let prev = set_profiling(true);
        on_alloc(2048);
        publish_metrics();
        set_profiling(prev);
        set_current_phase(prev_phase);
        let gauges = crate::metrics::gauge_snapshot();
        assert!(gauges.contains_key("mem.live_bytes"), "{gauges:?}");
        assert!(gauges.contains_key("mem.peak_bytes"), "{gauges:?}");
        let key = labeled("mem.phase", &[("phase", "test.alloc.publish")]);
        assert!(gauges.get(&key).is_some_and(|&v| v >= 2048), "{gauges:?}");
    }

    #[test]
    fn set_current_phase_returns_previous_and_rejects_out_of_range() {
        let prev = set_current_phase(3);
        assert_eq!(set_current_phase(MAX_PHASES + 7), 3);
        assert_eq!(current_phase(), 0, "out-of-range tags fall back to untagged");
        set_current_phase(prev);
    }
}
