//! Chrome trace-event export.
//!
//! Serialises [`SpanEvent`]s in the Chrome trace-event "JSON object
//! format": a top-level object whose `traceEvents` array holds one
//! complete (`"ph": "X"`) event per span. The output loads directly in
//! `chrome://tracing` and Perfetto. [`validate`] parses a trace back
//! and checks the invariants the viewers rely on, which is how the
//! integration tests prove round-tripping.

use crate::json::{write_escaped, Json};
use crate::span::SpanEvent;
use std::fmt::Write as _;

/// Serialises `events` as a Chrome trace-event JSON document.
pub fn to_chrome_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"adsafe-trace\"},");
    out.push_str("\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":");
        write_escaped(&mut out, &e.name);
        out.push_str(",\"cat\":");
        write_escaped(&mut out, e.cat);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            e.start_us, e.dur_us, e.tid
        );
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, k);
                out.push(':');
                write_escaped(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}");
    out
}

/// Parses a Chrome trace-event document and verifies viewer invariants:
/// `traceEvents` exists, every event has `name`/`ph`/`ts`/`pid`/`tid`,
/// and every `"X"` event has a non-negative `dur`. Returns the event
/// count.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    for (i, e) in events.iter().enumerate() {
        let name = e.get("name").and_then(Json::as_str);
        if name.is_none_or(str::is_empty) {
            return Err(format!("event {i}: missing or empty `name`"));
        }
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        for key in ["ts", "pid", "tid"] {
            if e.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("event {i}: missing numeric `{key}`"));
            }
        }
        if ph == "X" {
            let dur = e
                .get("dur")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: complete event without `dur`"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative `dur`"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, start: u64, dur: u64, depth: usize) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            cat: "test",
            start_us: start,
            dur_us: dur,
            depth,
            tid: 1,
            args: vec![("path", "dir/a \"x\".cc".to_string())],
        }
    }

    #[test]
    fn export_validates_and_round_trips() {
        let events = vec![ev("phase.parse", 0, 100, 0), ev("parse.file", 10, 50, 1)];
        let text = to_chrome_json(&events);
        assert_eq!(validate(&text).unwrap(), 2);
        let doc = Json::parse(&text).unwrap();
        let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("phase.parse"));
        assert_eq!(arr[1].get("dur").unwrap().as_f64(), Some(50.0));
        assert_eq!(
            arr[1].get("args").unwrap().get("path").unwrap().as_str(),
            Some("dir/a \"x\".cc")
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate(&to_chrome_json(&[])).unwrap(), 0);
    }

    #[test]
    fn validate_rejects_missing_fields() {
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(
            validate(r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]}"#)
                .is_err(),
            "X event without dur must be rejected"
        );
    }
}
