//! Bounded in-memory flight recorder for completed requests.
//!
//! A serving daemon needs per-request history — which endpoint, which
//! status, how long each phase took — without unbounded growth and
//! without a write-side lock on the request hot path worth worrying
//! about. [`FlightRecorder`] is a FIFO ring of [`RequestRecord`]s
//! behind one short mutexed push per *completed* request: records are
//! built fully off-lock and inserted whole, so a reader can never
//! observe a half-written record (a connection that dies mid-request
//! simply never records). When the ring is full the oldest record is
//! evicted first; `recorded() − len()` records have scrolled away.
//!
//! Two export shapes serve the daemon's telemetry endpoints: one JSON
//! line per record ([`RequestRecord::to_json_line`], the `/requests`
//! access log) and a Chrome trace-event document re-emitted through
//! [`crate::chrome`] ([`FlightRecorder::to_chrome_json`], the
//! `/trace/recent` endpoint) where each connection becomes a `tid`
//! track and each request a complete event with its phases nested
//! under it.

use crate::chrome;
use crate::json::write_escaped;
use crate::span::SpanEvent;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One timed slice of a request (queue-wait, parse, checks, metrics,
/// render, write, …), in µs since the process trace epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name, e.g. `"parse"` or `"queue_wait"`.
    pub name: String,
    /// Start, µs since the process trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

/// One completed request, recorded at response close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Monotonic sequence number assigned by the recorder (1-based);
    /// strictly increasing in ring order, so FIFO eviction is visible
    /// as a contiguous low-end gap.
    pub seq: u64,
    /// Ledger run ID (`r000042-1a2b3c4d`), empty for endpoints that do
    /// not reserve a run.
    pub run_id: String,
    /// HTTP method.
    pub method: String,
    /// Request path without the query string, e.g. `/assess`.
    pub endpoint: String,
    /// Response status code.
    pub status: u16,
    /// Server-assigned connection ID (1-based).
    pub conn_id: u64,
    /// Zero-based index of this request on its connection; > 0 means
    /// the request rode a kept-alive connection.
    pub reuse: u64,
    /// Request start, µs since the process trace epoch.
    pub start_us: u64,
    /// Total request wall time in µs (read → response written).
    pub total_us: u64,
    /// Heap bytes allocated process-wide while the request ran (delta
    /// of the instrumented allocator's total; 0 when memory profiling
    /// is off). Best-effort under concurrency, like counter deltas:
    /// overlapping requests see each other's allocations.
    pub alloc_bytes: u64,
    /// Phase breakdown, ordered by start time.
    pub phases: Vec<PhaseTiming>,
}

impl RequestRecord {
    /// Serialises the record as one line of JSON (no trailing newline)
    /// — the `/requests` JSONL access-log row.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160 + self.phases.len() * 48);
        let _ = write!(out, "{{\"seq\":{},\"run\":", self.seq);
        write_escaped(&mut out, &self.run_id);
        out.push_str(",\"method\":");
        write_escaped(&mut out, &self.method);
        out.push_str(",\"endpoint\":");
        write_escaped(&mut out, &self.endpoint);
        let _ = write!(
            out,
            ",\"status\":{},\"conn\":{},\"reuse\":{},\"start_us\":{},\"total_us\":{},\
             \"alloc_bytes\":{},\"phases\":[",
            self.status, self.conn_id, self.reuse, self.start_us, self.total_us, self.alloc_bytes
        );
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &p.name);
            let _ = write!(out, ",\"start_us\":{},\"dur_us\":{}}}", p.start_us, p.dur_us);
        }
        out.push_str("]}");
        out
    }

    /// The record as span events: one parent covering the request and
    /// one child per phase, all on the connection's `tid` track.
    fn to_span_events(&self) -> Vec<SpanEvent> {
        let mut events = Vec::with_capacity(1 + self.phases.len());
        events.push(SpanEvent {
            name: format!("{} {}", self.method, self.endpoint),
            cat: "serve",
            start_us: self.start_us,
            dur_us: self.total_us,
            depth: 0,
            tid: self.conn_id,
            args: vec![
                ("run", self.run_id.clone()),
                ("status", self.status.to_string()),
                ("reuse", self.reuse.to_string()),
                ("seq", self.seq.to_string()),
            ],
        });
        for p in &self.phases {
            events.push(SpanEvent {
                name: p.name.clone(),
                cat: "serve.phase",
                start_us: p.start_us,
                dur_us: p.dur_us,
                depth: 1,
                tid: self.conn_id,
                args: Vec::new(),
            });
        }
        events
    }
}

/// Bounded FIFO ring of completed-request records.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<RequestRecord>>,
    cap: usize,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` records (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(cap)),
            cap,
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Appends a completed record, evicting the oldest when full.
    /// Assigns and returns the record's sequence number. The sequence
    /// is taken under the ring lock, so ring order and `seq` order
    /// always agree even with concurrent recorders.
    pub fn record(&self, mut record: RequestRecord) -> u64 {
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        let seq = self.recorded.fetch_add(1, Ordering::Relaxed) + 1;
        record.seq = seq;
        if ring.len() == self.cap {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
        seq
    }

    /// Copies the ring oldest-first.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        let ring = self.ring.lock().expect("flight recorder poisoned");
        ring.iter().cloned().collect()
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder poisoned").len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum records held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total records ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Re-emits the ring as a Chrome trace-event JSON document via the
    /// [`crate::chrome`] exporter: per record, one complete event for
    /// the request (args carry run ID, status, reuse index, seq) with
    /// its phases as nested events, tracked per connection via `tid`.
    /// The output loads in `chrome://tracing` and passes
    /// [`chrome::validate`].
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<SpanEvent> =
            self.snapshot().iter().flat_map(RequestRecord::to_span_events).collect();
        chrome::to_chrome_json(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn rec(endpoint: &str, status: u16, conn: u64) -> RequestRecord {
        RequestRecord {
            seq: 0,
            run_id: if endpoint == "/assess" { "r000001-00c0ffee".into() } else { String::new() },
            method: "GET".into(),
            endpoint: endpoint.into(),
            status,
            conn_id: conn,
            reuse: 2,
            start_us: 1000,
            total_us: 250,
            alloc_bytes: 65536,
            phases: vec![
                PhaseTiming { name: "queue_wait".into(), start_us: 1000, dur_us: 40 },
                PhaseTiming { name: "write".into(), start_us: 1200, dur_us: 50 },
            ],
        }
    }

    #[test]
    fn eviction_is_fifo_and_seq_is_contiguous() {
        let fr = FlightRecorder::new(4);
        for i in 0..6 {
            fr.record(rec("/assess", 200, i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.capacity(), 4);
        assert_eq!(fr.recorded(), 6);
        assert_eq!(fr.evicted(), 2);
        let snap = fr.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [3, 4, 5, 6], "oldest records evicted first");
        assert_eq!(snap[0].conn_id, 2, "records keep their payload through the ring");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let fr = FlightRecorder::new(0);
        assert_eq!(fr.capacity(), 1);
        fr.record(rec("/healthz", 200, 1));
        fr.record(rec("/healthz", 200, 2));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.snapshot()[0].conn_id, 2);
    }

    #[test]
    fn json_line_round_trips() {
        let fr = FlightRecorder::new(8);
        fr.record(rec("/assess", 200, 7));
        let line = fr.snapshot()[0].to_json_line();
        assert!(!line.contains('\n'), "JSONL rows are single lines: {line}");
        let doc = Json::parse(&line).expect("row parses");
        assert_eq!(doc.get("seq").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("run").and_then(Json::as_str), Some("r000001-00c0ffee"));
        assert_eq!(doc.get("endpoint").and_then(Json::as_str), Some("/assess"));
        assert_eq!(doc.get("status").and_then(Json::as_f64), Some(200.0));
        assert_eq!(doc.get("conn").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("reuse").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("alloc_bytes").and_then(Json::as_f64), Some(65536.0));
        let phases = doc.get("phases").and_then(Json::as_arr).expect("phases array");
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("name").and_then(Json::as_str), Some("queue_wait"));
        assert_eq!(phases[1].get("dur_us").and_then(Json::as_f64), Some(50.0));
    }

    #[test]
    fn chrome_reemission_validates_with_phase_children() {
        let fr = FlightRecorder::new(8);
        fr.record(rec("/assess", 200, 1));
        fr.record(rec("/metrics", 200, 2));
        let text = fr.to_chrome_json();
        // 2 records × (1 parent + 2 phases).
        assert_eq!(chrome::validate(&text).expect("validator-clean"), 6);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("GET /assess"));
        assert_eq!(
            events[0].get("args").and_then(|a| a.get("run")).and_then(Json::as_str),
            Some("r000001-00c0ffee")
        );
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("queue_wait"));
        assert_eq!(events[1].get("cat").and_then(Json::as_str), Some("serve.phase"));
        // Connections map onto tid tracks.
        assert_eq!(events[0].get("tid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(events[3].get("tid").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn empty_recorder_exports_a_valid_empty_trace() {
        let fr = FlightRecorder::new(4);
        assert!(fr.is_empty());
        assert_eq!(chrome::validate(&fr.to_chrome_json()).unwrap(), 0);
    }
}
