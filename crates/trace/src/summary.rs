//! Distilled per-run observability: the [`TraceSummary`] that rides on
//! an `AssessmentReport`.
//!
//! Built from one run's drained [`SpanEvent`]s: per-phase wall time
//! (spans with category `"phase"`), the slowest files (`parse.file`
//! spans, annotated with their `path` arg), the slowest checker rules
//! (`check.*` spans, aggregated per rule), and the run's counter
//! deltas.

use crate::span::SpanEvent;

/// Wall time of one pipeline phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTime {
    /// Phase name (`parse`, `checks`, `metrics`, `assess`).
    pub name: String,
    /// Wall-clock time in µs.
    pub wall_us: u64,
}

/// Per-run trace digest: phase timings, hotspots, counters, and the
/// raw events (for Chrome export / flame rendering).
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Whole-run wall time in µs (the `assessment.run` span).
    pub total_us: u64,
    /// Per-phase wall time, in execution order.
    pub phases: Vec<PhaseTime>,
    /// Top files by time spent handling them (path, µs), descending.
    pub slowest_files: Vec<(String, u64)>,
    /// Top checker rules by total run time (rule id, µs), descending.
    pub slowest_rules: Vec<(String, u64)>,
    /// Counter increments attributable to this run (best-effort in a
    /// multi-threaded process), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-phase allocation totals for this run (empty unless a
    /// [`crate::alloc::CountingAlloc`] is installed and profiling was
    /// on — the pipeline attaches the delta of
    /// [`crate::alloc::phase_stats`] across the run).
    pub phase_mem: Vec<crate::alloc::PhaseMem>,
    /// The run's raw span events.
    pub events: Vec<SpanEvent>,
}

/// How many hotspots [`TraceSummary`] keeps per category.
pub const TOP_N: usize = 10;

impl TraceSummary {
    /// Builds the digest from one run's drained events plus a counter
    /// delta (see [`crate::counter_delta`]).
    pub fn from_events(events: Vec<SpanEvent>, counters: Vec<(String, u64)>) -> Self {
        let mut phases = Vec::new();
        let mut files: Vec<(String, u64)> = Vec::new();
        let mut rules: Vec<(String, u64)> = Vec::new();
        let mut total_us = 0u64;
        for e in &events {
            if e.cat == "phase" {
                let name = e.name.strip_prefix("phase.").unwrap_or(&e.name).to_string();
                match phases.iter_mut().find(|p: &&mut PhaseTime| p.name == name) {
                    Some(p) => p.wall_us += e.dur_us,
                    None => phases.push(PhaseTime { name, wall_us: e.dur_us }),
                }
            } else if e.name == "assessment.run" {
                total_us = total_us.max(e.dur_us);
            } else if e.name == "parse.file" {
                if let Some((_, path)) = e.args.iter().find(|(k, _)| *k == "path") {
                    files.push((path.clone(), e.dur_us));
                }
            } else if let Some(rule) = e.name.strip_prefix("check.") {
                match rules.iter_mut().find(|(r, _)| r == rule) {
                    Some((_, us)) => *us += e.dur_us,
                    None => rules.push((rule.to_string(), e.dur_us)),
                }
            }
        }
        if total_us == 0 {
            total_us = phases.iter().map(|p| p.wall_us).sum();
        }
        let top = |mut v: Vec<(String, u64)>| {
            // Stable tie-break on the name keeps output deterministic.
            v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            v.truncate(TOP_N);
            v
        };
        TraceSummary {
            total_us,
            phases,
            slowest_files: top(files),
            slowest_rules: top(rules),
            counters,
            phase_mem: Vec::new(),
            events,
        }
    }

    /// Allocation totals of `phase` (bytes billed during this run), if
    /// memory profiling captured it.
    pub fn phase_mem_bytes(&self, phase: &str) -> Option<u64> {
        self.phase_mem.iter().find(|p| p.name == phase).map(|p| p.bytes)
    }

    /// Wall time of `phase` in milliseconds, if that phase ran.
    pub fn phase_ms(&self, phase: &str) -> Option<f64> {
        self.phases.iter().find(|p| p.name == phase).map(|p| p.wall_us as f64 / 1000.0)
    }

    /// The run's events as a Chrome trace-event JSON document.
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(&self.events)
    }

    /// The run's events as an in-terminal flame summary; phase frames
    /// carry a memory column when the run captured allocation totals.
    pub fn flame(&self) -> String {
        crate::flame::flame_summary_with_mem(&self.events, 12, &self.phase_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, cat: &'static str, start: u64, dur: u64, depth: usize) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            cat,
            start_us: start,
            dur_us: dur,
            depth,
            tid: 1,
            args: Vec::new(),
        }
    }

    fn file_ev(path: &str, dur: u64) -> SpanEvent {
        SpanEvent {
            args: vec![("path", path.to_string())],
            ..ev("parse.file", "parse", 0, dur, 2)
        }
    }

    #[test]
    fn digest_extracts_phases_files_rules() {
        let events = vec![
            ev("assessment.run", "run", 0, 1000, 0),
            ev("phase.parse", "phase", 0, 600, 1),
            file_ev("slow.cc", 400),
            file_ev("fast.cc", 5),
            ev("phase.checks", "phase", 600, 300, 1),
            ev("check.misra-15.1-goto", "checks", 610, 80, 2),
            ev("check.misra-15.1-goto", "checks", 700, 20, 2),
            ev("check.style-line", "checks", 720, 30, 2),
        ];
        let s = TraceSummary::from_events(events, vec![("parse.files".into(), 2)]);
        assert_eq!(s.total_us, 1000);
        assert_eq!(s.phase_ms("parse"), Some(0.6));
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.slowest_files[0], ("slow.cc".to_string(), 400));
        assert_eq!(s.slowest_rules[0], ("misra-15.1-goto".to_string(), 100));
        assert_eq!(s.counters.len(), 1);
    }

    #[test]
    fn hotspots_are_capped_at_top_n() {
        let mut events = vec![ev("assessment.run", "run", 0, 1000, 0)];
        for i in 0..25 {
            events.push(file_ev(&format!("f{i}.cc"), 100 + i));
        }
        let s = TraceSummary::from_events(events, Vec::new());
        assert_eq!(s.slowest_files.len(), TOP_N);
        assert_eq!(s.slowest_files[0].0, "f24.cc");
    }

    #[test]
    fn empty_summary_is_harmless() {
        let s = TraceSummary::default();
        assert_eq!(s.phase_ms("parse"), None);
        assert!(crate::chrome::validate(&s.to_chrome_json()).is_ok());
        assert!(s.flame().contains("0 span(s)"));
    }
}
