// Object tracker update step: deliberately carries the paper's
// headline findings (global state, explicit casts, multiple exits).
int g_track_count;
int g_lost_count;

int UpdateTrack(int* state, int delta) {
  if (state == 0) return -1;
  if (delta < 0) {
    g_lost_count = g_lost_count + 1;
    return -2;
  }
  g_track_count = g_track_count + 1;
  *state = *state + delta;
  return (int)(*state * 1.5f);
}

int TrackAge(int birth_frame, int current_frame) {
  int age = current_frame - birth_frame;
  if (age < 0) return 0;
  return age;
}
