// Detection post-processing kernel: pointer parameters, device
// memory management, and a closed-source library call.
#include <cublas_v2.h>

__global__ void ScaleBias(float* out, const float* in, float scale, float bias, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i] * scale + bias;
  }
}

void RunDetection(float* host_in, float* host_out, int n) {
  float* d_in;
  float* d_out;
  cudaMalloc((void**)&d_in, n * sizeof(float));
  cudaMalloc((void**)&d_out, n * sizeof(float));
  cudaMemcpy(d_in, host_in, n * sizeof(float), cudaMemcpyHostToDevice);
  ScaleBias<<<(n + 255) / 256, 256>>>(d_out, d_in, 0.0039f, 0.0f, n);
  cudaMemcpy(host_out, d_out, n * sizeof(float), cudaMemcpyDeviceToHost);
  cudaFree(d_in);
  cudaFree(d_out);
}
