// Shared geometry helpers. Lower-case macro name and no include
// guard: both style findings.
#define clamp01(x) ((x) < 0.0 ? 0.0 : ((x) > 1.0 ? 1.0 : (x)))

double Interpolate(double a, double b, double t);

struct Vec2 {
  double x;
  double y;
};
