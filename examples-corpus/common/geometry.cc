// Shared geometry helpers: a clean unit, the baseline the degraded
// files are judged against.
#include "geometry.h"

double Interpolate(double a, double b, double t) {
  double tt = clamp01(t);
  return a + (b - a) * tt;
}

double Dot(struct Vec2 u, struct Vec2 v) {
  return u.x * v.x + u.y * v.y;
}
