// Lidar packet decoding: unchecked return values and dynamic
// allocation on the hot path.
#include <stdlib.h>

int ReadPacket(unsigned char* dst, int len);

int DecodeSweep(int beams) {
  unsigned char* scratch = (unsigned char*)malloc(beams * 4);
  ReadPacket(scratch, beams * 4);
  int sum = 0;
  for (int i = 0; i < beams; i = i + 1) {
    sum = sum + scratch[i * 4];
  }
  free(scratch);
  return sum;
}
