// Lattice sampler: union type punning (MISRA 19.2) and octal literal
// (MISRA 7.1).
union PointBits {
  float f;
  int bits;
};

int QuantizeHeading(float heading) {
  union PointBits pb;
  pb.f = heading;
  int mask = 0777;
  return pb.bits & mask;
}

float SampleOffset(int lane, int sample) {
  float width = 3.5f;
  return (float)lane * width + (float)sample * 0.5f;
}
