// Route cost search: recursion (MISRA 17.2) and a switch with a
// missing default (MISRA 16.4).
int RouteCost(int depth, int branch) {
  if (depth <= 0) {
    return 0;
  }
  return branch + RouteCost(depth - 1, branch);
}

int ManeuverPenalty(int kind) {
  int penalty = 0;
  switch (kind) {
    case 0:
      penalty = 1;
      break;
    case 1:
      penalty = 5;
      break;
  }
  return penalty;
}
