/* Watchdog: goto-based cleanup and a variadic logger, both MISRA
 * findings the checker set must flag. */
#include <stdarg.h>
#include <stdlib.h>

int log_event(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_end(ap);
  return 0;
}

int arm_watchdog(int timeout_ms) {
  char* buf = (char*)malloc(64);
  if (buf == 0) goto fail;
  if (timeout_ms <= 0) goto fail;
  log_event("armed %d", timeout_ms);
  free(buf);
  return 0;
fail:
  free(buf);
  return -1;
}
