// PID controller: clamping with early returns and an implicit
// float-to-int narrowing in the output path.
static double s_integral;

int ClampOutput(double v) {
  if (v > 100.0) return 100;
  if (v < -100.0) return -100;
  return v;
}

int PidStep(double error, double kp, double ki) {
  s_integral = s_integral + error;
  double out = kp * error + ki * s_integral;
  return ClampOutput(out);
}
