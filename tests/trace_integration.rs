//! Integration tests for the observability layer (`adsafe-trace`) as
//! wired through the assessment pipeline:
//!
//! * every phase and checker rule gets a span, and the recorded stream
//!   is well-formed (properly nested) even when a checker panics under
//!   `catch_unwind`;
//! * the Chrome trace-event export round-trips through a JSON parser
//!   and passes the format validator;
//! * concurrent counter increments never lose updates (property test);
//! * phase budget overruns are recorded with their magnitude as a
//!   `Timeout` fault that does not degrade the report;
//! * the fault summary renders byte-identically across repeated runs.

use adsafe::fault::failpoints::{self, Action};
use adsafe::trace::{chrome, json::Json, SpanEvent};
use adsafe::{render, Assessment, AssessmentOptions, Budgets, FaultCause, FaultSeverity, Recovery};
use proptest::prelude::*;
use std::time::Duration;

fn small_assessment() -> Assessment {
    let mut a = Assessment::new();
    a.add_file(
        "perception",
        "perception/track.cc",
        "int g_tracks;\n\
         int Update(int* state, int delta) {\n\
           if (delta < 0) return -1;\n\
           g_tracks = g_tracks + 1;\n\
           *state = *state + delta;\n\
           return (int)(*state * 1.5f);\n\
         }\n",
    );
    a.add_file("control", "control/pid.cc", "int Clamp(int v) { if (v > 100) return 100; return v; }\n");
    a
}

/// Every pair of spans on one thread is either disjoint or one contains
/// the other — the defining property of a well-formed trace.
fn assert_well_formed(events: &[SpanEvent]) {
    for (i, a) in events.iter().enumerate() {
        for b in &events[i + 1..] {
            if a.tid != b.tid {
                continue;
            }
            // Order by start; on equal starts the longer span is the
            // container (µs resolution makes equal starts common).
            let (first, second) = if (a.start_us, std::cmp::Reverse(a.dur_us))
                <= (b.start_us, std::cmp::Reverse(b.dur_us))
            {
                (a, b)
            } else {
                (b, a)
            };
            let disjoint = second.start_us >= first.end_us();
            let contained = second.end_us() <= first.end_us();
            assert!(
                disjoint || contained,
                "spans overlap without nesting: {} [{}, {}) vs {} [{}, {})",
                first.name,
                first.start_us,
                first.end_us(),
                second.name,
                second.start_us,
                second.end_us()
            );
        }
    }
}

#[test]
fn pipeline_emits_phase_file_and_rule_spans() {
    let r = small_assessment().run();
    let t = &r.trace;
    let phase_names: Vec<&str> = t.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        phase_names,
        ["parse", "checks.native", "checks.query", "checks", "metrics", "assess"]
    );
    assert!(t.total_us > 0);
    // The checks.* sub-phases nest inside checks: only the top-level
    // phases partition the run, so only they may be summed against it.
    let top_level: u64 =
        t.phases.iter().filter(|p| !p.name.contains('.')).map(|p| p.wall_us).sum();
    assert!(t.total_us >= top_level, "run span shorter than its phases");
    assert_eq!(t.slowest_files.len(), 2);
    assert!(t.slowest_files.iter().any(|(p, _)| p == "perception/track.cc"));
    // Every registered checker ran under its own span.
    let rule_spans: Vec<&str> = t
        .slowest_rules
        .iter()
        .map(|(r, _)| r.as_str())
        .collect();
    assert!(!rule_spans.is_empty());
    let n_rules = t
        .events
        .iter()
        .filter(|e| e.name.starts_with("check."))
        .map(|e| e.name.as_str())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    // One span name per registered rule (the out-of-trait macro pass
    // shares `check.naming-macro` with the registered rule of that id).
    assert_eq!(n_rules, adsafe::checkers::default_checks().len());
    assert_well_formed(&t.events);
    // Counter deltas picked up the per-tier file counts.
    assert!(t
        .counters
        .iter()
        .any(|(n, v)| n == "parse.tier1.files" && *v >= 2));
}

#[test]
fn trace_stays_well_formed_when_a_checker_panics() {
    let _g = failpoints::Armed::new(
        "pipeline::check::misra-15.1-goto",
        Action::Panic("rule bug".into()),
    );
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = small_assessment().run();
    std::panic::set_hook(prev);
    assert!(r.faults.iter().any(|f| f.path == "misra-15.1-goto"));
    assert_eq!(adsafe::trace::span::open_depth(), 0, "panic leaked open spans");
    let phase_names: Vec<&str> = r.trace.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        phase_names,
        ["parse", "checks.native", "checks.query", "checks", "metrics", "assess"]
    );
    assert_well_formed(&r.trace.events);
}

#[test]
fn chrome_export_round_trips_through_the_parser() {
    let r = small_assessment().run();
    let text = r.trace.to_chrome_json();
    let n = chrome::validate(&text).expect("valid Chrome trace");
    assert_eq!(n, r.trace.events.len());
    // Spot-check the document shape beyond what the validator covers.
    let doc = Json::parse(&text).expect("parses as JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let run = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("assessment.run"))
        .expect("run span exported");
    assert_eq!(run.get("ph").and_then(Json::as_str), Some("X"));
    let file = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("parse.file"))
        .expect("file span exported");
    assert!(file
        .get("args")
        .and_then(|a| a.get("path"))
        .and_then(Json::as_str)
        .is_some());
}

#[test]
fn phase_overrun_is_noted_with_magnitude() {
    // One slow file: the deadline check between files never fires, so
    // only the end-of-phase overrun note can record the slip.
    let _g = failpoints::Armed::new(
        "pipeline::parse_file",
        Action::Delay(Duration::from_millis(30)),
    );
    let mut a = Assessment::new().with_options(AssessmentOptions {
        budgets: Budgets { phase_deadline: Some(Duration::from_millis(5)) },
        ..AssessmentOptions::default()
    });
    a.add_file("m", "slow.cc", "int f() { return 1; }\n");
    let r = a.run();
    let fault = r
        .faults
        .iter()
        .find(|f| f.severity == FaultSeverity::Timeout)
        .expect("overrun noted as a Timeout fault");
    assert_eq!(fault.recovery, Recovery::Noted);
    let FaultCause::DeadlineOverrun { budget_ms, actual_ms } = fault.cause else {
        panic!("wrong cause: {:?}", fault.cause);
    };
    assert_eq!(budget_ms, 5);
    assert!(actual_ms >= 30, "overrun magnitude lost: {actual_ms} ms");
    // A note alone must not mark the evidence degraded.
    assert!(!r.degraded, "{:?}", r.faults);
    assert!(r
        .trace
        .counters
        .iter()
        .any(|(n, v)| n == "parse.budget.overrun_ms" && *v >= 25));
}

#[test]
fn fault_summary_is_byte_identical_across_runs() {
    let build = || {
        let mut a = Assessment::new();
        a.add_file("m", "bad.cc", "int ; ] ) } = 5 +;\nint h() { return 2; }\n");
        a.add_file("m", "worse.cc", "template < { ) ;;; ]\n");
        a.add_file_bytes("n", "weird.cc", b"int f() { return 1; }\n\xff\xfe");
        a.add_file("n", "ok.cc", "int g() { return 3; }\n");
        a
    };
    let r1 = build().run();
    let r2 = build().run();
    assert!(r1.degraded);
    assert_eq!(render::fault_summary(&r1), render::fault_summary(&r2));
    assert_eq!(r1.diagnostics, r2.diagnostics, "diagnostic order is canonical");
    // The phase counts come out in phase order, not discovery order.
    let s = render::fault_summary(&r1);
    let ingest = s.find("- ingest:").expect("ingest count");
    let parse = s.find("- parse:").expect("parse count");
    assert!(ingest < parse, "{s}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counter increments are atomic: N threads adding M each always
    /// sum to exactly N*M more than before, never less.
    #[test]
    fn concurrent_counter_increments_never_lose_updates(
        threads in 2usize..6,
        per_thread in 100u64..2000u64,
    ) {
        let c = adsafe::trace::counter("trace.test.concurrent");
        let before = c.get();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(move || {
                    let c = adsafe::trace::counter("trace.test.concurrent");
                    for _ in 0..per_thread {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(c.get() - before, threads as u64 * per_thread);
    }
}
