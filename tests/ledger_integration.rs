//! End-to-end tests of the assessment run ledger: JSON round-trip
//! totality (proptested), torn-line tolerance (a crash mid-append
//! costs one line, never the ledger, and surfaces as a non-degrading
//! Info fault), and the history/diff golden flow over three synthetic
//! runs — two identical, one with a deliberately flipped verdict.

use adsafe::{Assessment, AssessmentOptions, Fault, FaultCause, FaultPhase, FaultSeverity, Recovery};
use adsafe_ledger::{
    corpus_digest, history_table, Ledger, RunDiff, RunRecord, VerdictRow, LEDGER_FILE,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir()
        .join(format!("adsafe-ledger-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small corpus with no shadowed variable names, so Table 8 row 4
/// starts compliant and [`MUTATED_CORPUS`] can flip it.
const BASE_CORPUS: [(&str, &str, &str); 2] = [
    (
        "perception",
        "perception/track.cc",
        "int g_tracks;\n\
         int Update(int* state, int delta) {\n\
           if (delta < 0) return -1;\n\
           g_tracks = g_tracks + 1;\n\
           *state = *state + delta;\n\
           return 0;\n\
         }\n",
    ),
    (
        "control",
        "control/pid.cc",
        "int Step(int err) {\n\
           if (err < 0) { return -err; }\n\
           return err;\n\
         }\n",
    ),
];

/// Same corpus with one inner declaration shadowing `err` — the
/// smallest edit that flips "No multiple use of variable names".
const MUTATED_CORPUS: [(&str, &str, &str); 2] = [
    BASE_CORPUS[0],
    (
        "control",
        "control/pid.cc",
        "int Step(int err) {\n\
           if (err < 0) { int err = 1; return err; }\n\
           return err;\n\
         }\n",
    ),
];

fn exit_code(report: &adsafe::AssessmentReport) -> i32 {
    match (report.degraded, report.compliance.blocking_count() > 0) {
        (false, false) => 0,
        (false, true) => 1,
        (true, false) => 4,
        (true, true) => 5,
    }
}

/// Assesses `sources` under the ledger's identity and appends the
/// resulting record, mirroring what `adsafe assess` does.
fn record_run(ledger: &Ledger, sources: &[(&str, &str, &str)]) -> RunRecord {
    let hashes: Vec<u64> =
        sources.iter().map(|(_, path, text)| adsafe::content_hash(path, text)).collect();
    let digest = corpus_digest(&hashes);
    let (run, seq) = ledger.reserve(&digest);
    let mut assessment = Assessment::new().with_options(AssessmentOptions {
        run_id: run.clone(),
        ..AssessmentOptions::default()
    });
    for (module, path, text) in sources {
        assessment.add_file_bytes(module, path, text.as_bytes());
    }
    let report = assessment.run();
    let record = RunRecord::from_report(
        &report,
        &run,
        seq,
        "test-corpus",
        &digest,
        sources.len() as u64,
        exit_code(&report),
    );
    ledger.append(&record).expect("ledger append");
    // Return the record as the ledger will read it back: phases are
    // stored as a JSON object, so they round-trip in name order (the
    // diff joins phases by name, making the reorder invisible there).
    RunRecord::from_json(&record.to_json_line()).expect("own record parses")
}

#[test]
fn identical_runs_differ_only_in_identity_and_timing() {
    let ledger = Ledger::open(&temp_dir("identical")).unwrap();
    let a = record_run(&ledger, &BASE_CORPUS);
    let b = record_run(&ledger, &BASE_CORPUS);

    assert_ne!(a.run, b.run, "run IDs must be unique");
    assert_eq!(a.seq + 1, b.seq);
    assert_eq!(a.corpus_digest, b.corpus_digest);

    // Every field except identity and wall clock is byte-for-byte
    // reproducible across back-to-back runs of an unchanged corpus.
    let mut b_normalised = b.clone();
    b_normalised.run = a.run.clone();
    b_normalised.seq = a.seq;
    b_normalised.total_us = a.total_us;
    b_normalised.phases = a.phases.clone();
    assert_eq!(a, b_normalised);

    let diff = RunDiff::between(&a, &b);
    assert!(!diff.has_drift(), "identical corpora must not drift:\n{}", diff.render());
    assert!(diff.same_corpus && diff.same_ruleset);

    // And the ledger file reads both records back verbatim.
    let (records, torn) = ledger.read_all();
    assert!(torn.is_empty());
    assert_eq!(records, vec![a, b]);
}

#[test]
fn flipped_verdict_is_drift_and_shows_in_history() {
    let ledger = Ledger::open(&temp_dir("drift")).unwrap();
    let r1 = record_run(&ledger, &BASE_CORPUS);
    let r2 = record_run(&ledger, &BASE_CORPUS);
    let r3 = record_run(&ledger, &MUTATED_CORPUS);

    let clean = RunDiff::between(&r1, &r2);
    assert!(!clean.has_drift());

    let drifted = RunDiff::between(&r2, &r3);
    assert!(!drifted.same_corpus, "mutation must change the corpus digest");
    assert!(drifted.has_drift(), "shadowing must flip a verdict:\n{}", drifted.render());
    assert!(drifted.has_regression());
    let flip = drifted
        .verdict_flips
        .iter()
        .find(|f| f.key == "t8r4")
        .expect("Table 8 row 4 (no multiple use of variable names) flips");
    assert_eq!(flip.from, "compliant");
    assert!(flip.regressed);
    let rendered = drifted.render();
    assert!(rendered.contains("t8r4") && rendered.contains("REGRESSED"), "{rendered}");

    // History: three rows, drift column flags only the last one.
    let (records, _) = ledger.read_all();
    let table = history_table(&records, usize::MAX);
    let lines: Vec<&str> = table.lines().collect();
    assert_eq!(lines.len(), 4, "header + 3 runs:\n{table}");
    assert!(lines[1].ends_with("-"), "first run has no predecessor:\n{table}");
    assert!(lines[2].ends_with("none"), "identical rerun shows no drift:\n{table}");
    assert!(lines[3].contains("regressed"), "mutated run is flagged:\n{table}");
    // `--last 2` keeps the header plus the two most recent rows.
    assert_eq!(history_table(&records, 2).lines().count(), 3);
}

#[test]
fn torn_final_line_is_skipped_and_reported_as_info_fault() {
    let dir = temp_dir("torn");
    let ledger = Ledger::open(&dir).unwrap();
    let first = record_run(&ledger, &BASE_CORPUS);

    // A crash mid-append leaves a truncated line with no newline.
    use std::io::Write as _;
    let mut f =
        std::fs::OpenOptions::new().append(true).open(dir.join(LEDGER_FILE)).unwrap();
    f.write_all(b"{\"schema\":\"adsafe-ledger/1\",\"run\":\"r0000").unwrap();
    drop(f);

    let reopened = Ledger::open(&dir).unwrap();
    assert_eq!(reopened.torn_lines().len(), 1, "the torn tail is detected");
    let (records, torn) = reopened.read_all();
    assert_eq!(records, vec![first.clone()], "intact records survive the tear");
    assert_eq!(torn.len(), 1);

    // The tear surfaces as an Info fault that does not degrade the
    // assessment (same construction as adsafe_serve::ledger_torn_fault).
    let torn_fault = Fault {
        phase: FaultPhase::Ingest,
        path: dir.join(LEDGER_FILE).display().to_string(),
        severity: FaultSeverity::Info,
        cause: FaultCause::LedgerTorn {
            detail: format!("line {}: {}", torn[0].line, torn[0].detail),
        },
        recovery: Recovery::Noted,
        run_id: String::new(),
    };
    let mut assessment = Assessment::new();
    assessment.add_fault(torn_fault);
    for (module, path, text) in &BASE_CORPUS {
        assessment.add_file_bytes(module, path, text.as_bytes());
    }
    let report = assessment.run();
    assert!(!report.degraded, "an Info-severity tear must not cost evidence");
    assert!(
        report
            .faults
            .iter()
            .any(|f| matches!(f.cause, FaultCause::LedgerTorn { .. })),
        "the tear is on the fault log"
    );

    // Appending after the tear self-heals: the new record is intact.
    let next = record_run(&reopened, &BASE_CORPUS);
    let (after, torn_after) = reopened.read_all();
    assert_eq!(after, vec![first, next]);
    assert_eq!(torn_after.len(), 1, "the torn line stays skipped, nothing else is lost");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_json_line` → `from_json` is the identity on any record whose
    /// map-like fields (phases, fault counts, metrics) are sorted and
    /// unique-keyed — which `from_report` guarantees — including
    /// strings that need escaping. Numeric fields stay below 2^53
    /// because JSON numbers travel through f64.
    #[test]
    fn record_json_round_trips(
        counts in (0u64..(1u64 << 53), 0u64..100_000, 0u64..(1u64 << 40), 0u64..(1u64 << 30)),
        idents in ("[ -~]{0,24}", "[ -~]{0,40}", "[0-9a-f]{16,16}", "[ -~]{0,24}"),
        flags in (0i32..6, 0u8..2, 0u8..2),
        phase_names in proptest::collection::vec("[a-z.]{1,12}", 0..5),
        phase_times in proptest::collection::vec(0u64..(1u64 << 40), 5..6),
        metric_names in proptest::collection::vec("[a-z_]{1,16}", 0..6),
        metric_values in proptest::collection::vec(-1.0e9..1.0e9f64, 6..7),
        verdict_bits in proptest::collection::vec(
            (1u8..9, 1u8..11, "[ -~]{0,16}", 0u8..4, 0u8..2), 0..8),
        obs_bits in proptest::collection::vec((1u8..15, 0u8..2), 0..6),
    ) {
        let (seq, files, total_us, cache) = counts;
        let (run, root, digest, fingerprint) = idents;
        let (exit, degraded_bit, severity_bit) = flags;
        let unique_sorted = |names: Vec<String>| -> Vec<String> {
            let mut v = names;
            v.sort();
            v.dedup();
            v
        };
        let phases: Vec<(String, u64)> = unique_sorted(phase_names)
            .into_iter()
            .zip(phase_times.iter().copied())
            .collect();
        let metrics: Vec<(String, f64)> = unique_sorted(metric_names)
            .into_iter()
            .zip(metric_values.iter().copied())
            .collect();
        let status_of = |r: u8| ["compliant", "partial", "non-compliant", "n/a"][r as usize];
        let record = RunRecord {
            run,
            seq,
            corpus_root: root,
            corpus_digest: digest,
            files,
            fingerprint,
            asil: "ASIL-D".to_string(),
            exit_code: exit,
            degraded: degraded_bit == 1,
            tier: "full".to_string(),
            total_us,
            phases: phases.clone(),
            fault_counts: phases, // any sorted unique-keyed map will do
            worst_severity: (severity_bit == 1).then(|| "warn".to_string()),
            cache_hits: cache,
            cache_stores: cache / 2,
            verdicts: verdict_bits
                .into_iter()
                .map(|(table, row, topic, rank, blocking)| VerdictRow {
                    table,
                    row,
                    topic,
                    status: status_of(rank).to_string(),
                    effort: "moderate".to_string(),
                    blocking: blocking == 1,
                })
                .collect(),
            observations: obs_bits.into_iter().map(|(n, h)| (n, h == 1)).collect(),
            metrics,
        };
        let line = record.to_json_line();
        prop_assert!(!line.contains('\n'), "a record is exactly one line");
        let parsed = RunRecord::from_json(&line)
            .map_err(|e| TestCaseError::Fail(format!("{e}\nline: {line}")))?;
        prop_assert_eq!(&parsed, &record);
        // Serialisation is stable: a reparsed record prints identically.
        prop_assert_eq!(parsed.to_json_line(), line);
    }

    /// `from_json` is total on printable-ASCII soup: garbage is an
    /// `Err`, never a panic.
    #[test]
    fn from_json_never_panics(line in "[ -~]{0,200}") {
        let _ = RunRecord::from_json(&line);
    }
}
