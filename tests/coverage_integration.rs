//! Integration of the coverage engine with the corpora: the Figure 5
//! and Figure 6 experiments end-to-end, plus cross-checks between the
//! interpreter and the native Rust kernels.

use adsafe::corpus::yolo::{harness_with_drivers, real_scenarios};
use adsafe::corpus::{cuda_to_cpu, yolo::STENCIL_CU};
use adsafe::coverage::{CoverageHarness, TestCase, Value};
use adsafe::experiments::{fig5_yolo_coverage, fig6_stencil_coverage};

#[test]
fn fig5_matches_paper_shape_and_order() {
    let (fig, avg) = fig5_yolo_coverage();
    // Paper averages 83/75/61: same ordering, all incomplete.
    assert!(avg.statement_pct > avg.branch_pct, "{avg:?}");
    assert!(avg.branch_pct > avg.mcdc_pct, "{avg:?}");
    assert!(avg.statement_pct < 100.0 && avg.statement_pct > 60.0, "{avg:?}");
    assert!((50.0..100.0).contains(&avg.branch_pct), "{avg:?}");
    assert!((30.0..90.0).contains(&avg.mcdc_pct), "{avg:?}");
    // Per-file minima well below the average (paper: 19/37/10).
    for (name, series) in &fig.series {
        let min = series.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min < 60.0, "{name} min = {min}");
    }
}

#[test]
fn fig5_more_tests_more_coverage() {
    let h = harness_with_drivers();
    let all = real_scenarios();
    let (one, _) = h.measure(&all[..1]);
    let (full, _) = h.measure(&all);
    let total = |cov: &[adsafe::coverage::AggregateCoverage]| -> f64 {
        cov.iter().map(|c| c.statement_pct(false)).sum()
    };
    assert!(total(&full) > total(&one), "coverage must grow with tests");
}

#[test]
fn fig6_stencils_run_and_stay_incomplete() {
    let fig = fig6_stencil_coverage();
    for (name, values) in &fig.series {
        for (label, v) in fig.labels.iter().zip(values) {
            assert!(*v >= 45.0, "{label} {name} executed most code, got {v}");
            assert!(*v < 100.0, "{label} {name} must miss the halo path, got {v}");
        }
    }
}

#[test]
fn translated_stencil_matches_native_kernel() {
    // The CUDA-translated interpreted stencil and the native Rust
    // stencil2d agree on every interior cell.
    let (h, w) = (6usize, 5usize);
    let input: Vec<f32> = (0..h * w).map(|i| (i % 7) as f32).collect();
    let mut expected = vec![0.0f32; h * w];
    adsafe::gpu::kernels::stencil2d(h, w, &input, &mut expected, 0.5, 0.125);

    let translated = cuda_to_cpu(STENCIL_CU);
    let mut harness = CoverageHarness::new();
    harness.add_file("stencil_cpu.c", &translated.source);
    harness.add_file(
        "probe.c",
        "float probe(int h, int w, int y, int x) {\n\
         float* in = malloc(h * w * 4);\n\
         float* out = malloc(h * w * 4);\n\
         for (int i = 0; i < h * w; i++) { in[i] = (i % 7) * 1.0f; }\n\
         stencil2d_kernel_cpu(in, out, h, w, 0.5f, 0.125f, 0, 1, 1, w, h);\n\
         float r = out[y * w + x];\n\
         free(in); free(out);\n\
         return r;\n}",
    );
    harness.link();
    for y in 0..h {
        for x in 0..w {
            let (_, outcomes) = harness.measure(&[TestCase::new(
                "probe",
                "probe",
                vec![
                    Value::Int(h as i64),
                    Value::Int(w as i64),
                    Value::Int(y as i64),
                    Value::Int(x as i64),
                ],
            )]);
            let got = outcomes[0].result.as_ref().expect("probe runs").as_f64() as f32;
            assert!(
                (got - expected[y * w + x]).abs() < 1e-4,
                "cell ({y},{x}): interpreted {got} vs native {}",
                expected[y * w + x]
            );
        }
    }
}

#[test]
fn scenario_failures_do_not_poison_the_run() {
    let h = harness_with_drivers();
    let mut tests = real_scenarios();
    tests.push(TestCase::new("bogus entry", "no_such_function", vec![]));
    let (cov, outcomes) = h.measure(&tests);
    assert!(outcomes.last().unwrap().result.is_err());
    assert!(outcomes[..outcomes.len() - 1].iter().all(|o| o.result.is_ok()));
    assert!(!cov.is_empty());
}

#[test]
fn mcdc_is_never_above_branch_per_file() {
    let (fig, _) = fig5_yolo_coverage();
    let branch = &fig.series[1].1;
    let mcdc = &fig.series[2].1;
    for (i, label) in fig.labels.iter().enumerate() {
        assert!(
            mcdc[i] <= branch[i] + 1e-9,
            "{label}: MC/DC {} > branch {}",
            mcdc[i],
            branch[i]
        );
    }
}

#[test]
fn tight_loop_terminates_with_step_limit_fault() {
    // A watchdog-style guard rail: a runaway loop in analysed code must
    // surface as `StepLimit`, not hang the assessment.
    use adsafe::coverage::{Interp, InterpError, Limits, Program};
    use adsafe::lang::{parse_source, SourceMap};

    let src = "int spin(int n) {\n\
               int acc = 0;\n\
               while (1) { acc = acc + n; }\n\
               return acc;\n\
               }\n";
    let mut sm = SourceMap::new();
    let id = sm.add_file("spin.c", src);
    let parsed = parse_source(id, sm.file(id).text());
    let program = Program::from_units(&[&parsed.unit]);
    let mut interp = Interp::new(&program)
        .with_limits(Limits { max_steps: 10_000, max_depth: 96 });
    let err = interp
        .call("spin", vec![adsafe::coverage::Value::Int(1)])
        .expect_err("tight loop must hit the step budget");
    assert!(matches!(err, InterpError::StepLimit), "got {err}");
}

#[test]
fn deep_recursion_terminates_with_stack_overflow_fault() {
    use adsafe::coverage::{Interp, InterpError, Limits, Program};
    use adsafe::lang::{parse_source, SourceMap};

    let src = "int dive(int n) { return dive(n + 1); }\n";
    let mut sm = SourceMap::new();
    let id = sm.add_file("dive.c", src);
    let parsed = parse_source(id, sm.file(id).text());
    let program = Program::from_units(&[&parsed.unit]);
    let mut interp = Interp::new(&program)
        .with_limits(Limits { max_steps: 10_000_000, max_depth: 64 });
    let err = interp
        .call("dive", vec![adsafe::coverage::Value::Int(0)])
        .expect_err("unbounded recursion must hit the depth budget");
    assert!(matches!(err, InterpError::StackOverflow), "got {err}");
}

#[test]
fn bounded_recursion_within_budget_succeeds() {
    // The guard rails must not fire on well-behaved code: the same
    // budgets admit a recursion that stays within depth.
    use adsafe::coverage::{Interp, Limits, Program, Value};
    use adsafe::lang::{parse_source, SourceMap};

    let src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n";
    let mut sm = SourceMap::new();
    let id = sm.add_file("fact.c", src);
    let parsed = parse_source(id, sm.file(id).text());
    let program = Program::from_units(&[&parsed.unit]);
    let mut interp = Interp::new(&program)
        .with_limits(Limits { max_steps: 10_000, max_depth: 64 });
    let v = interp.call("fact", vec![Value::Int(10)]).expect("bounded recursion passes");
    assert_eq!(v.as_i64(), 3_628_800);
}
