//! End-to-end integration: the Apollo-scale corpus flows through the
//! whole toolchain (generator → parser → metrics → checkers → ISO 26262
//! engine) and reproduces the paper's aggregate findings.

use adsafe::corpus::{generate, ApolloSpec};
use adsafe::iso26262::{Effort, Recommendation, Status, TableId};
use adsafe::{assess_corpus, render, AssessmentOptions};

fn spec() -> ApolloSpec {
    ApolloSpec::test_scale()
}

#[test]
fn corpus_parses_without_recovery() {
    let files = generate(&spec());
    for f in &files {
        let parsed = adsafe::lang::parse_source(adsafe::lang::FileId(0), &f.text);
        assert_eq!(parsed.unit.recovery_count, 0, "opaque region in {}", f.path);
    }
}

#[test]
fn full_assessment_reproduces_paper_verdicts() {
    let files = generate(&spec());
    let report = assess_corpus(&files, AssessmentOptions::default());

    // Table 1 verdicts match the paper's qualitative findings.
    let t1 = report.compliance.table(TableId::CodingGuidelines);
    assert_eq!(t1[0].status, Status::NonCompliant, "Obs 1: high complexity");
    assert_eq!(t1[0].effort, Effort::Significant);
    assert_eq!(t1[1].status, Status::NonCompliant, "Obs 2/3: no language subset");
    assert_eq!(t1[1].effort, Effort::Research, "GPU subset gap is research-class");
    assert_eq!(t1[2].status, Status::NonCompliant, "Obs 5: weak typing");
    assert_eq!(t1[3].status, Status::NonCompliant, "Obs 6: no defensive programming");
    assert_eq!(t1[4].status, Status::NonCompliant, "Obs 7: global variables");
    assert_eq!(t1[5].status, Status::NotApplicable, "graphical representation");
    assert_eq!(t1[6].status, Status::Compliant, "Obs 8: style guides followed");
    assert_eq!(t1[7].status, Status::Compliant, "Obs 9: naming conventions followed");

    // Table 2: at test scale modules fit the size limit; Obs 13 is
    // exercised at paper scale by the iso26262 unit tests and the
    // assess_apollo bench. Here we only require the row to be judged.
    let t2 = report.compliance.table(TableId::ArchitecturalDesign);
    assert!(!t2[1].evidence.is_empty(), "size row carries evidence");

    // Table 3: every unit-design topic has findings (Obs 14).
    let t3 = report.compliance.table(TableId::UnitDesign);
    for v in &t3 {
        assert_ne!(
            v.status,
            Status::Compliant,
            "row {} `{}` should have findings",
            v.topic.row,
            v.topic.name
        );
    }
    // CUDA-rooted rows need research, not just engineering.
    assert_eq!(t3[1].effort, Effort::Research, "dynamic device memory");
    assert_eq!(t3[5].effort, Effort::Research, "pointers in kernels");
}

#[test]
fn observations_match_the_paper() {
    let files = generate(&spec());
    let report = assess_corpus(&files, AssessmentOptions::default());
    let holds: Vec<u8> = report
        .observations
        .iter()
        .filter(|o| o.holds)
        .map(|o| o.number)
        .collect();
    // All of the paper's code-derivable observations hold; 10 requires a
    // coverage run and 13 requires full-scale module sizes (both covered
    // by their own experiments/tests).
    for n in [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 14] {
        assert!(holds.contains(&n), "observation {n} should hold; got {holds:?}");
    }
}

#[test]
fn calibration_statistics_match_spec() {
    let s = spec();
    let files = generate(&s);
    let report = assess_corpus(&files, AssessmentOptions::default());
    // Banded complexity counts are constructive: CC > 10 exactly matches.
    assert_eq!(
        report.evidence.functions_over_cc10,
        s.total_over_10(),
        "calibrated CC>10 count"
    );
    // Globals: exactly as specified.
    let expected_globals: usize = s.modules.iter().map(|m| m.globals).sum();
    assert_eq!(report.evidence.global_definitions, expected_globals);
    // Casts: at least the planned number (checker counts each).
    let expected_casts: usize = s.modules.iter().map(|m| m.casts).sum();
    assert!(
        report.evidence.explicit_casts >= expected_casts,
        "{} < {expected_casts}",
        report.evidence.explicit_casts
    );
    // Multi-exit fraction lands near perception's 41% / corpus mean ~0.3.
    assert!(
        (20.0..=50.0).contains(&report.evidence.multi_exit_pct),
        "multi-exit = {}",
        report.evidence.multi_exit_pct
    );
    // GPU: kernels only in perception, all with pointer params.
    let expected_kernels: usize = s.modules.iter().map(|m| m.cuda_kernels).sum();
    assert_eq!(report.evidence.gpu.kernel_count, expected_kernels);
    assert_eq!(report.evidence.gpu.kernel_pointer_params, 2 * expected_kernels);
    assert!(report.evidence.gpu.device_alloc_sites >= 2 * expected_kernels);
    assert!(report.evidence.gpu.closed_source_calls >= expected_kernels);
}

#[test]
fn figure3_renders_all_modules() {
    let files = generate(&spec());
    let report = assess_corpus(&files, AssessmentOptions::default());
    let fig = render::fig3(&report);
    assert_eq!(fig.labels.len(), 9, "nine Apollo modules");
    assert!(fig.labels.contains(&"perception".to_string()));
    // Perception dominates LOC, as in the paper.
    let loc = &fig.series[0].1;
    let p = fig.labels.iter().position(|l| l == "perception").unwrap();
    assert_eq!(
        loc[p],
        loc.iter().cloned().fold(f64::MIN, f64::max),
        "perception is the largest module"
    );
    let tables = [render::table1(&report), render::table2(&report), render::table3(&report)];
    assert_eq!(tables[0].rows.len() + tables[1].rows.len() + tables[2].rows.len(), 25);
}

#[test]
fn asil_scaling_relaxes_low_levels() {
    let files = generate(&spec());
    let d = assess_corpus(&files, AssessmentOptions::default());
    let a = assess_corpus(
        &files,
        AssessmentOptions { asil: adsafe::iso26262::Asil::A, ..AssessmentOptions::default() },
    );
    assert!(a.compliance.blocking_count() < d.compliance.blocking_count());
    // Pointer row is `o` at ASIL-A.
    let row6 = &a.compliance.table(TableId::UnitDesign)[5];
    assert_eq!(row6.required, Recommendation::NotRequired);
}

#[test]
fn cross_module_coupling_measured() {
    let files = generate(&spec());
    let report = assess_corpus(&files, AssessmentOptions::default());
    // Every module after perception bridges into it: 8 edges.
    assert_eq!(report.evidence.coupling_edges, 8, "one bridge edge per downstream module");
}
