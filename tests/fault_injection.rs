//! Deterministic fault-injection harness for the assessment pipeline.
//!
//! Two families of scenarios, both seeded and reproducible:
//!
//! * **Corruption scenarios** — corpus files corrupted by
//!   `adsafe-corpus::faultinject` (truncation, brace deletion, byte
//!   flips, non-UTF-8 noise) are fed through the full pipeline.
//! * **Failpoint scenarios** — named points inside the pipeline are
//!   armed with panics or delays through `adsafe::fault::failpoints`.
//!
//! Every scenario must satisfy the containment contract: no panic
//! escapes `Assessment::run`, the report renders, `degraded` is true,
//! and the fault log is non-empty.

use adsafe::corpus::faultinject::{corrupt, Corruption};
use adsafe::corpus::{generate, ApolloSpec, GeneratedFile};
use adsafe::fault::failpoints::{self, Action};
use adsafe::render::full_report_markdown;
use adsafe::{Assessment, AssessmentOptions, AssessmentReport, Budgets};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Once, OnceLock};
use std::time::Duration;

/// Silence contained panics (they are the point of these tests), but
/// keep printing panics raised by the harness's own assertions.
fn quiet_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        std::panic::set_hook(Box::new(|info| {
            let from_harness =
                info.location().is_some_and(|l| l.file().ends_with("fault_injection.rs"));
            if from_harness {
                eprintln!("{info}");
            }
        }))
    });
}

/// One mid-sized generated corpus file to corrupt, plus its module.
fn victim() -> &'static GeneratedFile {
    static VICTIM: OnceLock<GeneratedFile> = OnceLock::new();
    VICTIM.get_or_init(|| {
        let files = generate(&ApolloSpec::test_scale());
        files
            .into_iter()
            .find(|f| f.path.ends_with(".cc") && f.text.len() > 2_000)
            .expect("test corpus has a mid-sized .cc file")
    })
}

/// Runs the pipeline under containment assertions only: no panic may
/// escape `Assessment::run`, and the report must render.
fn contained_run(
    name: &str,
    options: AssessmentOptions,
    build: impl FnOnce(&mut Assessment),
) -> (AssessmentReport, String) {
    quiet_panics();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut a = Assessment::new().with_options(options);
        a.add_file("healthy", "healthy/base.cc", "int Base(int x) { return x + 1; }\n");
        build(&mut a);
        let report = a.run();
        let rendered = full_report_markdown(&report);
        (report, rendered)
    }));
    match outcome {
        Ok(pair) => pair,
        Err(_) => panic!("scenario `{name}`: a panic escaped the pipeline"),
    }
}

/// Runs one scenario end to end and enforces the full contract:
/// containment, non-empty fault log, degraded report, rendered fault
/// section, and survival of the healthy module's evidence.
fn run_scenario(
    name: &str,
    options: AssessmentOptions,
    build: impl FnOnce(&mut Assessment),
) -> AssessmentReport {
    let (report, rendered) = contained_run(name, options, build);
    assert!(
        !report.faults.is_empty(),
        "scenario `{name}`: fault log is empty"
    );
    assert!(report.degraded, "scenario `{name}`: report not marked degraded");
    assert!(
        rendered.contains("## Fault log"),
        "scenario `{name}`: rendered report lacks the fault section"
    );
    // The healthy file's evidence always survives.
    assert!(
        report.modules.iter().any(|m| m.name == "healthy"),
        "scenario `{name}`: healthy module lost"
    );
    report
}

/// 16 corruption scenarios: every corruption kind × four base seeds,
/// each applied to a real generated corpus file.
///
/// The error-tolerant parser legitimately absorbs some corruptions
/// without losing evidence (e.g. a truncation that lands near a
/// declaration boundary), so each scenario walks a deterministic seed
/// chain until the corruption actually costs evidence. Containment is
/// asserted on *every* attempt; the degradation contract on the first
/// degrading one.
#[test]
fn corruption_scenarios_degrade_but_never_escape() {
    let v = victim();
    let mut scenarios = 0usize;
    for kind in Corruption::ALL {
        for base_seed in 0..4u64 {
            let name = format!("{}#{}", kind.name(), base_seed);
            let mut degraded_report = None;
            for attempt in 0..12u64 {
                let seed = base_seed + 1000 * attempt;
                let bytes = corrupt(seed, kind, &v.path, &v.text);
                let (report, rendered) =
                    contained_run(&name, AssessmentOptions::default(), |a| {
                        a.add_file_bytes(&v.module, &v.path, &bytes);
                    });
                if report.degraded && report.faults.iter().any(|f| f.path == v.path) {
                    assert!(
                        rendered.contains("## Fault log"),
                        "scenario `{name}`: rendered report lacks the fault section"
                    );
                    degraded_report = Some(report);
                    break;
                }
            }
            let report = degraded_report.unwrap_or_else(|| {
                panic!("scenario `{name}`: no seed in the chain cost evidence")
            });
            assert!(report.modules.iter().any(|m| m.name == "healthy"));
            scenarios += 1;
        }
    }
    assert_eq!(scenarios, 16);
}

#[test]
fn failpoint_parse_panic_any_file() {
    let _g = failpoints::Armed::new("pipeline::parse_file", Action::Panic("injected".into()));
    let v = victim();
    let r = run_scenario("parse-panic-any", AssessmentOptions::default(), |a| {
        a.add_file(&v.module, &v.path, &v.text);
    });
    // Panic self-disarms: exactly one file was hit, the rest parsed.
    assert_eq!(r.faults.len(), 1);
}

#[test]
fn failpoint_parse_panic_targeted_file() {
    let v = victim();
    let _g = failpoints::Armed::new(
        &format!("pipeline::parse_file::{}", v.path),
        Action::Panic("targeted parser bug".into()),
    );
    let r = run_scenario("parse-panic-targeted", AssessmentOptions::default(), |a| {
        a.add_file(&v.module, &v.path, &v.text);
    });
    let f = r.faults.iter().find(|f| f.path == v.path).expect("targeted fault");
    assert_eq!(f.recovery, adsafe::Recovery::TokenMetrics);
    // Tier 3 kept the file contributing: its module exists with
    // absorbed (token-estimated) evidence.
    let m = r.modules.iter().find(|m| m.name == v.module).expect("module survives");
    assert_eq!(m.absorbed_files, 1);
    assert!(m.loc.nloc > 0);
}

#[test]
fn failpoint_checker_panic_generic() {
    let _g = failpoints::Armed::new("pipeline::check", Action::Panic("rule bug".into()));
    let r = run_scenario("check-panic-any", AssessmentOptions::default(), |a| {
        a.add_file("m", "m/a.cc", "int g;\nint f() { goto x; x: return (int)1.5; }\n");
    });
    assert!(r.faults.iter().any(|f| f.phase == adsafe::FaultPhase::Checks));
    // Only one rule was lost; the rest still produced diagnostics.
    assert!(!r.diagnostics.is_empty());
}

#[test]
fn failpoint_checker_panic_targeted_rule_keeps_other_rules() {
    let _g = failpoints::Armed::new(
        "pipeline::check::misra-15.1-goto",
        Action::Panic("goto rule bug".into()),
    );
    let r = run_scenario("check-panic-targeted", AssessmentOptions::default(), |a| {
        a.add_file("m", "m/a.cc", "int g;\nint f() { goto x; x: return (int)1.5; }\n");
    });
    // The armed rule produced no diagnostics but was logged.
    assert!(r.diagnostics_for("misra-15.1-goto").is_empty());
    assert!(r.faults.iter().any(|f| f.path == "misra-15.1-goto"));
    // Unrelated rules still fired on the same file.
    assert!(!r.diagnostics_for("typing-explicit-cast").is_empty());
}

#[test]
fn failpoint_metrics_panic_falls_back_to_estimates() {
    let _g = failpoints::Armed::new("pipeline::metrics::m", Action::Panic("metrics bug".into()));
    let r = run_scenario("metrics-panic", AssessmentOptions::default(), |a| {
        a.add_file("m", "m/a.cc", "int f() { if (f()) return 1; return 0; }\n");
    });
    let m = r.modules.iter().find(|m| m.name == "m").expect("module present");
    // Whole module fell to token estimation, but kept its NLOC.
    assert_eq!(m.absorbed_files, m.file_count);
    assert!(m.loc.nloc > 0);
    assert!(r.faults.iter().any(|f| f.phase == adsafe::FaultPhase::Metrics));
}

#[test]
fn failpoint_assess_panic_yields_conservative_defaults() {
    let _g = failpoints::Armed::new("pipeline::assess", Action::Panic("stats bug".into()));
    let r = run_scenario("assess-panic", AssessmentOptions::default(), |a| {
        a.add_file("m", "m/a.cc", "int f() { return 1; }\n");
    });
    assert_eq!(r.faults.worst(), Some(adsafe::FaultSeverity::Critical));
    assert!(r.faults.iter().any(|f| f.phase == adsafe::FaultPhase::Assess));
}

#[test]
fn failpoint_delay_trips_parse_deadline() {
    let _g = failpoints::Armed::new(
        "pipeline::parse_file",
        Action::Delay(Duration::from_millis(30)),
    );
    let options = AssessmentOptions {
        budgets: Budgets { phase_deadline: Some(Duration::from_millis(10)) },
        ..AssessmentOptions::default()
    };
    let r = run_scenario("parse-deadline", options, |a| {
        for i in 0..3 {
            a.add_file("m", &format!("m/f{i}.cc"), "int f() { return 1; }\n");
        }
    });
    assert!(r
        .faults
        .iter()
        .any(|f| matches!(f.cause, adsafe::FaultCause::DeadlineExceeded { .. })));
    // Files past the deadline still contributed through tier 3.
    let m = r.modules.iter().find(|m| m.name == "m").expect("module present");
    assert_eq!(m.file_count, 3);
    assert!(m.absorbed_files >= 1);
}

#[test]
fn failpoint_combined_parse_and_check_faults_accumulate() {
    let v = victim();
    let _g1 = failpoints::Armed::new(
        &format!("pipeline::parse_file::{}", v.path),
        Action::Panic("parser bug".into()),
    );
    let _g2 = failpoints::Armed::new(
        "pipeline::check::misra-15.5-multi-exit",
        Action::Panic("rule bug".into()),
    );
    let r = run_scenario("combined", AssessmentOptions::default(), |a| {
        a.add_file(&v.module, &v.path, &v.text);
    });
    assert!(r.faults.iter().any(|f| f.phase == adsafe::FaultPhase::Parse));
    assert!(r.faults.iter().any(|f| f.phase == adsafe::FaultPhase::Checks));
    assert!(r.faults.len() >= 2);
    assert_eq!(
        r.faults.counts_by_phase().len(),
        2,
        "parse and checks each contribute a count bucket"
    );
}

/// The containment contract also holds when *every* input is hostile:
/// all four corruptions of the same file assessed together.
#[test]
fn all_corruptions_at_once_still_produce_a_report() {
    let v = victim();
    let r = run_scenario("all-corruptions", AssessmentOptions::default(), |a| {
        for (i, c) in adsafe::corpus::corrupt_all(11, v).into_iter().enumerate() {
            a.add_file_bytes(&c.module, &format!("{}.v{}", c.path, i), &c.bytes);
        }
    });
    assert!(r.faults.len() >= 2);
    assert!(r.evidence.total_loc > 0, "degraded evidence still carries NLOC");
}
