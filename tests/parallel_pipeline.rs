//! Determinism and incrementality guarantees of the parallel pipeline:
//! reports must be byte-identical across worker counts and cache
//! states, warm cache runs must actually skip work, and every cache
//! invalidation path (content change, fingerprint change, corruption)
//! must fall back to a correct cold analysis.
//!
//! Counter assertions share the process-global metrics registry, so
//! counter-sensitive tests serialise on [`counter_lock`].

use adsafe::render::deterministic_report_markdown;
use adsafe::trace::alloc;
use adsafe::{
    Assessment, AssessmentOptions, AssessmentReport, FaultCause, FaultSeverity,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Instrumented allocator for the memory-determinism test below; it
/// counts nothing until that test flips profiling on.
#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Serialises tests that assert on global counter deltas: a concurrent
/// assessment in another test thread would pollute the delta window.
fn counter_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn temp_cache_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "adsafe-parallel-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A small but representative source set: C++, CUDA, a header, rule
/// findings across several checkers, and two modules.
fn sample_files() -> Vec<(&'static str, &'static str, String)> {
    vec![
        (
            "perception",
            "perception/track.cc",
            "int g_tracks;\n\
             int Update(int* state, int delta) {\n\
               if (delta < 0) return -1;\n\
               g_tracks = g_tracks + 1;\n\
               *state = *state + delta;\n\
               return (int)(*state * 1.5f);\n\
             }\n"
                .to_string(),
        ),
        (
            "perception",
            "perception/detect.cu",
            adsafe::corpus::yolo::SCALE_BIAS_CU.to_string(),
        ),
        (
            "perception",
            "perception/track.h",
            "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\nint Update(int* state, int delta);\n#endif\n".to_string(),
        ),
        (
            "control",
            "control/pid.cc",
            "static int s_calls;\n\
             int Step(int err) {\n\
               int out = 0;\n\
               s_calls = s_calls + 1;\n\
               switch (err) { case 0: out = 0; break; case 1: out = 1; break; }\n\
               goto done;\n\
             done:\n\
               return out;\n\
             }\n"
                .to_string(),
        ),
        (
            "control",
            "control/loop.cc",
            "int Recur(int n) { if (n <= 0) return 0; return Recur(n - 1) + 1; }\n\
             int Helper(int n) { return Recur(n); }\n"
                .to_string(),
        ),
        (
            "control",
            "control/alloc.cc",
            "void* Grab(unsigned long n);\n\
             int Fill(int n) {\n\
               int* p = (int*)Grab((unsigned long)(n * 4));\n\
               if (!p) return -1;\n\
               p[0] = 010;\n\
               return p[0];\n\
             }\n"
                .to_string(),
        ),
    ]
}

fn assess_samples(files: usize, options: AssessmentOptions) -> AssessmentReport {
    let mut a = Assessment::new().with_options(options);
    for (module, path, text) in sample_files().into_iter().take(files) {
        a.add_file(module, path, &text);
    }
    a.run()
}

fn counter(report: &AssessmentReport, name: &str) -> u64 {
    report
        .trace
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn reports_byte_identical_across_worker_counts() {
    let spec = adsafe::corpus::ApolloSpec::test_scale();
    let corpus = adsafe::corpus::generate(&spec);
    let run = |jobs: usize| {
        adsafe::assess_corpus(
            &corpus,
            AssessmentOptions { jobs, ..AssessmentOptions::default() },
        )
    };
    let serial = run(1);
    let baseline = deterministic_report_markdown(&serial);
    for jobs in [4, 8, 0] {
        let r = run(jobs);
        assert_eq!(
            deterministic_report_markdown(&r),
            baseline,
            "report differs at jobs={jobs}"
        );
        assert_eq!(r.diagnostics, serial.diagnostics, "diagnostics differ at jobs={jobs}");
        assert_eq!(
            format!("{:?}", r.modules),
            format!("{:?}", serial.modules),
            "module metrics differ at jobs={jobs}"
        );
    }
}

#[test]
fn warm_cache_run_skips_every_file_and_renders_identically() {
    let _g = counter_lock();
    let dir = temp_cache_dir("warm");
    let opts = || AssessmentOptions {
        cache_dir: Some(dir.clone()),
        ..AssessmentOptions::default()
    };
    let n = sample_files().len() as u64;
    let cold = assess_samples(usize::MAX, opts());
    assert_eq!(counter(&cold, "cache.misses"), n);
    assert_eq!(counter(&cold, "cache.stores"), n);
    let warm = assess_samples(usize::MAX, opts());
    assert_eq!(counter(&warm, "cache.hits"), n, "warm run must hit every file");
    assert_eq!(counter(&warm, "parse.cached.files"), n);
    assert_eq!(counter(&warm, "parse.tier1.files"), 0, "warm run must not re-parse");
    assert_eq!(
        deterministic_report_markdown(&warm),
        deterministic_report_markdown(&cold)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn content_change_invalidates_only_the_changed_file() {
    let _g = counter_lock();
    let dir = temp_cache_dir("content");
    let opts = || AssessmentOptions {
        cache_dir: Some(dir.clone()),
        ..AssessmentOptions::default()
    };
    let n = sample_files().len() as u64;
    let cold = assess_samples(usize::MAX, opts());
    // Re-assess with one file's text changed.
    let mut a = Assessment::new().with_options(opts());
    for (i, (module, path, text)) in sample_files().into_iter().enumerate() {
        if i == 0 {
            a.add_file(module, path, &format!("{text}int g_extra;\n"));
        } else {
            a.add_file(module, path, &text);
        }
    }
    let r = a.run();
    assert_eq!(counter(&r, "cache.hits"), n - 1);
    assert_eq!(counter(&r, "cache.misses"), 1);
    assert_eq!(counter(&r, "parse.tier1.files"), 1, "only the changed file re-parses");
    // The new global shows up in the evidence even though every other
    // file came from the cache.
    assert_eq!(
        r.evidence.global_definitions,
        cold.evidence.global_definitions + 1
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fingerprint_mismatch_invalidates_the_whole_cache() {
    let _g = counter_lock();
    let dir = temp_cache_dir("fingerprint");
    let opts = || AssessmentOptions {
        cache_dir: Some(dir.clone()),
        ..AssessmentOptions::default()
    };
    let n = sample_files().len() as u64;
    let _cold = assess_samples(usize::MAX, opts());
    // A cache written by a different rule set / build.
    std::fs::write(
        dir.join("meta.json"),
        "{\"schema\":\"adsafe-cache/1\",\"fingerprint\":\"0000000000000000\"}",
    )
    .unwrap();
    let r = assess_samples(usize::MAX, opts());
    assert_eq!(counter(&r, "cache.hits"), 0, "stale fingerprint must not serve entries");
    assert_eq!(counter(&r, "cache.misses"), n);
    assert_eq!(counter(&r, "cache.stores"), n, "wiped cache is repopulated");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entry_recovers_via_cold_path() {
    let _g = counter_lock();
    let dir = temp_cache_dir("corrupt");
    let opts = || AssessmentOptions {
        cache_dir: Some(dir.clone()),
        ..AssessmentOptions::default()
    };
    let cold = assess_samples(usize::MAX, opts());
    // Truncate one entry mid-JSON.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "json") && !p.ends_with("meta.json"))
        .expect("cache entries were written");
    std::fs::write(&entry, "{\"schema\":\"adsafe-facts/1\",\"loc\":[1,").unwrap();
    let r = assess_samples(usize::MAX, opts());
    // The corruption is logged as an Info fault and re-analysed from
    // source — never a panic, never a degraded report.
    assert_eq!(counter(&r, "cache.corrupt"), 1);
    let fault = r
        .faults
        .iter()
        .find(|f| matches!(f.cause, FaultCause::CacheCorrupt { .. }))
        .expect("corrupt entry must be logged");
    assert_eq!(fault.severity, FaultSeverity::Info);
    assert!(!r.degraded, "a corrupt cache entry must not degrade the report");
    assert_eq!(
        r.diagnostics, cold.diagnostics,
        "cold-path recovery must reproduce the cold analysis"
    );
    // The bad entry was evicted and rewritten: next run is fully warm.
    let warm = assess_samples(usize::MAX, opts());
    assert_eq!(counter(&warm, "cache.corrupt"), 0);
    assert_eq!(counter(&warm, "cache.hits"), sample_files().len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_cache_dir_falls_through_to_cold_analysis() {
    let _g = counter_lock();
    // Occupy the cache path with a regular file: `create_dir_all` fails
    // even for root (which bypasses permission bits on read-only dirs).
    let path = temp_cache_dir("unusable");
    std::fs::write(&path, "not a directory").unwrap();
    let baseline = assess_samples(usize::MAX, AssessmentOptions::default());
    let r = assess_samples(
        usize::MAX,
        AssessmentOptions { cache_dir: Some(path.clone()), ..AssessmentOptions::default() },
    );
    assert_eq!(counter(&r, "cache.disabled"), 1);
    let fault = r
        .faults
        .iter()
        .find(|f| matches!(f.cause, FaultCause::CacheCorrupt { .. }))
        .expect("unusable cache dir must be logged as a fault");
    assert_eq!(fault.severity, FaultSeverity::Info);
    assert!(!r.degraded, "a lost accelerator must not degrade the report");
    // Same analysis as a cache-less run; only the fault log differs.
    assert_eq!(
        r.diagnostics, baseline.diagnostics,
        "cold fall-through must reproduce the cache-less analysis"
    );
    assert_eq!(format!("{:?}", r.modules), format!("{:?}", baseline.modules));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shared_store_makes_repeat_runs_warm() {
    let _g = counter_lock();
    let store = std::sync::Arc::new(adsafe::MemoryFactsStore::open(None));
    let opts = || AssessmentOptions {
        store: Some(store.clone()),
        ..AssessmentOptions::default()
    };
    let n = sample_files().len() as u64;
    let cold = assess_samples(usize::MAX, opts());
    assert_eq!(counter(&cold, "cache.misses"), n);
    assert_eq!(counter(&cold, "cache.stores"), n);
    let warm = assess_samples(usize::MAX, opts());
    assert_eq!(counter(&warm, "cache.hits"), n, "resident store must serve every file");
    assert_eq!(counter(&warm, "parse.tier1.files"), 0, "warm run must not re-parse");
    assert_eq!(
        deterministic_report_markdown(&warm),
        deterministic_report_markdown(&cold)
    );
}

#[test]
fn memory_profiling_never_changes_report_bytes() {
    let spec = adsafe::corpus::ApolloSpec::test_scale();
    let corpus = adsafe::corpus::generate(&spec);
    let run = |jobs: usize| {
        adsafe::assess_corpus(
            &corpus,
            AssessmentOptions { jobs, ..AssessmentOptions::default() },
        )
    };
    alloc::set_profiling(false);
    let baseline = deterministic_report_markdown(&run(1));
    // The determinism contract (DESIGN.md §14): allocation profiling is
    // a pure observer. Toggling it — serial or parallel — must leave
    // the deterministic report byte-identical, while profiling runs
    // still attribute allocations to pipeline phases.
    for (profiling, jobs) in [(false, 4), (true, 1), (true, 4)] {
        let prev = alloc::set_profiling(profiling);
        let r = run(jobs);
        alloc::set_profiling(prev);
        if profiling {
            assert!(
                r.trace.phase_mem.iter().any(|p| p.name == "parse" && p.bytes > 0),
                "profiling on must bill parse-phase allocations, got {:?}",
                r.trace.phase_mem
            );
        } else {
            assert!(
                r.trace.phase_mem.is_empty(),
                "profiling off must record nothing, got {:?}",
                r.trace.phase_mem
            );
        }
        assert_eq!(
            deterministic_report_markdown(&r),
            baseline,
            "report bytes differ at profiling={profiling} jobs={jobs}"
        );
    }
}

#[test]
fn checks_phase_speeds_up_with_workers() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
        return;
    }
    let _g = counter_lock();
    let spec = adsafe::corpus::ApolloSpec::test_scale();
    let corpus = adsafe::corpus::generate(&spec);
    let phase_us = |r: &AssessmentReport, name: &str| {
        r.trace.phases.iter().find(|p| p.name == name).map_or(0, |p| p.wall_us)
    };
    // Best-of-3 per configuration to shave scheduler noise.
    let best = |jobs: usize| {
        (0..3)
            .map(|_| {
                let r = adsafe::assess_corpus(
                    &corpus,
                    AssessmentOptions { jobs, ..AssessmentOptions::default() },
                );
                phase_us(&r, "checks")
            })
            .min()
            .unwrap()
    };
    let serial = best(1);
    let parallel = best(4);
    assert!(
        parallel * 2 <= serial,
        "checks phase: jobs=4 took {parallel}µs vs jobs=1 {serial}µs (need ≥2x)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any worker count over any prefix of the sample set produces
    /// exactly the serial analysis — diagnostics, modules, evidence.
    #[test]
    fn any_worker_count_matches_serial(jobs in 0usize..9, files in 1usize..7) {
        let serial = assess_samples(files, AssessmentOptions::default());
        let parallel = assess_samples(
            files,
            AssessmentOptions { jobs, ..AssessmentOptions::default() },
        );
        prop_assert_eq!(&parallel.diagnostics, &serial.diagnostics);
        prop_assert_eq!(
            deterministic_report_markdown(&parallel),
            deterministic_report_markdown(&serial)
        );
    }
}
