//! Property-based tests over the core invariants of the toolchain.

use adsafe::coverage::{Interp, Limits, Program, Value};
use adsafe::gpu::kernels;
use adsafe::lang::{lexer::lex, parse_source, FileId};
use adsafe::metrics::cyclomatic_complexity;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The lexer is total: never panics, always terminates with Eof,
    /// and spans are in-bounds and non-overlapping.
    #[test]
    fn lexer_total_and_spans_sane(src in "[ -~\n\t]{0,200}") {
        let toks = lex(FileId(0), &src);
        prop_assert!(!toks.is_empty());
        prop_assert_eq!(toks.last().unwrap().kind, adsafe::lang::token::TokenKind::Eof);
        let mut prev_end = 0u32;
        for t in &toks {
            prop_assert!(t.span.start >= prev_end, "overlapping tokens");
            prop_assert!(t.span.end as usize <= src.len());
            prev_end = t.span.start;
        }
    }

    /// The parser is total on arbitrary input (error tolerance).
    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,300}") {
        let _ = parse_source(FileId(0), &src);
    }

    /// The parser is total on brace/paren/keyword soup, which stresses
    /// the recovery machinery harder than uniform ASCII.
    #[test]
    fn parser_never_panics_on_syntax_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("{"), Just("}"), Just("("), Just(")"), Just(";"),
                Just("if"), Just("for"), Just("int"), Just("x"), Just("="),
                Just("1"), Just("<<<"), Just(">>>"), Just("goto"), Just("::"),
                Just("case"), Just("switch"), Just("template"), Just("<"), Just(">"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_source(FileId(0), &src);
    }

    /// Adding an `if` around a parsed function body strictly increases
    /// cyclomatic complexity by exactly one.
    #[test]
    fn cc_increases_by_one_per_decision(n in 0usize..12) {
        let mut body = String::from("int acc = 0;\n");
        for i in 0..n {
            body.push_str(&format!("if (x > {i}) {{ acc += {i}; }}\n"));
        }
        body.push_str("return acc;\n");
        let src = format!("int f(int x) {{\n{body}}}\n");
        let parsed = parse_source(FileId(0), &src);
        let cc = cyclomatic_complexity(parsed.unit.functions()[0]);
        prop_assert_eq!(cc, n as u32 + 1);
    }

    /// Tiled GEMM equals naive GEMM for arbitrary small shapes and tiles.
    #[test]
    fn gemm_tiled_matches_naive(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..12,
        tile in 1usize..16,
        seed in 0u64..1000,
    ) {
        let gen = |len: usize, salt: u64| -> Vec<f32> {
            (0..len)
                .map(|i| (((i as u64).wrapping_mul(seed + salt + 1) % 17) as f32) - 8.0)
                .collect()
        };
        let a = gen(m * k, 1);
        let b = gen(k * n, 2);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        kernels::gemm_naive(m, n, k, &a, &b, &mut c1);
        kernels::gemm_tiled(m, n, k, &a, &b, &mut c2, tile);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// im2col+GEMM convolution equals direct convolution for arbitrary
    /// valid shapes.
    #[test]
    fn conv_lowering_is_exact(
        in_c in 1usize..4,
        hw in 3usize..8,
        out_c in 1usize..4,
        ksize in 1usize..4,
        pad in 0usize..2,
    ) {
        prop_assume!(hw + 2 * pad >= ksize);
        let shape = kernels::ConvShape {
            batch: 1, in_c, in_h: hw, in_w: hw, out_c, ksize, stride: 1, pad,
        };
        let input: Vec<f32> = (0..shape.input_len()).map(|i| ((i % 11) as f32) - 5.0).collect();
        let weights: Vec<f32> = (0..shape.weight_len()).map(|i| ((i % 7) as f32) - 3.0).collect();
        let mut direct = vec![0.0f32; shape.output_len()];
        let mut lowered = vec![0.0f32; shape.output_len()];
        kernels::conv2d_direct(&shape, &input, &weights, &mut direct);
        kernels::conv2d_im2col(&shape, &input, &weights, &mut lowered, 8);
        for (x, y) in direct.iter().zip(&lowered) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    /// Interpreter coverage counts never exceed the static probe counts,
    /// and hit statements are a subset of enumerated statements.
    #[test]
    fn coverage_bounded_by_probes(x in -100i64..100, y in -100i64..100) {
        let src = "int f(int a, int b) {\n\
            int r = 0;\n\
            if (a > 0 && b > 0) { r = a + b; }\n\
            for (int i = 0; i < a; i++) { r += i; }\n\
            switch (b % 3) { case 0: r += 1; break; case 1: r += 2; break; default: r += 3; }\n\
            return r;\n}";
        let parsed = parse_source(FileId(0), src);
        let probes = adsafe::coverage::enumerate_probes(parsed.unit.functions()[0]);
        let prog = Program::from_units(&[&parsed.unit]);
        let mut it = Interp::new(&prog)
            .with_limits(Limits { max_steps: 2_000_000, max_depth: 16 });
        let _ = it.call("f", vec![Value::Int(x), Value::Int(y)]);
        let cov = adsafe::coverage::function_coverage(&probes, &it.log);
        prop_assert!(cov.stmts_hit <= cov.stmts_total);
        prop_assert!(cov.branches_hit <= cov.branches_total);
        prop_assert!(cov.conditions_covered <= cov.conditions_total);
        for span in it.log.stmt_hits.keys() {
            prop_assert!(probes.statements.contains(span));
        }
    }

    /// The interpreter agrees with native Rust on integer arithmetic
    /// expressions.
    #[test]
    fn interpreter_arithmetic_agrees(a in -1000i64..1000, b in 1i64..100) {
        let src = "int f(int a, int b) { return (a * 3 + b) % (b + 7) - a / b; }";
        let parsed = parse_source(FileId(0), src);
        let prog = Program::from_units(&[&parsed.unit]);
        let mut it = Interp::new(&prog);
        let got = it.call("f", vec![Value::Int(a), Value::Int(b)]).unwrap().as_i64();
        let expected = (a * 3 + b) % (b + 7) - a / b;
        prop_assert_eq!(got, expected);
    }

    /// Generated corpus functions always reparse with the planned CC.
    #[test]
    fn generator_cc_roundtrip(decisions in 0u32..40, seed in 0u64..500) {
        use adsafe::corpus::generator::{gen_function, rng_for, FunctionPlan};
        let mut w = adsafe::corpus::writer::CodeWriter::new();
        let plan = FunctionPlan::basic("RoundTrip", decisions);
        gen_function(&mut w, &plan, &mut rng_for(seed, "prop"));
        let src = w.finish();
        let parsed = parse_source(FileId(0), &src);
        prop_assert_eq!(parsed.unit.recovery_count, 0);
        let cc = cyclomatic_complexity(parsed.unit.functions()[0]);
        prop_assert_eq!(cc, decisions + 1);
    }

    /// MC/DC coverage never exceeds branch coverage on the same decision
    /// set (a well-known dominance relation).
    #[test]
    fn mcdc_dominated_by_branch(inputs in proptest::collection::vec((-10i64..10, -10i64..10), 1..8)) {
        let src = "int f(int a, int b) { if (a > 0 && b < 3) { return 1; } return 0; }";
        let parsed = parse_source(FileId(0), src);
        let probes = adsafe::coverage::enumerate_probes(parsed.unit.functions()[0]);
        let prog = Program::from_units(&[&parsed.unit]);
        let mut it = Interp::new(&prog);
        for (a, b) in inputs {
            let _ = it.call("f", vec![Value::Int(a), Value::Int(b)]);
        }
        let cov = adsafe::coverage::function_coverage(&probes, &it.log);
        prop_assert!(cov.mcdc_pct() <= cov.branch_pct() + 1e-9);
    }
}

#[test]
fn proptest_regressions_placeholder() {
    // Anchor so `cargo test properties` always has at least one plain test.
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Brook streams: map preserves shape; map(f) ∘ map(g) == map(f ∘ g);
    /// reduce over (+) equals the slice sum.
    #[test]
    fn brook_stream_algebra(data in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        use adsafe::gpu::brook::{map, reduce, Stream};
        let s = Stream::from_slice(&data);
        let f = |v: f32| v * 2.0;
        let g = |v: f32| v + 1.0;
        let composed = map(&map(&s, g), f);
        let fused = map(&s, |v| f(g(v)));
        prop_assert_eq!(composed.to_vec(), fused.to_vec());
        prop_assert_eq!(composed.len(), data.len());
        let total = reduce(&s, 0.0, |a, v| a + v);
        let expected: f32 = data.iter().sum();
        prop_assert!((total - expected).abs() < 1e-3 * (1.0 + expected.abs()));
    }

    /// Brook stencil equals the raw kernel for arbitrary small grids.
    #[test]
    fn brook_stencil_equals_kernel(h in 2usize..8, w in 2usize..8, seed in 0u64..100) {
        use adsafe::gpu::brook::{stencil2d_brook, Stream};
        let data: Vec<f32> = (0..h * w)
            .map(|i| (((i as u64 + seed) * 7) % 11) as f32 - 5.0)
            .collect();
        let mut expected = vec![0.0f32; h * w];
        adsafe::gpu::kernels::stencil2d(h, w, &data, &mut expected, 0.5, 0.125);
        let out = stencil2d_brook(&Stream::from_slice(&data).reshape(h, w), 0.5, 0.125);
        for (a, b) in out.to_vec().iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Gap counts plus covered counts always equal the probe totals.
    #[test]
    fn gaps_complement_coverage(x in -50i64..50) {
        use adsafe::coverage::{enumerate_probes, function_coverage, function_gaps, summarize_gaps};
        let src = "int f(int a) { if (a > 0 && a < 10) { return 1; } \
                   switch (a) { case 1: return 2; default: return 0; } }";
        let parsed = parse_source(FileId(0), src);
        let probes = enumerate_probes(parsed.unit.functions()[0]);
        let prog = Program::from_units(&[&parsed.unit]);
        let mut it = Interp::new(&prog);
        let _ = it.call("f", vec![Value::Int(x)]);
        let cov = function_coverage(&probes, &it.log);
        let gaps = summarize_gaps(&function_gaps(&probes, &it.log));
        prop_assert_eq!(cov.stmts_hit + gaps.statements, cov.stmts_total);
        prop_assert_eq!(
            cov.conditions_covered + gaps.conditions,
            cov.conditions_total
        );
        // Branch gaps cover both decision edges and case labels.
        prop_assert_eq!(
            cov.branches_hit + gaps.branches + gaps.cases,
            cov.branches_total
        );
    }

    /// Strict MC/DC never credits more conditions than masking MC/DC,
    /// for arbitrary inputs driving the same decision.
    #[test]
    fn strict_mcdc_subset_of_masking(inputs in proptest::collection::vec((-5i64..5, -5i64..5), 1..10)) {
        use adsafe::coverage::mcdc::{covered_conditions, covered_conditions_strict};
        let src = "int f(int a, int b) { if (a > 0 || b > 2) { return 1; } return 0; }";
        let parsed = parse_source(FileId(0), src);
        let prog = Program::from_units(&[&parsed.unit]);
        let mut it = Interp::new(&prog);
        for (a, b) in inputs {
            let _ = it.call("f", vec![Value::Int(a), Value::Int(b)]);
        }
        for records in it.log.decision_records.values() {
            let n = records.iter().map(|r| r.conditions.len()).max().unwrap_or(0);
            prop_assert!(covered_conditions_strict(records, n) <= covered_conditions(records, n));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parse → print → parse preserves every metric the analyses use,
    /// on arbitrary generated corpus functions.
    #[test]
    fn printer_roundtrip_preserves_metrics(decisions in 0u32..30, seed in 0u64..200) {
        use adsafe::corpus::generator::{gen_function, rng_for, FunctionPlan};
        use adsafe::lang::printer::print_unit;
        let mut w = adsafe::corpus::writer::CodeWriter::new();
        let mut plan = FunctionPlan::basic("Rt", decisions);
        plan.multi_exit = decisions >= 2 && seed % 2 == 0;
        plan.casts = (seed % 3) as u32;
        plan.has_goto = decisions >= 2 && seed % 5 == 0;
        gen_function(&mut w, &plan, &mut rng_for(seed, "rt"));
        let src = w.finish();
        let first = parse_source(FileId(0), &src).unit;
        let printed = print_unit(&first);
        let second = parse_source(FileId(0), &printed).unit;
        prop_assert_eq!(second.recovery_count, 0, "printed output must parse: {}", printed);
        let m1 = cyclomatic_complexity(first.functions()[0]);
        let m2 = cyclomatic_complexity(second.functions()[0]);
        prop_assert_eq!(m1, m2, "CC changed across print: {}", printed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parser resynchronisation is total under token-stream mutation:
    /// deleting, duplicating, or swapping tokens of a valid program
    /// never panics the parser, and the token-only metrics tier stays
    /// total on the same mutants (the degradation ladder's guarantee).
    #[test]
    fn parser_resync_survives_token_mutations(
        seed in 0u64..300,
        decisions in 1u32..20,
        ops in proptest::collection::vec((0usize..3, 0usize..1000), 1..12),
    ) {
        use adsafe::corpus::generator::{gen_function, rng_for, FunctionPlan};

        let mut w = adsafe::corpus::writer::CodeWriter::new();
        gen_function(&mut w, &FunctionPlan::basic("Mutant", decisions), &mut rng_for(seed, "mut"));
        let src = w.finish();

        // Slice the source into lexemes, then mutate the token list.
        let toks = lex(FileId(0), &src);
        let mut lexemes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind != adsafe::lang::token::TokenKind::Eof)
            .map(|t| &src[t.span.start as usize..t.span.end as usize])
            .collect();
        prop_assume!(lexemes.len() >= 2);
        for &(kind, pos) in &ops {
            if lexemes.is_empty() {
                break;
            }
            let i = pos % lexemes.len();
            match kind {
                0 => {
                    lexemes.remove(i);
                }
                1 => {
                    let dup = lexemes[i];
                    lexemes.insert(i, dup);
                }
                _ => {
                    let j = (pos / 7) % lexemes.len();
                    lexemes.swap(i, j);
                }
            }
        }
        let mutated = lexemes.join(" ");

        // Totality: both ladder tiers accept any mutant.
        let parsed = parse_source(FileId(0), &mutated);
        let est = adsafe::metrics::token_estimate(FileId(0), &mutated);
        // Sanity on the recovered evidence: estimates are bounded by the
        // mutant's size, and recovery never manufactures declarations
        // out of thin air.
        prop_assert!(est.token_count <= lexemes.len() + 2);
        prop_assert!(est.nloc <= mutated.lines().count());
        prop_assert!(parsed.unit.decls.len() <= lexemes.len() + 1);
    }
}
