//! End-to-end tests of the `adsafe serve` daemon over real TCP:
//! CLI/HTTP report byte-identity, warm-request incrementality, fault
//! isolation (500 without killing the daemon), queue backpressure
//! (503 + recovery), keep-alive connection lifecycle (reuse, request
//! cap, idle expiry, stall → 408), invalidation, shutdown write-back —
//! plus property tests of the HTTP codec (folding, chunked bodies,
//! size limits, parser totality, pipelined keep-alive streams).
//!
//! Counters and the metrics registry are process-global, so every
//! server test serialises on [`serve_lock`].

use adsafe_serve::http::{self, Response};
use adsafe_serve::{ServeConfig, Server};
use proptest::prelude::*;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn serve_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("adsafe-serve-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Writes a small two-module corpus and returns its root.
fn corpus_dir(tag: &str) -> PathBuf {
    let root = temp_dir(tag);
    let files: [(&str, &str); 3] = [
        (
            "perception/track.cc",
            "int g_tracks;\n\
             int Update(int* state, int delta) {\n\
               if (delta < 0) return -1;\n\
               g_tracks = g_tracks + 1;\n\
               *state = *state + delta;\n\
               return 0;\n\
             }\n",
        ),
        (
            "control/pid.cc",
            "static int s_calls;\n\
             int Step(int err) {\n\
               s_calls = s_calls + 1;\n\
               if (err < 0) { return -err; }\n\
               return err;\n\
             }\n",
        ),
        ("control/pid.h", "int Step(int err);\n"),
    ];
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
    }
    root
}

const CORPUS_FILES: u64 = 3;

fn start_server(config: ServeConfig) -> Server {
    Server::start(ServeConfig { addr: "127.0.0.1:0".into(), ..config }).expect("bind 127.0.0.1:0")
}

/// One round-trip request over a fresh connection.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
        .write_all(&http::encode_request(method, path, &[], body.as_bytes()))
        .expect("send request");
    let mut reader = BufReader::new(stream);
    match http::read_response(&mut reader) {
        Ok(resp) => resp,
        Err(e) => panic!("reading response to {method} {path}: {e:?}"),
    }
}

fn assess_body(dir: &Path, extra: &str) -> String {
    format!("{{\"dir\":\"{}\"{extra}}}", dir.display())
}

/// Value of `counter <name> N` in a `/metrics` body (0 if absent).
fn metrics_counter(metrics: &str, name: &str) -> u64 {
    let prefix = format!("counter {name} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .map_or(0, |v| v.parse().expect("counter value"))
}

#[test]
fn http_report_is_byte_identical_to_the_cli_report() {
    let _g = serve_lock();
    let corpus = corpus_dir("cli-parity");
    let report_path = corpus.join("cli-report.md");

    // CLI baseline: serial, uncached, report to a file.
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_adsafe"))
        .args([
            "assess",
            &corpus.display().to_string(),
            "--jobs",
            "1",
            "--no-cache",
            "-q",
            "--report",
            &report_path.display().to_string(),
        ])
        .output()
        .expect("running the adsafe CLI");
    let cli_exit = status.status.code().expect("CLI exit code");
    let full = std::fs::read_to_string(&report_path).expect("CLI report written");
    // `--report` appends the trace summary to the deterministic body.
    let cli_det = full
        .split("\n## Trace summary")
        .next()
        .expect("report has a deterministic prefix");

    let server = start_server(ServeConfig::default());
    for jobs in [1, 0] {
        let resp = request(
            server.addr(),
            "POST",
            "/assess",
            &assess_body(&corpus, &format!(",\"jobs\":{jobs}")),
        );
        assert_eq!(resp.status, 200, "jobs={jobs}: {}", resp.body_text());
        assert_eq!(
            resp.body_text(),
            cli_det,
            "HTTP report must be byte-identical to the CLI report at jobs={jobs}"
        );
        assert_eq!(
            resp.header("x-adsafe-exit-code"),
            Some(cli_exit.to_string().as_str()),
            "daemon and CLI must agree on the exit-code contract"
        );
        assert_eq!(resp.header("x-adsafe-degraded"), Some("false"));
        assert!(resp.header("x-adsafe-trace-digest").is_some_and(|d| d.len() == 16));
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn warm_second_request_does_zero_parse_work() {
    let _g = serve_lock();
    let corpus = corpus_dir("warm");
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let cold = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(cold.status, 200, "{}", cold.body_text());
    assert_eq!(cold.header("x-adsafe-cache-hits"), Some("0"));
    let parsed_after_cold =
        metrics_counter(&request(addr, "GET", "/metrics", "").body_text(), "parse.tier1.files");

    let warm = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.header("x-adsafe-cache-hits"),
        Some(CORPUS_FILES.to_string().as_str()),
        "every file must resolve from the resident store"
    );
    let parsed_after_warm =
        metrics_counter(&request(addr, "GET", "/metrics", "").body_text(), "parse.tier1.files");
    assert_eq!(
        parsed_after_warm, parsed_after_cold,
        "the warm request must do zero parse-phase work"
    );
    assert_eq!(warm.body, cold.body, "cold and warm reports must be byte-identical");
    assert_ne!(
        warm.header("x-adsafe-trace-digest"),
        cold.header("x-adsafe-trace-digest"),
        "the per-request trace digest distinguishes cold from warm work"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn handler_panic_answers_500_and_the_daemon_survives() {
    let _g = serve_lock();
    let corpus = corpus_dir("panic");
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    // A serve-layer panic escapes the handler → 500 with a fault
    // summary.
    let broken = request(
        addr,
        "POST",
        "/assess",
        &assess_body(&corpus, ",\"failpoints\":[{\"site\":\"serve.request\",\"action\":\"panic\"}]"),
    );
    assert_eq!(broken.status, 500);
    let text = broken.body_text();
    assert!(text.contains("DEGRADED: 1 fault(s) contained"), "{text}");
    assert!(text.contains("panic"), "{text}");

    // The daemon — and the worker that panicked — keeps serving.
    let next = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(next.status, 200, "daemon must survive a handler panic");
    assert_eq!(next.header("x-adsafe-degraded"), Some("false"));

    // /healthz surfaces the contained fault.
    let health = request(addr, "GET", "/healthz", "").body_text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("handler panic on POST /assess"), "{health}");

    // By contrast, a *checker* panic is the pipeline's to contain: the
    // request still answers 200, degraded. (Serial jobs so the
    // thread-local failpoint is visible to the checker.)
    let degraded = request(
        addr,
        "POST",
        "/assess",
        &assess_body(
            &corpus,
            ",\"jobs\":1,\"failpoints\":[{\"site\":\"pipeline::check\",\"action\":\"panic\"}]",
        ),
    );
    assert_eq!(degraded.status, 200, "contained checker faults are not server errors");
    assert_eq!(degraded.header("x-adsafe-degraded"), Some("true"));
    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn full_queue_answers_503_and_recovers_after_drain() {
    let _g = serve_lock();
    let corpus = corpus_dir("backpressure");
    let server = start_server(ServeConfig {
        handlers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let slow_body = assess_body(
        &corpus,
        ",\"jobs\":1,\"failpoints\":[{\"site\":\"serve.request\",\"action\":\"delay\",\"ms\":900}]",
    );
    let plain_body = assess_body(&corpus, ",\"jobs\":1");

    // c1 occupies the single worker for ~900ms.
    let mut c1 = TcpStream::connect(addr).unwrap();
    c1.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c1.write_all(&http::encode_request("POST", "/assess", &[], slow_body.as_bytes())).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // worker picked c1 up

    // c2 fills the queue (capacity 1).
    let mut c2 = TcpStream::connect(addr).unwrap();
    c2.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c2.write_all(&http::encode_request("POST", "/assess", &[], plain_body.as_bytes())).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // accept loop queued c2

    // c3 overflows → 503 with a queue-depth-derived Retry-After,
    // answered by the accept loop.
    let rejected = request(addr, "POST", "/assess", &plain_body);
    assert_eq!(rejected.status, 503, "{}", rejected.body_text());
    let retry: u64 = rejected
        .header("retry-after")
        .expect("503 carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!((1..=30).contains(&retry), "hint stays within the clamp: {retry}");
    let body = rejected.body_text();
    assert!(body.contains("\"queue_depth\":"), "{body}");
    assert!(
        body.contains(&format!("\"retry_after_s\":{retry}")),
        "body and header must agree: {body}"
    );

    // The admitted requests complete.
    let r1 = http::read_response(&mut BufReader::new(c1)).expect("c1 response");
    assert_eq!(r1.status, 200);
    let r2 = http::read_response(&mut BufReader::new(c2)).expect("c2 response");
    assert_eq!(r2.status, 200);

    // The client's retry after the drain succeeds.
    let retried = request(addr, "POST", "/assess", &plain_body);
    assert_eq!(retried.status, 200, "retry after drain must succeed");
    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

/// Sends `wire` on an open stream and reads one response.
fn round_trip(stream: &mut TcpStream, wire: &[u8]) -> Response {
    stream.write_all(wire).expect("send request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    http::read_response(&mut reader).expect("read response")
}

/// True once `stream` reaches EOF (the server closed its end).
fn reaches_eof(stream: &mut TcpStream) -> bool {
    use std::io::Read;
    let mut probe = [0u8; 64];
    loop {
        match stream.read(&mut probe) {
            Ok(0) => return true,
            Ok(_) => continue, // residual bytes of an unread response
            Err(_) => return false,
        }
    }
}

#[test]
fn keep_alive_serves_many_requests_then_caps_the_connection() {
    let _g = serve_lock();
    let server = start_server(ServeConfig { keep_alive_max: 3, ..ServeConfig::default() });
    let addr = server.addr();
    let reuses_before = {
        let m = request(addr, "GET", "/metrics", "").body_text();
        metrics_counter(&m, "serve.keepalive.reuses")
    };

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let wire = http::encode_request("GET", "/healthz", &[], b"");
    for n in 1..=3 {
        let resp = round_trip(&mut stream, &wire);
        assert_eq!(resp.status, 200, "request {n} on the shared connection");
        let expected = if n < 3 { "keep-alive" } else { "close" };
        assert_eq!(
            resp.header("connection"),
            Some(expected),
            "request {n}/3 against a cap of 3"
        );
    }
    assert!(reaches_eof(&mut stream), "server closes at the request cap");

    let reuses_after = {
        let m = request(addr, "GET", "/metrics", "").body_text();
        metrics_counter(&m, "serve.keepalive.reuses")
    };
    assert!(
        reuses_after >= reuses_before + 2,
        "requests 2 and 3 rode the same connection ({reuses_before} -> {reuses_after})"
    );
    server.stop();
}

#[test]
fn connection_close_and_http10_clients_get_one_shot_connections() {
    let _g = serve_lock();
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    // Explicit opt-out on HTTP/1.1.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let resp = round_trip(
        &mut s,
        &http::encode_request("GET", "/healthz", &[("Connection", "close")], b""),
    );
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    assert!(reaches_eof(&mut s));

    // HTTP/1.0 defaults to close without the opt-in.
    let mut s10 = TcpStream::connect(addr).unwrap();
    s10.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let resp = round_trip(&mut s10, b"GET /healthz HTTP/1.0\r\n\r\n");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    assert!(reaches_eof(&mut s10));
    server.stop();
}

#[test]
fn idle_keep_alive_connections_expire_cleanly() {
    let _g = serve_lock();
    let server = start_server(ServeConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let idle_before = {
        let m = request(addr, "GET", "/metrics", "").body_text();
        metrics_counter(&m, "serve.idle_closes")
    };

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let resp = round_trip(&mut stream, &http::encode_request("GET", "/healthz", &[], b""));
    assert_eq!(resp.header("connection"), Some("keep-alive"));
    // Then say nothing: the server closes without writing anything.
    assert!(reaches_eof(&mut stream), "idle expiry is a clean close, not an error response");

    let idle_after = {
        let m = request(addr, "GET", "/metrics", "").body_text();
        metrics_counter(&m, "serve.idle_closes")
    };
    assert!(idle_after > idle_before, "idle close must be counted");
    server.stop();
}

#[test]
fn a_stalled_request_answers_408_and_closes() {
    let _g = serve_lock();
    let server = start_server(ServeConfig {
        request_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Half a request line, then silence: the request started (so this
    // is not idle expiry) but can never complete.
    stream.write_all(b"POST /assess HTT").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let resp = http::read_response(&mut reader).expect("408 response");
    assert_eq!(resp.status, 408);
    assert_eq!(resp.header("connection"), Some("close"));
    assert!(reaches_eof(&mut stream));

    let m = request(addr, "GET", "/metrics", "").body_text();
    assert!(metrics_counter(&m, "serve.request_timeouts") >= 1);
    server.stop();
}

#[test]
fn invalidate_drops_resident_facts_for_changed_paths() {
    let _g = serve_lock();
    let corpus = corpus_dir("invalidate");
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let cold = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(cold.status, 200);
    // The daemon keys facts by the path it ingested: the absolute file
    // path under the corpus root.
    let changed = corpus.join("control/pid.cc");
    let resp = request(
        addr,
        "POST",
        "/invalidate",
        &format!("{{\"paths\":[\"{}\"]}}", changed.display()),
    );
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_text(), "{\"dropped\":1}");

    let warm = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(
        warm.header("x-adsafe-cache-hits"),
        Some((CORPUS_FILES - 1).to_string().as_str()),
        "only the invalidated path re-analyses"
    );

    let all = request(addr, "POST", "/invalidate", "{\"all\":true}");
    assert_eq!(all.body_text(), format!("{{\"dropped\":{CORPUS_FILES}}}"));
    let refilled = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(refilled.header("x-adsafe-cache-hits"), Some("0"));

    let bad = request(addr, "POST", "/invalidate", "{\"nope\":1}");
    assert_eq!(bad.status, 400);
    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn graceful_shutdown_flushes_the_facts_store_to_disk() {
    let _g = serve_lock();
    let corpus = corpus_dir("flush");
    let cache_dir = temp_dir("flush-cache");
    let config = || ServeConfig { cache_dir: Some(cache_dir.clone()), ..ServeConfig::default() };

    let server = start_server(config());
    let addr = server.addr();
    let cold = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(cold.status, 200);
    // Write-back is lazy: no facts entries on disk until shutdown.
    let entries_on_disk = || {
        std::fs::read_dir(&cache_dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name() != "meta.json")
            .count() as u64
    };
    assert_eq!(entries_on_disk(), 0, "requests must not pay disk-write latency");
    let stats = server.stop();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.flushed_entries as u64, CORPUS_FILES, "drain flushes every dirty entry");
    assert_eq!(entries_on_disk(), CORPUS_FILES);

    // A fresh daemon (fresh process, same disk cache) starts warm.
    let server2 = start_server(config());
    let warm = request(server2.addr(), "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(
        warm.header("x-adsafe-cache-hits"),
        Some(CORPUS_FILES.to_string().as_str()),
        "the flushed cache must warm the next daemon"
    );
    assert_eq!(warm.body, cold.body);
    server2.stop();
    let _ = std::fs::remove_dir_all(&corpus);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn healthz_and_routing_basics() {
    let _g = serve_lock();
    let server = start_server(ServeConfig { queue_capacity: 7, ..ServeConfig::default() });
    let addr = server.addr();

    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    let text = health.body_text();
    assert!(text.contains("\"status\":\"ok\""), "{text}");
    assert!(text.contains("\"queue_capacity\":7"), "{text}");

    let metrics = request(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body_text().starts_with("# adsafe-metrics/1\n"));

    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    let wrong_method = request(addr, "GET", "/assess", "");
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));
    assert_eq!(request(addr, "POST", "/assess", "{not json").status, 400);
    assert_eq!(request(addr, "POST", "/assess", "{\"jobs\":1}").status, 400);
    server.stop();
}

#[test]
fn every_assessment_gets_a_run_id_and_a_ledger_record() {
    let _g = serve_lock();
    let corpus = corpus_dir("ledger");
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let first = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    let second = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!((first.status, second.status), (200, 200));
    let id1 = first.header("x-adsafe-run-id").expect("run ID header").to_string();
    let id2 = second.header("x-adsafe-run-id").expect("run ID header").to_string();
    assert_ne!(id1, id2, "every run gets a fresh ID");
    // Run IDs never leak into the deterministic report body.
    assert!(!first.body_text().contains(&id1));

    // The ledger records are served back over HTTP and show no drift
    // between two identical runs.
    let index = request(addr, "GET", "/runs", "");
    assert_eq!(index.status, 200);
    let listing = index.body_text();
    assert!(listing.contains(&id1) && listing.contains(&id2), "{listing}");

    let fetch = |id: &str| {
        let one = request(addr, "GET", &format!("/runs/{id}"), "");
        assert_eq!(one.status, 200, "GET /runs/{id}");
        adsafe_ledger::RunRecord::from_json(&one.body_text()).expect("served record parses")
    };
    let (r1, r2) = (fetch(&id1), fetch(&id2));
    assert_eq!(r1.corpus_digest, r2.corpus_digest);
    assert!(!adsafe_ledger::RunDiff::between(&r1, &r2).has_drift());
    assert_eq!(request(addr, "GET", "/runs/r999999-00000000", "").status, 404);

    // A corpus mutation that flips a verdict is visible as drift
    // between the served records.
    std::fs::write(
        corpus.join("control/pid.cc"),
        "int Step(int err) {\n\
           if (err < 0) { int err = 1; return err; }\n\
           return err;\n\
         }\n",
    )
    .unwrap();
    let third = request(addr, "POST", "/assess", &assess_body(&corpus, ""));
    assert_eq!(third.status, 200);
    let r3 = fetch(third.header("x-adsafe-run-id").expect("run ID header"));
    let drift = adsafe_ledger::RunDiff::between(&r2, &r3);
    assert!(drift.has_drift(), "shadowing must flip a verdict:\n{}", drift.render());
    assert!(drift.verdict_flips.iter().any(|f| f.key == "t8r4" && f.regressed));

    // The Prometheus exposition serves the same registry.
    let prom = request(addr, "GET", "/metrics?format=prometheus", "");
    assert_eq!(prom.status, 200);
    assert!(prom
        .header("content-type")
        .is_some_and(|t| t.starts_with("text/plain; version=0.0.4")));
    let text = prom.body_text();
    assert!(text.contains("# TYPE adsafe_serve_assessments counter"), "{text}");
    assert_eq!(request(addr, "GET", "/metrics?format=xml", "").status, 400);

    // /healthz surfaces the facts-store gauges.
    let health = request(addr, "GET", "/healthz", "").body_text();
    assert!(health.contains("\"store_bytes\":"), "{health}");

    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn flight_recorder_serves_the_access_log_and_trace() {
    let _g = serve_lock();
    let corpus = corpus_dir("telemetry");
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    // Traffic mix: two assessments over one keep-alive connection (the
    // second row must show reuse > 0), plus a 404 and a healthz.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let wire = http::encode_request("POST", "/assess", &[], assess_body(&corpus, "").as_bytes());
    let first = round_trip(&mut stream, &wire);
    let second = round_trip(&mut stream, &wire);
    assert_eq!((first.status, second.status), (200, 200));
    let run_id = second.header("x-adsafe-run-id").expect("run ID header").to_string();
    drop(stream);
    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);

    // /requests: JSONL, every row parses, schema fields present.
    let log = request(addr, "GET", "/requests", "");
    assert_eq!(log.status, 200);
    assert_eq!(log.header("content-type"), Some("application/x-ndjson"));
    let rows: Vec<adsafe::trace::json::Json> = log
        .body_text()
        .lines()
        .map(|l| adsafe::trace::json::Json::parse(l).expect("every access-log row parses"))
        .collect();
    assert!(rows.len() >= 4, "assess x2 + 404 + healthz: {} rows", rows.len());
    let field = |row: &adsafe::trace::json::Json, k: &str| {
        row.get(k).and_then(|v| v.as_f64()).unwrap_or_else(|| panic!("row field {k}"))
    };
    let mut prev_seq = 0.0;
    for row in &rows {
        let seq = field(row, "seq");
        assert!(seq > prev_seq, "seq strictly increases oldest-first");
        prev_seq = seq;
        assert!(field(row, "total_us") >= 0.0);
        row.get("endpoint").and_then(|v| v.as_str()).expect("endpoint field");
    }
    // The keep-alive assess row carries its reuse index and run ID —
    // and that run ID resolves in the ledger (`adsafe history` parity).
    let reused = rows
        .iter()
        .find(|r| {
            r.get("run").and_then(|v| v.as_str()) == Some(run_id.as_str())
                && field(r, "reuse") > 0.0
        })
        .expect("second keep-alive assess row records reuse > 0");
    assert_eq!(field(reused, "status") as u16, 200);
    let resolved = request(addr, "GET", &format!("/runs/{run_id}"), "");
    assert_eq!(resolved.status, 200, "/requests run IDs resolve in the run ledger");
    // Assess rows break the pipeline phases out; parse/render among them.
    let phases: Vec<String> = reused
        .get("phases")
        .and_then(|p| p.as_arr())
        .expect("phases array")
        .iter()
        .filter_map(|p| p.get("name").and_then(|n| n.as_str()).map(str::to_string))
        .collect();
    for want in ["parse", "render", "write"] {
        assert!(phases.iter().any(|p| p == want), "phase {want} in {phases:?}");
    }

    // Filters: by status, by endpoint, last-N; bad values answer 400.
    let only_404 = request(addr, "GET", "/requests?status=404", "");
    assert!(!only_404.body_text().is_empty());
    for line in only_404.body_text().lines() {
        let row = adsafe::trace::json::Json::parse(line).unwrap();
        assert_eq!(field(&row, "status") as u16, 404, "{line}");
    }
    let only_assess = request(addr, "GET", "/requests?endpoint=assess", "");
    assert!(only_assess.body_text().lines().count() >= 2);
    let last_one = request(addr, "GET", "/requests?last=1", "");
    assert_eq!(last_one.body_text().lines().count(), 1);
    assert_eq!(request(addr, "GET", "/requests?status=banana", "").status, 400);
    assert_eq!(request(addr, "GET", "/requests?last=x", "").status, 400);

    // /trace/recent: the same ring as Chrome trace-event JSON, valid
    // per the validator the CLI's --trace-out path uses.
    let trace = request(addr, "GET", "/trace/recent", "");
    assert_eq!(trace.status, 200);
    adsafe::trace::chrome::validate(&trace.body_text()).expect("Chrome trace validates");
    assert!(trace.body_text().contains("\"POST /assess\""), "parent events name the request");

    // Per-endpoint SLO histograms: labeled series in both formats.
    let metrics = request(addr, "GET", "/metrics", "").body_text();
    let slo = metrics
        .lines()
        .find(|l| l.starts_with("hist serve.latency{endpoint=\"assess\",status=\"200\"} count "))
        .expect("labeled assess latency histogram");
    assert!(slo.contains(" p999 "), "text format reports p999: {slo}");
    assert!(
        metrics.lines().any(|l| l.starts_with("hist pool.queue_wait count ")
            && !l.starts_with("hist pool.queue_wait count 0 ")),
        "queue-wait histogram is populated: {metrics}"
    );
    let prom = request(addr, "GET", "/metrics?format=prometheus", "").body_text();
    assert!(
        prom.contains("adsafe_serve_latency_bucket{endpoint=\"assess\",status=\"200\",le="),
        "{prom}"
    );
    assert!(prom.contains("adsafe_serve_status{code=\"200\"}"), "{prom}");

    // /healthz reports the ring's fill level.
    let health = request(addr, "GET", "/healthz", "").body_text();
    assert!(health.contains("\"recorder_len\":"), "{health}");
    assert!(health.contains("\"recorder_cap\":256"), "{health}");

    // Wrong methods on the telemetry endpoints are 405, not 404.
    assert_eq!(request(addr, "POST", "/requests", "").status, 405);
    assert_eq!(request(addr, "POST", "/trace/recent", "").status, 405);

    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

// ---------------------------------------------------------------------
// HTTP codec properties: the parser must accept everything the encoder
// produces and never panic on anything else.

fn parse_bytes(bytes: &[u8]) -> Result<http::Request, http::ReadError> {
    http::read_request(&mut BufReader::new(bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → parse is the identity on method, path, headers, body.
    #[test]
    fn request_round_trips_through_the_codec(
        use_post in 0u8..2,
        path_tail in "[a-z0-9/]{0,20}",
        name_tail in "[a-z0-9-]{0,10}",
        value in "[!-~]{0,30}",
        body in proptest::collection::vec(0u8..255, 0..200),
    ) {
        let method = if use_post == 1 { "POST" } else { "GET" };
        let path = format!("/{path_tail}");
        let name = format!("x{name_tail}");
        let wire = http::encode_request(method, &path, &[(&name, &value)], &body);
        let req = parse_bytes(&wire).expect("own encoding must parse");
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.header(&name), Some(value.as_str()));
        prop_assert_eq!(req.body, body);
    }

    /// obs-fold continuation lines join into one space-separated value.
    #[test]
    fn folded_headers_parse_to_the_joined_value(
        parts in proptest::collection::vec("[!-~]{1,12}", 1..5),
    ) {
        let mut wire = b"GET /metrics HTTP/1.1\r\nX-Folded: ".to_vec();
        wire.extend_from_slice(parts[0].as_bytes());
        for p in &parts[1..] {
            wire.extend_from_slice(b"\r\n ");
            wire.extend_from_slice(p.as_bytes());
        }
        wire.extend_from_slice(b"\r\n\r\n");
        let req = parse_bytes(&wire).expect("folded header must parse");
        let joined = parts.join(" ");
        prop_assert_eq!(req.header("x-folded"), Some(joined.as_str()));
    }

    /// Any chunking of a body decodes back to the same bytes.
    #[test]
    fn chunked_bodies_decode_to_the_original(
        body in proptest::collection::vec(0u8..255, 0..300),
        chunk in 1usize..17,
    ) {
        let mut wire = b"POST /assess HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        for piece in body.chunks(chunk) {
            wire.extend_from_slice(format!("{:x}\r\n", piece.len()).as_bytes());
            wire.extend_from_slice(piece);
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let req = parse_bytes(&wire).expect("chunked body must parse");
        prop_assert_eq!(req.body, body);
    }

    /// Oversized declared bodies answer 413, not memory exhaustion.
    #[test]
    fn oversized_bodies_are_rejected_with_413(extra in 1u64..1_000_000) {
        let wire = format!(
            "POST /assess HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            http::MAX_BODY_BYTES as u64 + extra
        );
        match parse_bytes(wire.as_bytes()) {
            Err(http::ReadError::Parse(e)) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "expected 413, got {:?}", other),
        }
    }

    /// The parser is total: arbitrary bytes produce a result, never a
    /// panic (malformed input maps to 400/413 or a clean close).
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        raw in proptest::collection::vec(0u8..255, 0..400),
    ) {
        let _ = parse_bytes(&raw);
    }

    /// ... including byte soup spliced after a valid-looking prefix,
    /// which exercises the header/body framing paths harder.
    #[test]
    fn parser_never_panics_after_a_valid_prefix(
        tail in proptest::collection::vec(0u8..255, 0..200),
    ) {
        let mut wire = b"POST /assess HTTP/1.1\r\n".to_vec();
        wire.extend_from_slice(&tail);
        let _ = parse_bytes(&wire);
    }

    /// Keep-alive framing: any sequence of encoded requests parses
    /// back request-by-request from one byte stream, each with the
    /// right body — the property a persistent connection rests on.
    #[test]
    fn pipelined_requests_parse_back_to_back(
        bodies in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 0..120),
            1..6,
        ),
    ) {
        let mut wire = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            wire.extend_from_slice(&http::encode_request(
                "POST",
                &format!("/assess/{i}"),
                &[],
                body,
            ));
        }
        let mut reader = BufReader::new(&wire[..]);
        for (i, body) in bodies.iter().enumerate() {
            let req = http::read_request(&mut reader)
                .unwrap_or_else(|e| panic!("request {i} must parse: {e:?}"));
            prop_assert_eq!(req.path, format!("/assess/{i}"));
            prop_assert_eq!(&req.body, body);
            prop_assert!(req.wants_keep_alive());
        }
        prop_assert!(
            matches!(http::read_request(&mut reader), Err(http::ReadError::Closed)),
            "after the last pipelined request the stream ends cleanly"
        );
    }

    /// Totality across request boundaries: however many valid requests
    /// precede the soup, parsing them then hitting the soup never
    /// panics — the parse error stays contained to the soup request.
    #[test]
    fn parser_never_panics_on_soup_between_pipelined_requests(
        valid in 0usize..4,
        soup in proptest::collection::vec(0u8..255, 1..160),
    ) {
        let mut wire = Vec::new();
        for _ in 0..valid {
            wire.extend_from_slice(&http::encode_request("GET", "/healthz", &[], b""));
        }
        wire.extend_from_slice(&soup);
        let mut reader = BufReader::new(&wire[..]);
        for i in 0..valid {
            let req = http::read_request(&mut reader)
                .unwrap_or_else(|e| panic!("request {i} before the soup must parse: {e:?}"));
            prop_assert_eq!(req.path, "/healthz");
        }
        // The soup itself: any outcome but a panic.
        let _ = http::read_request(&mut reader);
    }
}
