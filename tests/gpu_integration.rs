//! Integration of the GPU substrate: emulator vs native kernels, device
//! memory semantics, the YOLO pipeline across backends, and the
//! perf-model invariants the Figure 7/8 claims rest on.

use adsafe::gpu::{
    kernels, launch, launch_phased, synthetic_frame, Backend, DeviceContext, Dim3, GemmTuner,
    Phase, TuneMode, YoloNet,
};
use adsafe::perfmodel::{self, GemmShape, Library};

#[test]
fn emulated_gemm_matches_native() {
    // A straightforward CUDA-style GEMM on the emulator must equal the
    // native kernel.
    let (m, n, k) = (9usize, 7usize, 5usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 4) as f32 - 1.5).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 3) as f32).collect();
    let mut c_native = vec![0.0f32; m * n];
    kernels::gemm_naive(m, n, k, &a, &b, &mut c_native);

    let mut c_emu = vec![0.0f32; m * n];
    launch(Dim3::xy(n as u32, m as u32), 1u32, |ctx| {
        let col = ctx.block_idx.x as usize;
        let row = ctx.block_idx.y as usize;
        let mut acc = 0.0f32;
        for p in 0..k {
            acc += a[row * k + p] * b[p * n + col];
        }
        c_emu[row * n + col] = acc;
    });
    assert_eq!(c_native, c_emu);
}

#[test]
fn phased_tiled_gemm_matches_native() {
    // Shared-memory tiling via the phased launcher (the __syncthreads
    // pattern) must agree with the native tiled GEMM.
    const T: usize = 4;
    let (m, n, k) = (8usize, 8usize, 8usize);
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 5) % 7) as f32).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i * 3) % 5) as f32).collect();
    let mut expected = vec![0.0f32; m * n];
    kernels::gemm_tiled(m, n, k, &a, &b, &mut expected, T);

    let mut c = vec![0.0f32; m * n];
    struct Shared {
        a_tile: [f32; T * T],
        b_tile: [f32; T * T],
        acc: [f32; T * T],
    }
    launch_phased(
        Dim3::xy((n / T) as u32, (m / T) as u32),
        Dim3::xy(T as u32, T as u32),
        || Shared { a_tile: [0.0; T * T], b_tile: [0.0; T * T], acc: [0.0; T * T] },
        |ctx, s: &mut Shared, phase| {
            let tx = ctx.thread_idx.x as usize;
            let ty = ctx.thread_idx.y as usize;
            let row = ctx.block_idx.y as usize * T + ty;
            let col = ctx.block_idx.x as usize * T + tx;
            let tiles = k / T;
            // Phases alternate load (even) / accumulate (odd); after the
            // last accumulate phase, write out.
            let step = phase / 2;
            if step < tiles {
                if phase % 2 == 0 {
                    s.a_tile[ty * T + tx] = a[row * k + step * T + tx];
                    s.b_tile[ty * T + tx] = b[(step * T + ty) * n + col];
                } else {
                    for p in 0..T {
                        s.acc[ty * T + tx] += s.a_tile[ty * T + p] * s.b_tile[p * T + tx];
                    }
                }
                Phase::Continue
            } else {
                c[row * n + col] = s.acc[ty * T + tx];
                Phase::Done
            }
        },
    );
    for (i, (x, y)) in expected.iter().zip(&c).enumerate() {
        assert!((x - y).abs() < 1e-4, "mismatch at {i}: {x} vs {y}");
    }
}

#[test]
fn device_memory_figure4_pattern_observable() {
    // The paper's Figure 4 pattern (alloc, copy in, launch, copy out)
    // leaves an observable allocation/transfer trail.
    let dev = DeviceContext::new();
    let host: Vec<f32> = (0..64).map(|i| i as f32).collect();
    {
        let mut d = dev.alloc_from(&host);
        let biases = dev.alloc_from(&[2.0f32; 4]);
        launch(4u32, 16u32, |ctx| {
            let i = ctx.global_x();
            d.as_mut_slice()[i] *= biases.as_slice()[i / 16];
        });
        let mut out = vec![0.0f32; 64];
        d.copy_to_host(&mut out);
        assert_eq!(out[10], 20.0);
    }
    let s = dev.stats();
    assert_eq!(s.allocs, 2);
    assert_eq!(s.frees, 2);
    assert_eq!(s.h2d_transfers, 2);
    assert_eq!(s.d2h_transfers, 1);
    assert_eq!(s.live_bytes, 0);
}

#[test]
fn yolo_backends_agree_and_detect() {
    let net = YoloNet::tiny(3, 64, 3, 5, 11);
    let img = synthetic_frame(3, 64, 32, 32, 3);
    let d_naive = net.detect(&img, Backend::Naive, -1e9);
    let d_tiled = net.detect(&img, Backend::Tiled, -1e9);
    let d_tuned = net.detect(&img, Backend::Autotuned, -1e9);
    assert!(!d_naive.is_empty());
    assert_eq!(d_naive.len(), d_tiled.len());
    assert_eq!(d_naive.len(), d_tuned.len());
    assert_eq!(d_naive[0].x, d_tiled[0].x);
    assert_eq!(d_naive[0].y, d_tuned[0].y);
}

#[test]
fn tuner_prefers_larger_tiles_for_larger_problems() {
    let mut t = GemmTuner::new(TuneMode::CostModel);
    let small = t.tile_for(16, 16, 16);
    let large = t.tile_for(1024, 1024, 1024);
    assert!(large >= small);
}

#[test]
fn perf_model_crossover_structure() {
    // Figure 7/8 structure: GPU >> CPU; open ≈ closed on GPU; the
    // ISAAC advantage concentrates on irregular shapes.
    let regular = GemmShape { m: 256, n: 4096, k: 1152 };
    let irregular = GemmShape { m: 16, n: 60_000, k: 64 };
    let cpu_gpu = Library::OpenBlas.gemm_time_s(&regular) / Library::CuBlas.gemm_time_s(&regular);
    assert!(cpu_gpu > 20.0, "CPU/GPU = {cpu_gpu}");
    let open_closed =
        Library::Cutlass.gemm_time_s(&regular) / Library::CuBlas.gemm_time_s(&regular);
    assert!((0.8..1.4).contains(&open_closed), "open/closed = {open_closed}");
    let isaac_reg = Library::CuDnn.conv_time_s(&regular, false)
        / Library::Isaac.conv_time_s(&regular, false);
    let isaac_irr = Library::CuDnn.conv_time_s(&irregular, true)
        / Library::Isaac.conv_time_s(&irregular, true);
    assert!(
        isaac_irr > isaac_reg,
        "input-aware tuning must pay off more on irregular shapes: {isaac_irr} vs {isaac_reg}"
    );
}

#[test]
fn measured_tiled_beats_naive_on_large_gemm() {
    // The real-kernel counterpart of Figure 8a's story: blocking wins.
    let s = 192usize;
    let a: Vec<f32> = (0..s * s).map(|i| (i % 13) as f32).collect();
    let b: Vec<f32> = (0..s * s).map(|i| (i % 7) as f32).collect();
    let mut c = vec![0.0f32; s * s];
    let t_naive = {
        let start = std::time::Instant::now();
        kernels::gemm_naive(s, s, s, &a, &b, &mut c);
        start.elapsed()
    };
    let t_tiled = {
        let start = std::time::Instant::now();
        kernels::gemm_tiled(s, s, s, &a, &b, &mut c, 32);
        start.elapsed()
    };
    // Debug builds are noisy; only require that tiling is not a big loss.
    assert!(
        t_tiled.as_secs_f64() < t_naive.as_secs_f64() * 2.0,
        "tiled {t_tiled:?} vs naive {t_naive:?}"
    );
    let _ = perfmodel::gemm_sweep();
}

#[test]
fn brook_api_is_clean() {
    // The paper's research direction (Brook Auto): a kernel dialect with
    // no pointers and no dynamic memory. The same scale_bias computation
    // written against a Brook-style C API produces zero findings from
    // the pointer/dynamic-memory/CUDA rules — contrast with the Figure 4
    // CUDA excerpt, which produces many.
    const BROOK_STYLE: &str = "\
typedef int Stream;\n\
float stream_get(Stream s, int i);\n\
void stream_set(Stream s, int i, float v);\n\
void scale_bias_brook(Stream output, Stream biases, int batch, int n,\n\
                      int size) {\n\
  for (int b = 0; b < batch; b++) {\n\
    for (int f = 0; f < n; f++) {\n\
      for (int o = 0; o < size; o++) {\n\
        int i = (b * n + f) * size + o;\n\
        stream_set(output, i, stream_get(output, i) * stream_get(biases, f));\n\
      }\n\
    }\n\
  }\n\
}\n";
    use adsafe::checkers::{AnalysisSet, Check};
    let mut set = AnalysisSet::new();
    set.add("perception", "scale_bias_brook.c", BROOK_STYLE);
    let cx = set.context();
    let risky: Vec<Box<dyn Check>> = vec![
        Box::new(adsafe::checkers::misra::DynamicMemoryCheck),
        Box::new(adsafe::checkers::cuda_rules::KernelPointerCheck),
        Box::new(adsafe::checkers::cuda_rules::DeviceAllocBalanceCheck),
        Box::new(adsafe::checkers::cuda_rules::LaunchErrorCheck),
        Box::new(adsafe::checkers::defensive::PointerParamCheck),
    ];
    let findings = adsafe::checkers::run_checks(&risky, &cx);
    assert!(findings.is_empty(), "Brook-style code must be clean: {findings:?}");

    // The CUDA excerpt, through the same rules, is not.
    let mut cuda_set = AnalysisSet::new();
    cuda_set.add("perception", "scale_bias.cu", adsafe::corpus::yolo::SCALE_BIAS_CU);
    let cuda_cx = cuda_set.context();
    let cuda_findings = adsafe::checkers::run_checks(&risky, &cuda_cx);
    assert!(cuda_findings.len() >= 4, "CUDA contrast: {}", cuda_findings.len());

    // And the Rust-native Brook stream agrees with the raw kernel.
    let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
    let out = adsafe::gpu::brook::scale_bias_brook(
        &adsafe::gpu::Stream::from_slice(&data),
        &adsafe::gpu::Stream::from_slice(&[2.0, 3.0, 4.0]),
        2,
        3,
    );
    let mut expected = data.clone();
    adsafe::gpu::kernels::scale_bias(&mut expected, &[2.0, 3.0, 4.0], 2, 3, 4);
    assert_eq!(out.to_vec(), expected);
}

#[test]
fn kernel_missing_barrier_faults_within_budget() {
    // A reduction kernel in which thread 0 waits for data that thread 1
    // never publishes: thread 1 keeps spinning at the barrier, so on
    // hardware the block would hang. The budgeted launcher must turn
    // that hang into a fault, within the configured phase budget.
    use adsafe::gpu::{launch_phased_budgeted, LaunchFault};

    let budget = 64u64;
    let fault = launch_phased_budgeted(
        1u32,
        4u32,
        budget,
        || vec![0.0f32; 4],
        |ctx, shared: &mut Vec<f32>, phase| {
            let tid = ctx.thread_rank();
            if tid == 1 {
                // Never converges: always asks for one more phase.
                Phase::Continue
            } else {
                shared[tid] = phase as f32;
                if phase >= 1 { Phase::Done } else { Phase::Continue }
            }
        },
    )
    .expect_err("kernel with a spinning thread must fault, not hang");
    match fault {
        // Threads 0,2,3 exit at phase 1 while thread 1 continues: the
        // emulator reports the barrier divergence at that phase — well
        // inside the budget.
        LaunchFault::BarrierDivergence { phase, continuing, exited, .. } => {
            assert!(phase < budget);
            assert_eq!(continuing, 1);
            assert_eq!(exited, 3);
        }
        LaunchFault::BarrierDeadlock { budget: b, .. } => assert_eq!(b, budget),
    }
}

#[test]
fn uniform_spin_reports_deadlock_at_budget() {
    use adsafe::gpu::{launch_phased_budgeted, LaunchFault};
    let fault = launch_phased_budgeted(2u32, 8u32, 32, || 0u32, |_, _, _| Phase::Continue)
        .expect_err("uniformly spinning block must be declared deadlocked");
    assert!(matches!(fault, LaunchFault::BarrierDeadlock { budget: 32, .. }));
}
