//! End-to-end integration of the query-rule subsystem: native/query
//! parity on both evaluation paths (live AST and cached facts),
//! byte-identical reports across worker counts and cache states with
//! packs active, pack-fault containment, and parser robustness
//! properties.

use adsafe::checkers::{default_checks, AnalysisSet, Check, CheckScope};
use adsafe::corpus::{generate, ApolloSpec};
use adsafe::rulequery::ast::{CmpOp, Expr};
use adsafe::rulequery::{
    parse_pack, pretty_pack, QueryRule, RuleDecl, RulePack, Selector, SeverityKw,
};
use adsafe::{render, Assessment, AssessmentOptions};
use proptest::prelude::*;
use std::sync::Arc;

/// A file that makes the nesting-depth and param-count rules fire —
/// the generated corpus exercises the other three parity rules.
fn stress_source() -> String {
    let mut s = String::from(
        "int deep(int a, int b, int c, int d, int e, int f, int g) {\n\
         \x20 if (a) { if (b) { if (c) { if (d) { if (e) { if (f) { g = 1; } } } } } }\n\
         \x20 return g;\n}\n\
         int big(int x) {\n",
    );
    for i in 0..105 {
        s.push_str(&format!("  x = x + {i};\n"));
    }
    s.push_str("  return x;\n}\n");
    s
}

fn corpus_sources() -> Vec<(String, String, String)> {
    let mut out: Vec<(String, String, String)> = generate(&ApolloSpec::test_scale())
        .into_iter()
        .map(|f| (f.module, f.path, f.text))
        .collect();
    out.push(("stress".into(), "stress/stress.cc".into(), stress_source()));
    out
}

fn corpus_set() -> AnalysisSet {
    let mut set = AnalysisSet::new();
    for (module, path, text) in corpus_sources() {
        set.add(&module, &path, &text);
    }
    set
}

/// The five bundled parity rules produce byte-identical diagnostics to
/// their native twins on the live-AST path (`adsafe rules check`), and
/// each actually fires on the test corpus — zero-finding parity would
/// prove nothing.
#[test]
fn builtin_pack_matches_native_checkers_byte_for_byte() {
    let set = corpus_set();
    let cx = set.context();
    let pack = RulePack::builtin();
    assert!(pack.faults.is_empty(), "bundled pack must load clean: {:?}", pack.faults);
    assert_eq!(pack.rules.len(), 5);
    let natives = default_checks();
    for rule in &pack.rules {
        let native = natives
            .iter()
            .find(|c| c.id() == rule.id)
            .expect("every parity rule shadows a native checker");
        assert_eq!(native.scope(), rule.scope, "{}", rule.id);
        assert_eq!(native.iso_refs(), rule.iso, "{}", rule.id);
        assert_eq!(native.description(), rule.desc, "{}", rule.id);
        let native_diags = native.run(&cx);
        let query_diags = QueryRule(rule.clone()).run(&cx);
        assert!(!native_diags.is_empty(), "{} never fired — weak corpus", rule.id);
        let rendered = |ds: &[adsafe::checkers::Diagnostic]| -> Vec<String> {
            ds.iter()
                .map(|d| format!("{} | fn={:?}", d.render(&set.sm), d.function))
                .collect()
        };
        assert_eq!(rendered(&native_diags), rendered(&query_diags), "{}", rule.id);
    }
}

/// A pack of `q-` prefixed clones of the parity rules, loaded the way
/// the CLI loads user packs (native ids reserved).
const MIRROR_PACK: &str = r#"
rule "q-multi-exit" {
  iso t8r1
  function where multi_exit
  -> warn "function `{name}` has {returns} return statements / early exits"
}
rule "q-recursion" {
  iso t8r10
  function where recursive
  -> violation "function `{name}` participates in recursion"
}
rule "q-function-length" {
  iso t3r2
  function where nloc > 100
  -> warn "function `{name}` is {nloc} lines (limit 100)"
}
rule "q-nesting-depth" {
  iso t1r1
  function where nesting > 5
  -> warn "function `{name}` nests {nesting} levels deep (limit 5)"
}
rule "q-param-count" {
  iso t3r3
  function where params > 6
  -> info "function `{name}` takes {params} parameters (limit 6)"
}
"#;

fn mirror_pack() -> RulePack {
    let native = adsafe::query::native_rule_ids();
    let pack = RulePack::from_sources(&[("mirror.aq".into(), MIRROR_PACK.into())], &native);
    assert!(pack.faults.is_empty(), "{:?}", pack.faults);
    assert_eq!(pack.rules.len(), 5);
    pack
}

fn run_report(
    jobs: usize,
    rules: Option<Arc<RulePack>>,
    cache_dir: Option<std::path::PathBuf>,
) -> adsafe::AssessmentReport {
    let mut a = Assessment::new().with_options(AssessmentOptions {
        jobs,
        rules,
        cache_dir,
        ..AssessmentOptions::default()
    });
    for (module, path, text) in corpus_sources() {
        a.add_file(&module, &path, &text);
    }
    a.run()
}

/// The pipeline's facts path (what `adsafe assess --rules` runs) emits
/// the same findings for a query rule as the native checker it mirrors
/// — same spans, severities, messages, and function attribution.
#[test]
fn pipeline_query_rules_mirror_native_findings() {
    let report = run_report(2, Some(Arc::new(mirror_pack())), None);
    let pairs = [
        ("misra-15.5-multi-exit", "q-multi-exit"),
        ("misra-17.2-recursion", "q-recursion"),
        ("structure-function-length", "q-function-length"),
        ("structure-nesting-depth", "q-nesting-depth"),
        ("structure-param-count", "q-param-count"),
    ];
    for (native_id, query_id) in pairs {
        let key = |d: &adsafe::checkers::Diagnostic| {
            format!("{} {:?} {} {:?}", d.severity, d.span, d.message, d.function)
        };
        let mut native: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.check_id == native_id)
            .map(key)
            .collect();
        let mut query: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.check_id == query_id)
            .map(key)
            .collect();
        native.sort();
        query.sort();
        assert!(!native.is_empty(), "{native_id} never fired");
        assert_eq!(native, query, "{native_id} vs {query_id}");
    }
}

/// With a pack active, the deterministic report is byte-identical
/// across worker counts and across cold/warm cache states.
#[test]
fn query_reports_are_deterministic_across_jobs_and_cache() {
    let pack = Arc::new(mirror_pack());
    let serial = run_report(1, Some(Arc::clone(&pack)), None);
    let parallel = run_report(4, Some(Arc::clone(&pack)), None);
    assert_eq!(
        render::deterministic_report_markdown(&serial),
        render::deterministic_report_markdown(&parallel),
        "worker count leaked into the report"
    );

    let dir = std::env::temp_dir().join(format!("adsafe-query-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cold = run_report(4, Some(Arc::clone(&pack)), Some(dir.clone()));
    let warm = run_report(2, Some(Arc::clone(&pack)), Some(dir.clone()));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        render::deterministic_report_markdown(&cold),
        render::deterministic_report_markdown(&warm),
        "cache state leaked into the report"
    );
    assert_eq!(
        render::deterministic_report_markdown(&serial),
        render::deterministic_report_markdown(&cold),
        "cache-backed run diverged from the in-memory run"
    );
}

/// Query rules are report-side only: enabling a pack must not change
/// the compliance verdicts (the paper's evidence stays native).
#[test]
fn query_rules_never_move_compliance_verdicts() {
    let without = run_report(2, None, None);
    let with = run_report(2, Some(Arc::new(mirror_pack())), None);
    assert_eq!(
        without.compliance.blocking_count(),
        with.compliance.blocking_count()
    );
    assert_eq!(
        render::table1(&without).to_ascii(),
        render::table1(&with).to_ascii()
    );
}

/// An empty or comment-only pack is a clean no-rules result, not an
/// error.
#[test]
fn empty_and_comment_only_packs_load_clean() {
    for src in ["", "\n\n", "# nothing but commentary\n# and more\n"] {
        let pack = RulePack::from_sources(&[("empty.aq".into(), src.into())], &[]);
        assert!(pack.rules.is_empty(), "{src:?}");
        assert!(pack.faults.is_empty(), "{src:?}");
    }
}

/// A malformed declaration is skipped with a fault naming file and
/// line; the surviving rules still run and the report is NOT degraded.
#[test]
fn malformed_pack_degrades_to_surviving_rules() {
    let src = "\
rule \"q-good\" { function where multi_exit -> warn \"multi-exit `{name}`\" }\n\
rule \"q-broken\" { function where nosuchfield > 3 -> warn }\n\
rule \"q-also-good\" { function where params > 6 -> info \"params {params}\" }\n";
    let pack = RulePack::from_sources(&[("team.aq".into(), src.into())], &[]);
    let ids: Vec<&str> = pack.rules.iter().map(|r| r.id).collect();
    assert_eq!(ids, ["q-good", "q-also-good"]);
    assert_eq!(pack.faults.len(), 1);
    assert_eq!(pack.faults[0].file, "team.aq");
    assert_eq!(pack.faults[0].line, 2);

    let fault = adsafe::query::pack_fault(&pack.faults[0]);
    let mut a = Assessment::new().with_options(AssessmentOptions {
        rules: Some(Arc::new(pack)),
        ..AssessmentOptions::default()
    });
    a.add_fault(fault);
    for (module, path, text) in corpus_sources() {
        a.add_file(&module, &path, &text);
    }
    let report = a.run();
    assert!(!report.degraded, "an invalid pack must not degrade the run");
    assert!(report.diagnostics.iter().any(|d| d.check_id == "q-good"));
    assert!(report.faults.iter().any(|f| f.to_string().contains("rule pack invalid at line 2")));
}

/// Duplicate ids and collisions with native rule ids are skipped with
/// distinct fault messages.
#[test]
fn duplicate_and_native_colliding_ids_are_skipped() {
    let src = "\
rule \"misra-15.5-multi-exit\" { function where multi_exit -> warn }\n\
rule \"q-dup\" { function where is_gpu -> info }\n\
rule \"q-dup\" { function where is_kernel -> info }\n";
    let pack =
        RulePack::from_sources(&[("p.aq".into(), src.into())], &adsafe::query::native_rule_ids());
    assert_eq!(pack.rules.len(), 1);
    assert_eq!(pack.rules[0].id, "q-dup");
    assert_eq!(pack.faults.len(), 2);
    assert!(pack.faults[0].detail.contains("collides with a native rule"));
    assert!(pack.faults[1].detail.contains("duplicate rule id"));
}

/// Program-scope query rules (anything touching `recursive`) are
/// evaluated whole-program, exactly like the native recursion checker.
#[test]
fn recursive_predicate_lowers_to_program_scope() {
    let pack = mirror_pack();
    let by_id: Vec<(&str, CheckScope)> = pack.rules.iter().map(|r| (r.id, r.scope)).collect();
    for (id, scope) in by_id {
        let expected =
            if id == "q-recursion" { CheckScope::Program } else { CheckScope::File };
        assert_eq!(scope, expected, "{id}");
    }
}

// ---------------------------------------------------------------------
// Parser robustness properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The pack parser is total on arbitrary printable bytes: it never
    /// panics, and every error carries a plausible 1-based line.
    #[test]
    fn query_parser_is_total_on_byte_soup(src in "[ -~\n\t]{0,300}") {
        let (_, errors) = parse_pack(&src);
        let lines = src.lines().count().max(1) as u32;
        for e in errors {
            prop_assert!(e.line >= 1 && e.line <= lines, "line {} of {}", e.line, lines);
        }
    }

    /// Totality on keyword soup, which stresses the recovery sync
    /// points harder than uniform ASCII.
    #[test]
    fn query_parser_is_total_on_keyword_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("rule"), Just("{"), Just("}"), Just("->"), Just("where"),
                Just("desc"), Just("iso"), Just("function"), Just("global"),
                Just("file"), Just("in"), Just("module"), Just("and"), Just("or"),
                Just("not"), Just("=="), Just("\"x\""), Just("42"), Just("t8r1"),
                Just("warn"), Just("violation"), Just("("), Just(")"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_pack(&src);
    }
}

/// Deterministic xorshift64* generator for the round-trip property —
/// seeds come from proptest so failures shrink to a seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn gen_expr(rng: &mut Rng, sel: Selector, depth: usize) -> Expr {
    let fields = adsafe::rulequery::schema::fields(sel);
    let field = |rng: &mut Rng| fields[rng.below(fields.len())].0.to_string();
    let primary = |rng: &mut Rng| match rng.below(4) {
        0 => Expr::Int(rng.next() as i64 % 1000),
        1 => Expr::Str(format!("s{}", rng.below(10))),
        2 => Expr::Bool(rng.below(2) == 0),
        _ => Expr::Field(field(rng)),
    };
    let choice = if depth == 0 { rng.below(2) } else { rng.below(5) };
    match choice {
        0 => Expr::Field(field(rng)),
        1 => {
            const OPS: [CmpOp; 6] =
                [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
            Expr::Cmp(
                OPS[rng.below(OPS.len())],
                Box::new(primary(rng)),
                Box::new(primary(rng)),
            )
        }
        2 => Expr::Not(Box::new(gen_expr(rng, sel, depth - 1))),
        3 => Expr::And(
            Box::new(gen_expr(rng, sel, depth - 1)),
            Box::new(gen_expr(rng, sel, depth - 1)),
        ),
        _ => Expr::Or(
            Box::new(gen_expr(rng, sel, depth - 1)),
            Box::new(gen_expr(rng, sel, depth - 1)),
        ),
    }
}

fn gen_rule(rng: &mut Rng, i: usize) -> RuleDecl {
    let selector =
        [Selector::Function, Selector::Global, Selector::File][rng.below(3)];
    RuleDecl {
        id: format!("gen-rule-{i}"),
        line: 0,
        desc: (rng.below(2) == 0).then(|| format!("generated rule {i}")),
        iso: (0..rng.below(3))
            .map(|_| format!("Part6.Table{}.Row{}", 1 + rng.below(8), 1 + rng.below(10)))
            .collect(),
        selector,
        module: (rng.below(3) == 0).then(|| format!("mod{}", rng.below(4))),
        where_expr: (rng.below(4) != 0).then(|| gen_expr(rng, selector, 2)),
        severity: [SeverityKw::Info, SeverityKw::Warn, SeverityKw::Violation][rng.below(3)],
        message: (rng.below(2) == 0).then(|| format!("finding {{{}}} #{i}", "name")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → pretty → parse is the identity on generated ASTs: the
    /// pretty-printer is a faithful canonical form of the language.
    #[test]
    fn pretty_printed_packs_round_trip(seed in 0u64..u64::MAX, n in 1usize..4) {
        let mut rng = Rng(seed);
        let rules: Vec<RuleDecl> = (0..n).map(|i| gen_rule(&mut rng, i)).collect();
        let printed = pretty_pack(&rules);
        let (mut reparsed, errors) = parse_pack(&printed);
        prop_assert!(errors.is_empty(), "errors {errors:?} in:\n{printed}");
        for r in &mut reparsed {
            r.line = 0;
        }
        prop_assert_eq!(&reparsed, &rules, "round-trip drift through:\n{}", printed);
        // And the printed form is itself a fixed point.
        let again = pretty_pack(&reparsed);
        prop_assert_eq!(again, printed);
    }
}
