//! The chaos harness: `adsafe serve` under deterministic socket fault
//! injection (see `crates/chaos` and DESIGN.md §11).
//!
//! Every scenario drives real TCP traffic through a seeded
//! [`ChaosProxy`] into a real daemon and holds four invariants:
//!
//! 1. **No panic escapes** — `serve.panics` stays zero through every
//!    storm; the daemon answers normal requests afterwards.
//! 2. **Well-formed or silent** — everything a client reads back
//!    parses as a complete HTTP response; otherwise the connection
//!    ends in a clean close, never a half-written head.
//! 3. **Faults are observable** — every fault the proxy injects is
//!    counted under `chaos.*` in the same `/metrics` registry as the
//!    server-side counters it provoked.
//! 4. **Determinism survives pressure** — `POST /assess` bodies stay
//!    byte-identical to the CLI report throughout, including under
//!    facts-store eviction.
//!
//! Scenarios are replayable: each is fully described by its seed (the
//! plan maps `(seed, accept index) → fault` as a pure function), so a
//! failure message naming a seed is a complete reproduction recipe.

use adsafe_chaos::{ChaosPlan, ChaosProxy, FaultKind};
use adsafe_serve::http::{self, ReadError, Response};
use adsafe_serve::{ServeConfig, Server};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Counters and the metrics registry are process-global, so chaos
/// tests serialise like the serve integration tests do.
fn serve_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("adsafe-chaos-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small two-module corpus (same shape as the serve tests use).
fn corpus_dir(tag: &str) -> PathBuf {
    let root = temp_dir(tag);
    let files: [(&str, &str); 3] = [
        (
            "perception/track.cc",
            "int g_tracks;\n\
             int Update(int* state, int delta) {\n\
               if (delta < 0) return -1;\n\
               g_tracks = g_tracks + 1;\n\
               *state = *state + delta;\n\
               return 0;\n\
             }\n",
        ),
        (
            "control/pid.cc",
            "static int s_calls;\n\
             int Step(int err) {\n\
               s_calls = s_calls + 1;\n\
               if (err < 0) { return -err; }\n\
               return err;\n\
             }\n",
        ),
        ("control/pid.h", "int Step(int err);\n"),
    ];
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
    }
    root
}

/// The deterministic report for `corpus`, straight from the CLI — the
/// golden bytes every served 200 must reproduce.
fn cli_golden_report(corpus: &Path) -> String {
    let report_path = corpus.join("golden.md");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_adsafe"))
        .args([
            "assess",
            &corpus.display().to_string(),
            "--jobs",
            "1",
            "--no-cache",
            "--no-ledger",
            "-q",
            "--report",
            &report_path.display().to_string(),
        ])
        .output()
        .expect("running the adsafe CLI");
    assert!(out.status.code().is_some(), "CLI must exit normally");
    let full = std::fs::read_to_string(&report_path).expect("CLI report written");
    let _ = std::fs::remove_file(&report_path);
    full.split("\n## Trace summary").next().expect("deterministic prefix").to_string()
}

/// One round-trip on a fresh, un-proxied connection (for golden checks
/// and metrics reads that must not themselves be chaos-afflicted).
fn direct(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
        .write_all(&http::encode_request(method, path, &[], body.as_bytes()))
        .expect("send request");
    let mut reader = BufReader::new(stream);
    http::read_response(&mut reader).unwrap_or_else(|e| panic!("{method} {path}: {e:?}"))
}

fn metrics_counter(metrics: &str, name: &str) -> u64 {
    let prefix = format!("counter {name} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .map_or(0, |v| v.parse().expect("counter value"))
}

/// A hardened-but-fast daemon config for chaos runs: budgets tight
/// enough that hostile connections die in well under a second.
fn chaos_config() -> ServeConfig {
    ServeConfig {
        handlers: 2,
        keep_alive_max: 8,
        idle_timeout: Duration::from_millis(400),
        request_timeout: Duration::from_millis(1_500),
        min_byte_rate: 256,
        ..ServeConfig::default()
    }
}

/// Drives one proxied connection with a small request script and
/// checks invariant 2: every readable response is well-formed (and no
/// 200 ever carries corrupted report bytes); everything else is a
/// close. Returns the number of well-formed responses read.
fn drive_connection(
    proxy_addr: SocketAddr,
    scenario: &str,
    requests: &[Vec<u8>],
    golden: &str,
) -> usize {
    let Ok(mut stream) = TcpStream::connect(proxy_addr) else { return 0 };
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut well_formed = 0;
    for wire in requests {
        if stream.write_all(wire).is_err() || stream.flush().is_err() {
            // The proxy (or server) already gave up on us — fine.
            break;
        }
        match http::read_response(&mut reader) {
            Ok(resp) => {
                assert_ne!(
                    resp.status, 500,
                    "{scenario}: socket chaos must never surface as a handler panic"
                );
                if resp.status == 200 && resp.header("content-type") == Some("text/markdown; charset=utf-8") {
                    assert_eq!(
                        resp.body_text(),
                        golden,
                        "{scenario}: a 200 report must carry the exact golden bytes"
                    );
                }
                well_formed += 1;
                if resp.header("connection") == Some("close") {
                    break;
                }
            }
            // A clean close or a torn connection both end the script;
            // what must never happen is a *malformed* response, which
            // read_response reports as Parse.
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => break,
            Err(ReadError::Parse(e)) => {
                panic!("{scenario}: server wrote a malformed response: {e:?}")
            }
        }
    }
    well_formed
}

/// The client scripts a chaos connection cycles through: an
/// assessment, a health probe, and a chunked-body assessment (the
/// frame most interesting to tear).
fn scripts(corpus: &Path) -> Vec<Vec<Vec<u8>>> {
    let body = format!("{{\"dir\":\"{}\",\"jobs\":1}}", corpus.display());
    let assess = http::encode_request("POST", "/assess", &[], body.as_bytes());
    let health = http::encode_request("GET", "/healthz", &[], b"");
    let metrics = http::encode_request("GET", "/metrics", &[], b"");
    let mut chunked =
        b"POST /assess HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    for piece in body.as_bytes().chunks(7) {
        chunked.extend_from_slice(format!("{:x}\r\n", piece.len()).as_bytes());
        chunked.extend_from_slice(piece);
        chunked.extend_from_slice(b"\r\n");
    }
    chunked.extend_from_slice(b"0\r\n\r\n");
    vec![
        vec![assess.clone(), health.clone()],
        vec![health, metrics],
        vec![chunked, assess],
    ]
}

#[test]
fn twenty_seeded_storms_leave_the_daemon_sound() {
    let _g = serve_lock();
    let corpus = corpus_dir("storm");
    let golden = cli_golden_report(&corpus);
    let server = Server::start(ServeConfig { addr: "127.0.0.1:0".into(), ..chaos_config() })
        .expect("bind");
    let addr = server.addr();
    let panics_before = {
        let m = direct(addr, "GET", "/metrics", "").body_text();
        metrics_counter(&m, "serve.panics")
    };
    let chaos_before: u64 = {
        let m = direct(addr, "GET", "/metrics", "").body_text();
        metrics_counter(&m, "chaos.connections")
    };

    let scripts = scripts(&corpus);
    let mut responses = 0usize;
    for seed in 1..=20u64 {
        let proxy = ChaosProxy::start(addr, ChaosPlan::new(seed)).expect("proxy");
        for (i, script) in scripts.iter().enumerate() {
            responses += drive_connection(
                proxy.addr(),
                &format!("seed {seed}, connection {i}"),
                script,
                &golden,
            );
        }
        proxy.stop();
    }
    assert!(responses > 0, "some traffic must survive the storms");

    // Invariant 3: the injected faults are visible in /metrics, right
    // next to the server-side counters they provoked.
    let metrics = direct(addr, "GET", "/metrics", "").body_text();
    assert_eq!(
        metrics_counter(&metrics, "chaos.connections") - chaos_before,
        20 * scripts.len() as u64,
        "every proxied connection is counted"
    );
    for fault in
        ["chaos.fault.clean", "chaos.fault.abort", "chaos.fault.soup", "chaos.fault.reset"]
    {
        assert!(
            metrics_counter(&metrics, fault) > 0,
            "20 seeds x 3 connections must exercise {fault}:\n{metrics}"
        );
    }

    // Invariant 1: nothing panicked, and the daemon still serves the
    // golden bytes on a clean connection.
    assert_eq!(
        metrics_counter(&metrics, "serve.panics"),
        panics_before,
        "socket chaos must never reach a handler panic"
    );
    let after = direct(addr, "POST", "/assess", &format!("{{\"dir\":\"{}\"}}", corpus.display()));
    assert_eq!(after.status, 200);
    assert_eq!(after.body_text(), golden, "the daemon is unharmed after 20 storms");
    let health = direct(addr, "GET", "/healthz", "").body_text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn torn_chunked_frames_never_reach_the_pipeline() {
    let _g = serve_lock();
    let corpus = corpus_dir("torn-chunk");
    let golden = cli_golden_report(&corpus);
    let server = Server::start(ServeConfig { addr: "127.0.0.1:0".into(), ..chaos_config() })
        .expect("bind");
    let addr = server.addr();

    // Tear the chunked request at offsets that land mid-head, on the
    // chunk-size line, and inside chunk data.
    let chunked = &scripts(&corpus)[2][0];
    let head_len =
        b"POST /assess HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".len();
    for cut in [5, head_len - 2, head_len + 1, head_len + 4, chunked.len() - 3] {
        let proxy = ChaosProxy::start(
            addr,
            ChaosPlan::fixed(FaultKind::AbortAfter { bytes: cut }),
        )
        .expect("proxy");
        drive_connection(
            proxy.addr(),
            &format!("chunked tear at byte {cut}"),
            std::slice::from_ref(chunked),
            &golden,
        );
        proxy.stop();
    }

    // The tear surfaced as a 4xx/close, never as a served assessment
    // of a truncated body: the daemon still produces golden bytes.
    let after = direct(addr, "POST", "/assess", &format!("{{\"dir\":\"{}\"}}", corpus.display()));
    assert_eq!((after.status, after.body_text()), (200, golden));
    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn reset_storms_and_slow_drips_are_contained() {
    let _g = serve_lock();
    let corpus = corpus_dir("reset");
    let golden = cli_golden_report(&corpus);
    let server = Server::start(ServeConfig { addr: "127.0.0.1:0".into(), ..chaos_config() })
        .expect("bind");
    let addr = server.addr();
    let drops_before = {
        let m = direct(addr, "GET", "/metrics", "").body_text();
        metrics_counter(&m, "serve.slowloris_drops")
    };

    // A burst of connections that RST at various points.
    let health = http::encode_request("GET", "/healthz", &[], b"");
    for bytes in [0usize, 3, 10, 26, 200] {
        let proxy = ChaosProxy::start(addr, ChaosPlan::fixed(FaultKind::ResetAfter { bytes }))
            .expect("proxy");
        drive_connection(proxy.addr(), &format!("reset after {bytes}"), std::slice::from_ref(&health), &golden);
        proxy.stop();
    }

    // A slow-drip client dies to the byte-rate floor (2 B/s against a
    // 256 B/s minimum), not by pinning a worker forever.
    let proxy = ChaosProxy::start(
        addr,
        ChaosPlan::fixed(FaultKind::SlowDrip { delay_ms: 40 }),
    )
    .expect("proxy");
    drive_connection(proxy.addr(), "slow drip", std::slice::from_ref(&health), &golden);
    proxy.stop();
    let m = direct(addr, "GET", "/metrics", "").body_text();
    assert!(
        metrics_counter(&m, "serve.slowloris_drops") > drops_before
            || metrics_counter(&m, "serve.request_timeouts") > 0,
        "the drip must die to a read budget, not run to completion:\n{m}"
    );

    let after = direct(addr, "POST", "/assess", &format!("{{\"dir\":\"{}\"}}", corpus.display()));
    assert_eq!((after.status, after.body_text()), (200, golden));
    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn flight_recorder_stays_coherent_through_a_seeded_storm() {
    let _g = serve_lock();
    let corpus = corpus_dir("recorder-storm");
    let golden = cli_golden_report(&corpus);
    // A deliberately tiny ring so the storm overruns it many times
    // over and FIFO eviction is the common case, not the edge case.
    let cap = 8usize;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        recorder_cap: cap,
        ..chaos_config()
    })
    .expect("bind");
    let addr = server.addr();

    let scripts = scripts(&corpus);
    for seed in 100..=110u64 {
        let proxy = ChaosProxy::start(addr, ChaosPlan::new(seed)).expect("proxy");
        for (i, script) in scripts.iter().enumerate() {
            drive_connection(
                proxy.addr(),
                &format!("seed {seed}, connection {i}"),
                script,
                &golden,
            );
        }
        proxy.stop();
    }

    // Invariant: no half-written records. Every row the ring serves
    // parses as complete JSON with the full schema, even though the
    // requests behind them were torn, reset, and slow-dripped.
    let log = direct(addr, "GET", "/requests", "");
    assert_eq!(log.status, 200);
    let rows: Vec<adsafe::trace::json::Json> = log
        .body_text()
        .lines()
        .map(|l| {
            adsafe::trace::json::Json::parse(l)
                .unwrap_or_else(|e| panic!("half-written access-log row: {e}\n{l}"))
        })
        .collect();
    assert!(!rows.is_empty() && rows.len() <= cap, "ring holds at most {cap}: {}", rows.len());
    let seq = |row: &adsafe::trace::json::Json| {
        row.get("seq").and_then(|v| v.as_f64()).expect("seq field") as u64
    };
    for row in &rows {
        for k in ["run", "method", "endpoint", "status", "conn", "reuse", "total_us"] {
            assert!(row.get(k).is_some(), "row missing {k}");
        }
    }

    // FIFO eviction: rows are the *newest* records, seqs contiguous
    // oldest-first, and the arithmetic recorded − retained = evicted
    // holds against /healthz's tallies.
    for pair in rows.windows(2) {
        assert_eq!(seq(&pair[1]), seq(&pair[0]) + 1, "contiguous FIFO window");
    }
    // The newest seq seen so far, then the tallies *after* it: the
    // eviction counter must already account for everything that seq
    // implies was pushed out of an 8-slot ring.
    let last_seq = rows.last().map(seq).expect("ring is non-empty");
    let health = direct(addr, "GET", "/healthz", "").body_text();
    let field = |name: &str| -> u64 {
        health
            .split(&format!("\"{name}\":"))
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("healthz reports {name}: {health}"))
    };
    assert!(health.contains(&format!("\"recorder_cap\":{cap}")), "{health}");
    assert!(
        field("recorder_evicted") >= last_seq.saturating_sub(cap as u64),
        "evicted tally accounts for everything pushed out of the ring: \
         evicted {} against seq {last_seq}",
        field("recorder_evicted")
    );

    // The trace view of the same ring is valid Chrome trace JSON.
    let trace = direct(addr, "GET", "/trace/recent", "");
    assert_eq!(trace.status, 200);
    adsafe::trace::chrome::validate(&trace.body_text())
        .expect("post-storm /trace/recent passes the Chrome validator");

    // And the daemon is unharmed: golden bytes on a clean connection.
    let after = direct(addr, "POST", "/assess", &format!("{{\"dir\":\"{}\"}}", corpus.display()));
    assert_eq!((after.status, after.body_text()), (200, golden));
    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn store_eviction_under_memory_pressure_never_changes_report_bytes() {
    let _g = serve_lock();
    let corpus = corpus_dir("pressure");
    let cache_dir = temp_dir("pressure-cache");
    // A budget far below what the corpus's facts occupy resident, so
    // every round evicts; large enough to hold any single entry.
    let budget: u64 = 2048;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        store_budget: budget,
        cache_dir: Some(cache_dir.clone()),
        ..chaos_config()
    })
    .expect("bind");
    let addr = server.addr();
    let evictions_before = {
        let m = direct(addr, "GET", "/metrics", "").body_text();
        metrics_counter(&m, "store.evictions")
    };

    let body = format!("{{\"dir\":\"{}\",\"jobs\":1}}", corpus.display());
    for round in 0..4 {
        // Mutate one file each round: fresh content hashes keep new
        // entries flowing into the budgeted store.
        std::fs::write(
            corpus.join("perception/track.cc"),
            format!(
                "int g_tracks;\n\
                 int Update(int* state, int delta) {{\n\
                   if (delta < {round}) return -1;\n\
                   g_tracks = g_tracks + 1;\n\
                   *state = *state + delta;\n\
                   return 0;\n\
                 }}\n"
            ),
        )
        .unwrap();
        let golden = cli_golden_report(&corpus);
        let first = direct(addr, "POST", "/assess", &body);
        let second = direct(addr, "POST", "/assess", &body);
        assert_eq!(first.status, 200, "round {round}");
        assert_eq!(
            first.body_text(),
            golden,
            "round {round}: served report must match the CLI under eviction pressure"
        );
        assert_eq!(
            second.body_text(),
            golden,
            "round {round}: repeat request stays byte-identical whatever got evicted"
        );
    }

    let metrics = direct(addr, "GET", "/metrics", "").body_text();
    let evictions = metrics_counter(&metrics, "store.evictions") - evictions_before;
    assert!(evictions > 0, "the budget must have forced evictions:\n{metrics}");
    assert!(metrics_counter(&metrics, "store.evicted_bytes") > 0);

    // /healthz surfaces the pressure: bytes within budget, the budget
    // itself, and the eviction tally.
    let health = direct(addr, "GET", "/healthz", "").body_text();
    assert!(health.contains(&format!("\"store_budget\":{budget}")), "{health}");
    let store_bytes: u64 = health
        .split("\"store_bytes\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .expect("healthz reports store_bytes");
    let store_entries: u64 = health
        .split("\"store_entries\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .expect("healthz reports store_entries");
    assert!(
        store_bytes <= budget || store_entries == 1,
        "the store respects its budget (or holds one oversized entry): \
         {store_bytes} bytes in {store_entries} entries against {budget}\n{health}"
    );
    assert!(health.contains("\"store_evictions\":"), "{health}");
    assert!(
        health.contains("facts store evicted"),
        "the eviction fault surfaces on the daemon's health, not in reports: {health}"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&corpus);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
