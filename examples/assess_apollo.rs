//! The paper's headline experiment: generate the Apollo-scale corpus,
//! run the full ISO 26262 Part-6 assessment at ASIL-D, and print
//! Tables 1–3, Figure 3, and the fourteen observations.
//!
//! Run with: `cargo run --release --example assess_apollo [scale]`
//! where `scale` ∈ (0, 1] scales the corpus (default 0.25; 1.0 is the
//! full ≈220k-LOC corpus and takes a few minutes in debug builds).

use adsafe::corpus::{generate, ApolloSpec};
use adsafe::{assess_corpus, render, AssessmentOptions};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let report_path = std::env::args().nth(2);
    let full = ApolloSpec::paper_scale();
    let spec = if (scale - 1.0).abs() < 1e-9 {
        full
    } else {
        ApolloSpec {
            modules: full.modules.iter().map(|m| m.scaled(scale)).collect(),
            seed: full.seed,
        }
    };

    eprintln!("generating corpus at scale {scale} ...");
    let files = generate(&spec);
    let total_lines: usize = files.iter().map(|f| f.text.lines().count()).sum();
    eprintln!("  {} files, {} lines", files.len(), total_lines);

    eprintln!("measuring YOLO coverage (Figure 5) for the unit-testing section ...");
    let (_, coverage) = adsafe::experiments::fig5_yolo_coverage();

    eprintln!("running assessment (parse + metrics + 30 checks) ...");
    let options = AssessmentOptions { coverage: Some(coverage), ..AssessmentOptions::default() };
    let report = assess_corpus(&files, options);

    println!("{}", render::table1(&report).to_ascii());
    println!("{}", render::table2(&report).to_ascii());
    println!("{}", render::table3(&report).to_ascii());
    if let Some(t) = render::coverage_table(&report) {
        println!("{}", t.to_ascii());
    }
    println!("{}", render::fig3(&report).to_ascii(48));

    println!("== Observations ==");
    print!("{}", render::observations_text(&report));

    if let Some(path) = report_path {
        std::fs::write(&path, render::full_report_markdown(&report))
            .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
        eprintln!("full Markdown report written to {path}");
    }

    println!();
    println!(
        "Summary: {} findings, {} of 25 topics blocking at {}, compliance ratio {:.0}%",
        report.diagnostics.len(),
        report.compliance.blocking_count(),
        report.compliance.asil,
        report.compliance.compliance_ratio() * 100.0
    );
}
