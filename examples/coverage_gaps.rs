//! Observation 10, made actionable: list the exact coverage obligations
//! the real-scenario tests leave open in the YOLO corpus, and propose
//! MC/DC test vectors for an uncovered decision.
//!
//! Run with: `cargo run --release --example coverage_gaps`

use adsafe::corpus::yolo::{harness_with_drivers, real_scenarios, YOLO_FILES};
use adsafe::coverage::{summarize_gaps, suggest_mcdc_pair};

fn main() {
    let h = harness_with_drivers();
    let (log, _) = h.run(&real_scenarios());

    println!("== Outstanding coverage obligations per file ==\n");
    let mut total = adsafe::coverage::GapSummary::default();
    for (path, gaps) in h.file_gaps(&log) {
        if !YOLO_FILES.iter().any(|(p, _)| *p == path) {
            continue;
        }
        let s = summarize_gaps(&gaps);
        total.statements += s.statements;
        total.branches += s.branches;
        total.cases += s.cases;
        total.conditions += s.conditions;
        println!(
            "{path:20} {:3} statements, {:3} branch edges, {:2} cases, {:3} MC/DC conditions",
            s.statements, s.branches, s.cases, s.conditions
        );
    }
    println!(
        "\ntotal: {} statements, {} branch edges, {} cases, {} conditions still open",
        total.statements, total.branches, total.cases, total.conditions
    );

    // A concrete MC/DC suggestion: the im2col bounds check
    // `r < 0 || c < 0 || r >= height || c >= width` has four conditions.
    println!("\n== Suggested MC/DC vectors for the im2col bounds decision ==");
    let eval = |v: &[bool]| v[0] || v[1] || v[2] || v[3];
    for cond in 0..4 {
        if let Some(s) = suggest_mcdc_pair(&[], 4, cond, eval) {
            println!(
                "  condition {}: test with {:?} then {:?}",
                cond, s.vector_a, s.vector_b
            );
        }
    }
    println!(
        "\nEach pair flips exactly one condition while holding the rest fixed\n\
         (the others false, since any true OR-term masks the rest)."
    );
}
