//! Figure 5: statement/branch/MC-DC coverage of the YOLO object-
//! detection code under real-scenario tests (the RapiCover experiment).
//!
//! Run with: `cargo run --release --example coverage_yolo`

use adsafe::corpus::yolo::{harness_with_drivers, real_scenarios};
use adsafe::experiments::fig5_yolo_coverage;

fn main() {
    println!("running {} real-scenario tests over the YOLO-mini corpus ...", real_scenarios().len());
    let h = harness_with_drivers();
    let (_, outcomes) = h.measure(&real_scenarios());
    for o in &outcomes {
        match &o.result {
            Ok(v) => println!("  scenario `{}` -> {v}", o.name),
            Err(e) => println!("  scenario `{}` FAILED: {e}", o.name),
        }
    }
    println!();

    let (fig, avg) = fig5_yolo_coverage();
    println!("{}", fig.to_ascii(40));
    println!(
        "averages: statement {:.0}%  branch {:.0}%  MC/DC {:.0}%   (paper: 83 / 75 / 61)",
        avg.statement_pct, avg.branch_pct, avg.mcdc_pct
    );
    println!();
    println!("CSV:");
    print!("{}", fig.to_csv());
    println!();
    println!(
        "Observation 10 holds: coverage is low with available tests; additional \
         test cases are required to reach (preferably) 100% coverage."
    );
}
