//! Figures 7 and 8: open-source vs closed-source GPU library
//! performance — the modeled series (calibrated to the published
//! results) plus a real measurement of the Rust kernels.
//!
//! Run with: `cargo run --release --example gpu_comparison`

use adsafe::experiments::{fig7_detection_perf, fig7_measured, fig8a, fig8b};
use adsafe::perfmodel::summarize;

fn main() {
    let f7 = fig7_detection_perf();
    println!("{}", f7.to_ascii(48));
    let values = &f7.series[0].1;
    let gpu_best = values[..4].iter().cloned().fold(f64::MAX, f64::min);
    let cpu_best = values[4..].iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "CPU/GPU gap: {:.0}x (paper: \"two orders of magnitude higher execution time\")\n",
        cpu_best / gpu_best
    );

    println!("measuring the real Rust kernels (one YOLO-mini inference each) ...");
    let measured = fig7_measured(64);
    println!("{}", measured.to_ascii(48));

    let a = fig8a();
    println!("{}", a.to_ascii(40));
    let sa = summarize(
        &a.labels
            .iter()
            .zip(&a.series[0].1)
            .map(|(l, v)| adsafe::perfmodel::Point { label: l.clone(), value: *v })
            .collect::<Vec<_>>(),
    );
    println!(
        "Figure 8(a): CUTLASS vs cuBLAS geomean {:.2} (min {:.2}, max {:.2}) — comparable\n",
        sa.geomean, sa.min, sa.max
    );

    let b = fig8b();
    println!("{}", b.to_ascii(40));
    let sb = summarize(
        &b.labels
            .iter()
            .zip(&b.series[0].1)
            .map(|(l, v)| adsafe::perfmodel::Point { label: l.clone(), value: *v })
            .collect::<Vec<_>>(),
    );
    let wins = b.series[0].1.iter().filter(|v| **v > 1.0).count();
    println!(
        "Figure 8(b): ISAAC vs cuDNN geomean {:.2}; ISAAC faster on {}/{} workloads — competitive",
        sb.geomean,
        wins,
        b.labels.len()
    );
}
