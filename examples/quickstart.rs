//! Quickstart: assess a small C++ snippet against ISO 26262 Part 6.
//!
//! Run with: `cargo run --example quickstart`

use adsafe::iso26262::TableId;
use adsafe::{render, Assessment};

const SNIPPET: &str = r#"
int g_retry_count;

int read_sensor(int* raw, int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        if (raw[i] < 0) goto fail;
        total += raw[i];
    }
    return total / n;
fail:
    g_retry_count = g_retry_count + 1;
    return -1;
}

float scale_reading(int reading) {
    return (float)reading * 0.01f;
}
"#;

fn main() {
    let mut assessment = Assessment::new();
    assessment.add_file("sensors", "sensors/reader.cc", SNIPPET);
    let report = assessment.run();

    println!("== Diagnostics ==");
    for d in &report.diagnostics {
        println!("  {} [{}] {}", d.severity, d.check_id, d.message);
    }

    println!();
    println!("{}", render::table3(&report).to_ascii());

    println!("== Observations that hold for this snippet ==");
    print!("{}", render::observations_text(&report));

    let unit = report.compliance.table(TableId::UnitDesign);
    let blocking = unit.iter().filter(|v| v.is_blocking()).count();
    println!();
    println!(
        "{} of {} unit-design topics block ASIL-D certification for this snippet.",
        blocking,
        unit.len()
    );
}
