//! Figure 4 exhibit: run the language-subset and CUDA rules over the
//! paper's `scale_bias_gpu` excerpt (or any file passed as argument)
//! and print what makes CUDA code intrinsically at odds with ISO 26262.
//!
//! Run with: `cargo run --example misra_check [path/to/file.cu]`

use adsafe::checkers::{default_checks, run_checks, AnalysisSet};
use adsafe::corpus::yolo::SCALE_BIAS_CU;
use adsafe::experiments::fig4_findings;

fn main() {
    let (path, text) = match std::env::args().nth(1) {
        Some(p) => {
            let text = std::fs::read_to_string(&p).unwrap_or_else(|e| {
                eprintln!("cannot read {p}: {e}");
                std::process::exit(1);
            });
            (p, text)
        }
        None => ("scale_bias.cu (paper Figure 4)".to_string(), SCALE_BIAS_CU.to_string()),
    };

    println!("checking {path} ...\n");
    let mut set = AnalysisSet::new();
    set.add("input", &path, &text);
    let cx = set.context();
    let checks = default_checks();
    let diags = run_checks(&checks, &cx);
    if diags.is_empty() {
        println!("no findings.");
    }
    for d in &diags {
        println!("{}", d.render(&set.sm));
    }

    println!("\n== The paper's Observation 4, mechanically ==");
    for f in fig4_findings() {
        println!("  {f}");
    }
    println!(
        "\nCUDA code intrinsically uses features not recommended in ISO 26262 \
         (pointers, dynamic memory): {} findings on a {}-line excerpt.",
        diags.len(),
        text.lines().count()
    );
}
